//! The anonymisation sentinels, shared by the canary test and the live
//! soak gate.
//!
//! A *sentinel* is a distinctive raw identifier injected into real
//! traffic; after the pipeline runs, every externally visible byte
//! surface (dataset XML, checkpoint sidecars, flight-recorder dumps,
//! the Prometheus exposition) is scanned for every plausible encoding
//! of it — dotted-quad, decimal, hex, raw bytes. A hit means the
//! anonymiser leaked. The `repro swarm` gate and the
//! `anonymisation_canary` test share these constants and needles, so
//! the simulated and the live-captured paths are held to the same bar.

use etw_edonkey::ids::{ClientId, FileId};

/// Sentinel clientIDs inside the 24-bit low-ID space (the direct-array
/// anonymiser is sized to it), with distinctive lower-octet patterns
/// that cannot collide with anything the anonymiser emits (its output
/// is dense small integers).
pub const SENTINEL_IP_A: [u8; 4] = [0, 203, 113, 77];
/// Second sentinel clientID.
pub const SENTINEL_IP_B: [u8; 4] = [0, 198, 51, 100];

/// Sentinel fileID: sixteen distinctive bytes. The full 16-byte pattern
/// is collision-proof against any honest output; its hex rendering is a
/// 32-character needle no anonymised index can produce.
pub const SENTINEL_FILE: [u8; 16] = [
    0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF, 0xFE, 0xDC, 0xBA, 0x98,
];
/// Second sentinel fileID.
pub const SENTINEL_FILE_2: [u8; 16] = [
    0xCA, 0xFE, 0xF0, 0x0D, 0x10, 0x32, 0x54, 0x76, 0x98, 0xBA, 0xDC, 0xFE, 0xEF, 0xCD, 0xAB, 0x89,
];

/// The first sentinel client identity.
pub fn client_a() -> ClientId {
    ClientId::from_ipv4(SENTINEL_IP_A)
}

/// The second sentinel client identity.
pub fn client_b() -> ClientId {
    ClientId::from_ipv4(SENTINEL_IP_B)
}

/// The first sentinel file identity.
pub fn file_a() -> FileId {
    FileId(SENTINEL_FILE)
}

/// The second sentinel file identity.
pub fn file_b() -> FileId {
    FileId(SENTINEL_FILE_2)
}

/// Every encoding a sentinel could leak under, as byte needles.
pub fn needles() -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for ip in [SENTINEL_IP_A, SENTINEL_IP_B] {
        let raw = u32::from_be_bytes(ip);
        out.push((
            format!("dotted quad {}.{}.{}.{}", ip[0], ip[1], ip[2], ip[3]),
            format!("{}.{}.{}.{}", ip[0], ip[1], ip[2], ip[3]).into_bytes(),
        ));
        out.push((format!("decimal {raw}"), raw.to_string().into_bytes()));
        out.push((format!("hex {raw:08x}"), format!("{raw:08x}").into_bytes()));
        out.push((format!("raw be bytes of {raw:08x}"), ip.to_vec()));
    }
    for (name, id) in [("file A", SENTINEL_FILE), ("file B", SENTINEL_FILE_2)] {
        let hex: String = id.iter().map(|b| format!("{b:02x}")).collect();
        out.push((format!("{name} hex"), hex.into_bytes()));
        out.push((format!("{name} raw bytes"), id.to_vec()));
    }
    out
}

/// Naive subsequence search (needles are short, surfaces are scanned
/// once per run).
pub fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack
        .windows(needle.len())
        .any(|window| window == needle)
}

/// Returns every sentinel encoding found in `bytes`, labelled with the
/// surface name — empty means the surface is clean.
pub fn scan_surface(surface: &str, bytes: &[u8]) -> Vec<String> {
    let mut hits = Vec::new();
    for (desc, needle) in needles() {
        if contains(bytes, &needle) {
            hits.push(format!("sentinel leaked: {desc} found in {surface}"));
        }
    }
    hits
}

/// Panicking form for tests.
pub fn assert_surface_clean(surface: &str, bytes: &[u8]) {
    let hits = scan_surface(surface, bytes);
    assert!(hits.is_empty(), "{}", hits.join("\n"));
}
