//! Regenerates every table and figure of "Ten weeks in the life of an
//! eDonkey server" from the simulated measurement stack.
//!
//! ```text
//! repro [--tiny] [--out DIR] <t1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|all>
//! ```
//!
//! * `t1`   — the dataset summary numbers (§2.2–2.5)
//! * `fig2` — packet losses per second + cumulative, over ten virtual
//!   weeks (full-duration fluid simulation of the capture ring)
//! * `fig3` — fileID anonymisation-array sizes after one virtual week,
//!   first-two-bytes vs alternative byte selector
//! * `fig4`–`fig7` — the provider/seeker degree distributions
//! * `fig8` — the file-size histogram
//! * `health` — capture-machine telemetry: periodic health snapshots
//!   (`health_*.dat`) and a final Prometheus dump (`health_*.prom`)
//! * `soak [--faults]` — the crash-resilience gate: a lossy active
//!   probe, a fault-injected campaign killed at a random virtual time
//!   and resumed from its checkpoint, and the fault-ledger assertions;
//!   exits nonzero if the rebuilt dataset is not byte-identical or any
//!   ledger fails
//! * `bench [--smoke|--record] [--baseline FILE] [--bench-out FILE]` —
//!   the throughput suite (decode-only, tail-only serial vs batched,
//!   anonymise-only serial vs sharded, end-to-end) plus steady-state
//!   allocations/record in the formatter; `--record` writes the
//!   committable `BENCH_PR10.json` baseline (smoke mode instead gates
//!   against the newest committed `BENCH_PR<k>.json` and fails on a
//!   regression over 20% in end-to-end throughput or in any per-stage
//!   bench — decode-only, batched tail, sharded anonymise, swarm
//!   serving — plus the decode-ratio floor and the swarm tap's
//!   permille loss budget)
//! * `matrix` — the CI campaign matrix: clientID widths {2^24, 2^16} ×
//!   anonymiser shards {1, 4} × source shards {1, 4}; within each width
//!   every shard combination must produce the byte-identical dataset
//!   and the identical checkpoint cuts; exits nonzero on any divergence
//! * `swarm [--faults] [--sessions N] [--duration-ms MS]` — the
//!   real-socket soak gate: the UDP serving loop under a loopback
//!   client swarm (with sentinel sessions and hostile noise), exact
//!   ledger conservation across real sockets, and the live-captured
//!   traffic run through the unchanged pipeline and scanned by the
//!   anonymisation canary; exits nonzero on any violation
//! * `all`  — everything, sharing one campaign run
//!
//! Each figure writes a gnuplot-ready `.dat` series under `--out`
//! (default `results/`) and prints a caption with the quantities the
//! paper calls out.

use edonkey_ten_weeks::analysis::report::{describe_fit, grouped, series_f64, series_u64};
use edonkey_ten_weeks::analysis::{
    find_peaks, fit_histogram, DatasetStats, IntHistogram, SparseSeries,
};
use edonkey_ten_weeks::bench::harness::BenchReport;
use edonkey_ten_weeks::bench::suite;
use edonkey_ten_weeks::core::{
    render_health_dat, render_t1, try_resume_campaign_observed, try_run_campaign_checkpointed,
    try_run_campaign_observed, CampaignConfig, CampaignReport, Checkpoint,
};
use edonkey_ten_weeks::netsim::capture::{CaptureBuffer, LossRecorder};
use edonkey_ten_weeks::netsim::clock::VirtualTime;
use edonkey_ten_weeks::netsim::traffic::RateModel;
use edonkey_ten_weeks::telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Route every allocation through the counting wrapper so `repro bench`
/// can measure allocations/record in the tail. Two relaxed atomic adds
/// per allocation — noise for every other subcommand.
#[global_allocator]
static ALLOC: edonkey_ten_weeks::bench::alloc::CountingAllocator =
    edonkey_ten_weeks::bench::alloc::CountingAllocator;

struct Args {
    tiny: bool,
    out: PathBuf,
    what: String,
    /// Virtual campaign length in weeks (default 1; the paper ran 10).
    weeks: u64,
    /// `soak`: enable the full fault-injection spec.
    faults: bool,
    /// `soak`: seed for the kill-point choice (None = OS entropy).
    soak_seed: Option<u64>,
    /// `bench`: CI mode — short runs, gate against the baseline.
    smoke: bool,
    /// `bench`: write the committable `BENCH_PR10.json` baseline.
    record: bool,
    /// `bench`: baseline report to gate against (default: the newest
    /// committed `BENCH_PR<k>.json`).
    baseline: Option<PathBuf>,
    /// `bench`: where to write the fresh report.
    bench_out: Option<PathBuf>,
    /// `swarm`: concurrent client sessions.
    sessions: usize,
    /// `swarm`: load-phase duration in milliseconds.
    duration_ms: u64,
}

/// Where `repro bench --record` writes the baseline this PR commits.
const RECORD_PATH: &str = "BENCH_PR10.json";

fn parse_args() -> Args {
    let mut tiny = false;
    let mut out = PathBuf::from("results");
    let mut what = String::from("all");
    let mut weeks = 1u64;
    let mut faults = false;
    let mut soak_seed = None;
    let mut smoke = false;
    let mut record = false;
    let mut baseline = None;
    let mut bench_out = None;
    let mut sessions = 1200usize;
    let mut duration_ms = 4000u64;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--tiny" => tiny = true,
            "--faults" => faults = true,
            "--smoke" => smoke = true,
            "--record" => record = true,
            "--baseline" => {
                baseline = Some(PathBuf::from(argv.next().unwrap_or_else(|| {
                    eprintln!("--baseline needs a file");
                    std::process::exit(2);
                })))
            }
            "--bench-out" => {
                bench_out = Some(PathBuf::from(argv.next().unwrap_or_else(|| {
                    eprintln!("--bench-out needs a file");
                    std::process::exit(2);
                })))
            }
            "--soak-seed" => {
                soak_seed = Some(argv.next().and_then(|w| w.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--soak-seed needs an integer");
                    std::process::exit(2);
                }))
            }
            "--sessions" => {
                sessions = argv.next().and_then(|w| w.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--sessions needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--duration-ms" => {
                duration_ms = argv.next().and_then(|w| w.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--duration-ms needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--weeks" => {
                weeks = argv.next().and_then(|w| w.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--weeks needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--out" => {
                out = PathBuf::from(argv.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }))
            }
            "-h" | "--help" => {
                println!(
                    "usage: repro [--tiny] [--weeks N] [--out DIR] \
                     <t1|fig2|fig3|fig4..fig8|health|soak [--faults]|\
                     bench [--smoke|--record] [--baseline FILE] [--bench-out FILE]|\
                     matrix|swarm [--faults] [--sessions N] [--duration-ms MS]|all>"
                );
                std::process::exit(0);
            }
            w => what = w.to_owned(),
        }
    }
    Args {
        tiny,
        out,
        what,
        weeks,
        faults,
        soak_seed,
        smoke,
        record,
        baseline,
        bench_out,
        sessions,
        duration_ms,
    }
}

fn main() {
    let args = parse_args();
    fs::create_dir_all(&args.out).expect("create output dir");
    if args.what == "soak" {
        soak(&args.out, args.faults, args.soak_seed);
        return;
    }
    if args.what == "bench" {
        bench(&args);
        return;
    }
    if args.what == "matrix" {
        matrix();
        return;
    }
    if args.what == "swarm" {
        swarm(&args);
        return;
    }
    let needs_campaign = args.what != "fig2";
    let campaign = needs_campaign.then(|| run_campaign_once(args.tiny, args.weeks));

    match args.what.as_str() {
        "t1" => t1(campaign.as_ref().unwrap()),
        "fig2" => fig2(&args.out, args.tiny),
        "fig3" => fig3(campaign.as_ref().unwrap(), &args.out),
        "fig4" => fig_distribution(campaign.as_ref().unwrap(), &args.out, 4),
        "fig5" => fig_distribution(campaign.as_ref().unwrap(), &args.out, 5),
        "fig6" => fig_distribution(campaign.as_ref().unwrap(), &args.out, 6),
        "fig7" => fig_distribution(campaign.as_ref().unwrap(), &args.out, 7),
        "fig8" => fig8(campaign.as_ref().unwrap(), &args.out),
        "health" => health(campaign.as_ref().unwrap(), &args.out, args.tiny),
        "all" => {
            let c = campaign.as_ref().unwrap();
            t1(c);
            fig2(&args.out, args.tiny);
            fig3(c, &args.out);
            for fig in 4..=7 {
                fig_distribution(c, &args.out, fig);
            }
            fig8(c, &args.out);
            health(c, &args.out, args.tiny);
        }
        other => {
            eprintln!("unknown experiment {other:?}; try --help");
            std::process::exit(2);
        }
    }
}

struct CampaignRun {
    report: CampaignReport,
    stats: DatasetStats,
    /// Final telemetry state, for the Prometheus dump.
    final_snapshot: edonkey_ten_weeks::telemetry::Snapshot,
}

fn run_campaign_once(tiny: bool, weeks: u64) -> CampaignRun {
    let mut config = if tiny {
        CampaignConfig::tiny()
    } else {
        CampaignConfig::default()
    };
    if tiny {
        // tiny() spans 1800 virtual seconds; the default hourly health
        // interval would cut a single record.
        config.health_interval_secs = 300;
    } else {
        // The paper's campaign ran ten weeks; message volume scales
        // linearly with virtual duration (~6 min/week at default scale).
        config.generator.duration_secs = weeks.max(1) * 7 * 86_400;
    }
    eprintln!(
        "running campaign: {} clients, {} files, {} virtual seconds, seed {}",
        config.population.n_clients,
        config.catalog.n_files,
        config.generator.duration_secs,
        config.seed
    );
    // etwlint: allow(no-wall-clock): operator-facing elapsed-time print
    // in the binary, not simulation state.
    let started = Instant::now();
    let mut stats = DatasetStats::new();
    let registry = Registry::new();
    let report = try_run_campaign_observed(&config, &registry, |record| stats.observe(&record))
        .unwrap_or_else(|e| {
            eprintln!("invalid campaign configuration: {e}");
            std::process::exit(2);
        });
    eprintln!(
        "campaign done in {:.1}s: {} records",
        started.elapsed().as_secs_f64(),
        grouped(report.records)
    );
    CampaignRun {
        report,
        stats,
        final_snapshot: registry.snapshot(),
    }
}

fn write(out: &Path, name: &str, contents: &str) {
    let path = out.join(name);
    fs::write(&path, contents).expect("write series");
    println!("  wrote {}", path.display());
}

fn t1(c: &CampaignRun) {
    println!("== T1: dataset summary (paper §2.2–2.5) ==");
    print!("{}", render_t1(&c.report));
    println!();
}

/// Fig. 2 runs at the paper's FULL temporal scale: ten weeks of seconds,
/// fluid capture-ring model. (The message-level campaign is scaled down;
/// the loss process does not need messages, only rates.)
fn fig2(out: &Path, tiny: bool) {
    println!("== Fig. 2: ethernet packet losses per second, ten weeks ==");
    let weeks = if tiny { 1 } else { 10 };
    let horizon = weeks * 7 * 86_400u64;
    // Paper-like regime: ~5200 pps mean over the whole capture, rare
    // flash bursts; a 64k-packet kernel ring drained comfortably above
    // the diurnal peak, so that only the tail of the burst distribution
    // overflows it — which is what makes the loss ratio ~1e-5 while
    // Fig. 2 still shows visible loss events.
    let model = RateModel::new(5_200.0, 0.45, 0.10, horizon, 26 * weeks as usize, 0xF162);
    // The fluid ring reports into the same `ring.*` metrics the campaign
    // pipeline uses, so the Fig. 2 loss account and the telemetry loss
    // account are one and the same (ROADMAP open item).
    let registry = Registry::new();
    let mut ring = CaptureBuffer::new(65_536, 68_000.0);
    ring.attach_telemetry(&registry);
    let mut recorder = LossRecorder::new();
    let mut rng = StdRng::seed_from_u64(2);
    let mut offered = 0u64;
    for s in 0..horizon {
        let t = VirtualTime::from_secs(s);
        let n = model.sample_arrivals(t, &mut rng);
        offered += n;
        ring.offer_batch(t, n);
        recorder.tick(s, &ring);
        ring.sample_telemetry();
    }
    let series = SparseSeries::new(recorder.losses_per_sec.clone());
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("ring.lost_total"),
        recorder.total(),
        "telemetry and recorder loss accounts must agree"
    );
    assert_eq!(snap.counter("ring.offered_total"), offered);
    println!(
        "  offered {} packets, captured {}, lost {} (ratio {:.2e}; paper: 250 266 / 31 555 295 781 = 7.9e-6)",
        grouped(offered),
        grouped(ring.captured()),
        grouped(ring.lost()),
        ring.lost() as f64 / offered as f64
    );
    println!(
        "  loss events in {} distinct seconds out of {} (telemetry agrees: ring.lost_total = {})",
        series.points.len(),
        horizon,
        grouped(snap.counter("ring.lost_total"))
    );
    write(
        out,
        "fig2_losses_per_sec.dat",
        &series_f64(&series.in_weeks()),
    );
    let cum: Vec<(f64, u64)> = series
        .cumulative()
        .into_iter()
        .map(|(s, v)| (s as f64 / (7.0 * 86_400.0), v))
        .collect();
    write(out, "fig2_cumulative.dat", &series_f64(&cum));
    write(out, "fig2_ring.prom", &snap.render_prometheus());
}

fn fig3(c: &CampaignRun, out: &Path) {
    println!("== Fig. 3: fileID anonymisation array sizes (bucket size distribution) ==");
    let first = c
        .report
        .bucket_sizes_first_two
        .as_ref()
        .expect("campaign ran with track_fig3");
    let alt = &c.report.bucket_sizes_alternative;
    let hist = |sizes: &[usize]| -> IntHistogram { sizes.iter().map(|&s| s as u64).collect() };
    let h_first = hist(first);
    let h_alt = hist(alt);
    let max_first = first.iter().copied().max().unwrap_or(0);
    let max_alt = alt.iter().copied().max().unwrap_or(0);
    println!(
        "  first-two-bytes: max bucket {} (bucket 0: {}, bucket 256: {}) — paper: 24 024 in bucket 0",
        max_first, first[0], first[256]
    );
    println!("  alternative bytes: max bucket {} — paper: 819", max_alt);
    println!(
        "  imbalance ratio first/alt = {:.1} (paper: 24 024 / 819 = 29.3)",
        max_first as f64 / max_alt.max(1) as f64
    );
    // The figure plots bucket size (x) vs number of buckets (y).
    write(out, "fig3_first_two_bytes.dat", &distribution(&h_first));
    write(out, "fig3_alternative_bytes.dat", &distribution(&h_alt));
}

fn distribution(h: &IntHistogram) -> String {
    series_u64(&h.sorted_points())
}

fn fig_distribution(c: &CampaignRun, out: &Path, fig: u8) {
    let (h, title, file, paper_note) = match fig {
        4 => (
            c.stats.providers_per_file(),
            "Fig. 4: #clients providing each file",
            "fig4_providers_per_file.dat",
            "paper: power-law-ish decay; >3.5M files with a single provider",
        ),
        5 => (
            c.stats.seekers_per_file(),
            "Fig. 5: #clients asking for each file",
            "fig5_seekers_per_file.dat",
            "paper: power-law-ish decay, most-wanted file asked by ~150k clients",
        ),
        6 => (
            c.stats.files_per_provider(),
            "Fig. 6: #files provided by each client",
            "fig6_files_per_provider.dat",
            "paper: NOT a power law; bump at a few thousand files (client limits)",
        ),
        7 => (
            c.stats.files_per_seeker(),
            "Fig. 7: #files asked by each client",
            "fig7_files_per_seeker.dat",
            "paper: multi-regime; sharp peak at exactly 52 queries",
        ),
        _ => unreachable!(),
    };
    println!("== {title} ==");
    println!("  ({paper_note})");
    println!(
        "  population: {} (max x = {})",
        grouped(h.total()),
        h.max_value().unwrap_or(0)
    );
    println!("  {}", describe_fit(&fit_histogram(&h)));
    if fig == 7 {
        let peaks = find_peaks(&h, 5, 5.0, 10);
        match peaks.iter().find(|p| p.value == 52) {
            Some(p) => println!(
                "  peak at 52 detected: {} clients, prominence {:.0}x",
                grouped(p.count),
                p.prominence
            ),
            None => println!("  WARNING: no 52-peak detected"),
        }
    }
    if fig == 6 {
        let at_limits: u64 = [1000u64, 2000].iter().map(|&x| h.count(x)).sum();
        println!("  clients at share-limit plateau values (1000/2000): {at_limits}");
    }
    write(out, file, &distribution(&h));
}

/// Machine health over the campaign: the capture machine's own vital
/// signs, the reproduction's answer to the paper's "the server handled
/// the load" aside. Writes the snapshot series as a gnuplot table and
/// the final registry state in Prometheus text exposition.
fn health(c: &CampaignRun, out: &Path, tiny: bool) {
    println!("== machine health: capture-pipeline telemetry ==");
    let h = &c.report.health;
    if h.is_empty() {
        println!("  no health records (health_interval_secs = 0?)");
        return;
    }
    let last = h.records.last().unwrap();
    println!(
        "  {} snapshots over {} virtual s ({:.1}s wall, cumulative RTF {:.0}x)",
        h.records.len(),
        last.virtual_secs(),
        last.wall_secs,
        last.rtf_cumulative
    );
    let snap = &c.final_snapshot;
    println!(
        "  ring: offered {} / lost {}; decode_in stalls {}; reorder depth hwm {}",
        grouped(snap.counter("ring.offered_total")),
        grouped(snap.counter("ring.lost_total")),
        snap.counter("chan.decode_in.stalls_total"),
        snap.gauge("stage.reorder.depth_hwm"),
    );
    if let Some(service) = snap.histogram("stage.decode.service_ns") {
        println!(
            "  decode service time: mean {:.0} ns, p50 ≤ {} ns, p99 ≤ {} ns",
            service.mean(),
            service.quantile(0.50),
            service.quantile(0.99),
        );
    }
    let scale = if tiny { "tiny" } else { "campaign" };
    write(out, &format!("health_{scale}.dat"), &render_health_dat(h));
    write(
        out,
        &format!("health_{scale}.prom"),
        &snap.render_prometheus(),
    );
}

fn fig8(c: &CampaignRun, out: &Path) {
    println!("== Fig. 8: file size distribution ==");
    let h = c.stats.size_histogram_kb();
    println!("  {} distinct files with a known size", grouped(h.total()));
    // The paper's annotated peaks, in KB.
    let expected = [
        ("175 MB", 175 * 1024u64),
        ("233 MB", 233 * 1024),
        ("350 MB", 350 * 1024),
        ("700 MB", 700 * 1024),
        ("1 GB", 1024 * 1024),
        ("1.4 GB", 1400 * 1024),
    ];
    for (label, kb) in expected {
        println!("  files at exactly {label}: {}", grouped(h.count(kb)));
    }
    let peaks = find_peaks(&h, 8, 20.0, 20);
    let peak_kbs: Vec<u64> = peaks.iter().map(|p| p.value).take(10).collect();
    println!("  top detected peaks (KB): {peak_kbs:?}");
    write(out, "fig8_file_sizes_kb.dat", &distribution(&h));
}

/// Accumulates soak-gate verdicts so one run reports every violation
/// rather than stopping at the first.
struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn check(&mut self, ok: bool, what: &str) {
        if ok {
            println!("  ok: {what}");
        } else {
            println!("  FAIL: {what}");
            self.failures.push(what.to_owned());
        }
    }
}

/// The newest committed baseline: the `BENCH_PR<k>.json` in the working
/// directory with the highest `k`. Discovering it by number (instead of
/// hardcoding the previous PR's file) means each PR that records a new
/// baseline automatically becomes the gate for the next one.
fn newest_baseline() -> Option<PathBuf> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in fs::read_dir(".").ok()?.flatten() {
        let name = entry.file_name();
        let k = name
            .to_string_lossy()
            .strip_prefix("BENCH_PR")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|k| k.parse::<u64>().ok());
        if let Some(k) = k {
            if best.as_ref().is_none_or(|(b, _)| k > *b) {
                best = Some((k, entry.path()));
            }
        }
    }
    best.map(|(_, p)| p)
}

/// The benchmark trajectory gate (`repro bench`), run by ci.sh in smoke
/// mode:
///
/// 1. the suite — decode-only, tail-only (serial `write_record` vs
///    batched zero-alloc encoder), anonymise-only (serial scheme vs the
///    clientID/fileID shard pool) and end-to-end throughput, plus
///    steady-state allocations/record in the formatter (measured via the
///    counting global allocator this binary installs);
/// 2. the self-checks — batched tail and sharded anonymiser over their
///    speedup floors versus the serial paths, zero steady-state
///    allocations/record, end-to-end within the decode-ratio budget of
///    decode-only, and the swarm tap's measured loss under its permille
///    budget;
/// 3. `--smoke` only: the trajectory gate — end-to-end, per-stage and
///    swarm-served records/sec must stay within 20% of the newest
///    committed `BENCH_PR<k>.json` — plus the synthetic-violation
///    self-tests proving each floor still rejects.
///
/// `--record` rewrites `BENCH_PR10.json`; commit it to move the
/// baseline. Exits nonzero on any failure.
fn bench(args: &Args) {
    println!(
        "== bench: capture-machine throughput{} ==",
        if args.smoke { " (smoke)" } else { "" }
    );
    let report = suite::run_suite(&suite::SuiteOptions { smoke: args.smoke });

    if let (Some(serial), Some(batched)) = (
        report.find("tail_serial", "tiny"),
        report.find("tail_batched", "tiny"),
    ) {
        println!(
            "  tail speedup: {:.2}x (serial {:.0} -> batched {:.0} records/s)",
            batched.records_per_sec / serial.records_per_sec,
            serial.records_per_sec,
            batched.records_per_sec
        );
    }
    if let (Some(serial), Some(sharded)) = (
        report.find("anonymize_serial", "mix"),
        report.find("anonymize_shard4", "mix"),
    ) {
        println!(
            "  anonymise speedup: {:.2}x (serial {:.0} -> 4 shards {:.0} records/s)",
            sharded.records_per_sec / serial.records_per_sec,
            serial.records_per_sec,
            sharded.records_per_sec
        );
    }
    if let (Some(plain), Some(traced)) = (
        report.find("end_to_end", "tiny"),
        report.find("end_to_end_traced", "tiny"),
    ) {
        println!(
            "  tracing overhead: {:+.1}% (untraced {:.0} -> traced {:.0} records/s)",
            (plain.records_per_sec / traced.records_per_sec - 1.0) * 100.0,
            plain.records_per_sec,
            traced.records_per_sec
        );
    }
    if let (Some(decode), Some(e2e)) = (
        report.find("decode_only", "mix"),
        report.find("end_to_end", "tiny"),
    ) {
        println!(
            "  decode ratio: {:.1}x (decode {:.0} vs end-to-end {:.0} records/s, budget {:.0}x)",
            decode.records_per_sec / e2e.records_per_sec,
            decode.records_per_sec,
            e2e.records_per_sec,
            suite::MAX_E2E_DECODE_RATIO
        );
    }
    if let (Some(s1), Some(s4)) = (
        report.find("end_to_end_src1", "tiny"),
        report.find("end_to_end_src4", "tiny"),
    ) {
        println!(
            "  source shards: 1 -> {:.0} records/s, 4 -> {:.0} records/s",
            s1.records_per_sec, s4.records_per_sec
        );
    }

    let mut failures = suite::self_checks(&report);
    if args.smoke {
        let baseline_path = args.baseline.clone().or_else(newest_baseline);
        let baseline = baseline_path.as_ref().and_then(|p| {
            fs::read_to_string(p)
                .ok()
                .and_then(|s| BenchReport::from_json(&s))
        });
        match (baseline_path, baseline) {
            (Some(baseline_path), Some(baseline)) => {
                let gate = suite::trajectory_gate(&report, &baseline);
                if gate.is_empty() {
                    println!(
                        "  ok: end-to-end and per-stage throughput within {:.0}% of {}",
                        suite::MAX_BENCH_REGRESSION * 100.0,
                        baseline_path.display()
                    );
                }
                failures.extend(gate);
                // Prove the floors bite: a synthetic 25% decode
                // slowdown, a synthetic front-end starvation past the
                // decode-ratio budget, and a synthetic swarm slowdown /
                // 2x-budget tap loss must all be rejected.
                match suite::demo_gate_rejects_stage_slowdown(&baseline) {
                    Ok(line) => println!("  {line}"),
                    Err(why) => failures.push(why),
                }
                match suite::demo_ratio_gate_rejects_front_end_rot(&report) {
                    Ok(line) => println!("  {line}"),
                    Err(why) => failures.push(why),
                }
                match suite::demo_swarm_gates_reject(&report, &baseline) {
                    Ok(line) => println!("  {line}"),
                    Err(why) => failures.push(why),
                }
            }
            (Some(baseline_path), None) => failures.push(format!(
                "baseline {} unreadable (run `repro bench --record` and commit it)",
                baseline_path.display()
            )),
            (None, _) => failures.push(
                "no committed BENCH_PR<k>.json baseline found \
                 (run `repro bench --record` and commit it)"
                    .to_owned(),
            ),
        }
    }

    let out_path = args.bench_out.clone().unwrap_or_else(|| {
        if args.record {
            PathBuf::from(RECORD_PATH)
        } else if args.smoke {
            args.out.join("bench_smoke.json")
        } else {
            args.out.join("bench.json")
        }
    });
    fs::write(&out_path, report.to_json()).expect("write bench report");
    println!("  wrote {}", out_path.display());

    if failures.is_empty() {
        println!("bench OK");
    } else {
        eprintln!("bench FAILED: {} violation(s)", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}

/// The CI campaign matrix (`repro matrix`), run by ci.sh: a faulty
/// campaign smoke at every cell of clientID width {2^24, 2^16} ×
/// anonymiser shard count {1, 4} × source shard count {1, 4}, each
/// streamed through the batched tail with checkpoints. Within a width,
/// every cell must produce the byte-identical dataset and the identical
/// checkpoint cuts as the serial (1 anon shard, 1 source shard) cell —
/// the sharded anonymiser's and sharded traffic source's portability
/// guarantee, exercised at both the narrow test width and the wide
/// default where clientIDs stripe across every shard's sub-table.
/// Exits nonzero on any divergence.
fn matrix() {
    use edonkey_ten_weeks::core::campaign::try_run_campaign_to_writer;
    use edonkey_ten_weeks::core::pipeline::TailConfig;
    use edonkey_ten_weeks::xmlout::writer::DatasetWriter;

    const WIDTHS: [u32; 2] = [24, 16];
    const SHARDS: [usize; 2] = [1, 4];
    const SRC_SHARDS: [usize; 2] = [1, 4];
    println!("== matrix: clientID width x anon shards x source shards ==");
    let mut gate = Gate {
        failures: Vec::new(),
    };
    println!(
        "  {:<8} {:>6} {:>6} {:>9} {:>11} {:>7}  verdict",
        "width", "anon", "src", "records", "bytes", "wall_s"
    );
    for width in WIDTHS {
        let mut reference: Option<(Vec<u8>, Vec<Checkpoint>, u64)> = None;
        for shards in SHARDS {
            for src_shards in SRC_SHARDS {
                let mut config = CampaignConfig::tiny_faulty();
                config.population.id_space_bits = width;
                config.client_space_bits = width;
                config.generator.duration_secs = 600;
                config.checkpoint_interval_secs = 120;
                config.source.source_shards = src_shards;
                let tail = TailConfig {
                    anon_shards: shards,
                    ..TailConfig::default()
                };
                // etwlint: allow(no-wall-clock): operator-facing
                // elapsed-time print in the binary, not simulation state.
                let started = Instant::now();
                let mut cps: Vec<Checkpoint> = Vec::new();
                let (report, writer) = try_run_campaign_to_writer(
                    &config,
                    &Registry::disabled(),
                    tail,
                    DatasetWriter::new(Vec::new()).expect("vec write"),
                    |cp| cps.push(cp),
                )
                .unwrap_or_else(|e| {
                    eprintln!("invalid matrix configuration: {e}");
                    std::process::exit(2);
                });
                let bytes = writer.finish().expect("vec write");
                let verdict = match &reference {
                    None => "reference".to_owned(),
                    Some((ref_bytes, ref_cps, _)) => {
                        if &bytes == ref_bytes && &cps == ref_cps {
                            "identical".to_owned()
                        } else {
                            "DIVERGED".to_owned()
                        }
                    }
                };
                println!(
                    "  2^{width:<6} {shards:>6} {src_shards:>6} {:>9} {:>11} {:>7.2}  {verdict}",
                    grouped(report.records),
                    grouped(bytes.len() as u64),
                    started.elapsed().as_secs_f64()
                );
                match &reference {
                    None => {
                        gate.check(
                            cps.len() >= 2,
                            &format!("width 2^{width}: campaign cut at least 2 checkpoints"),
                        );
                        gate.check(
                            report.records > 0,
                            &format!("width 2^{width}: campaign produced records"),
                        );
                        reference = Some((bytes, cps, report.records));
                    }
                    Some((ref_bytes, ref_cps, ref_records)) => {
                        let cell =
                            format!("width 2^{width}, {shards} anon / {src_shards} source shards");
                        gate.check(
                            report.records == *ref_records,
                            &format!("{cell}: record count matches serial cell"),
                        );
                        gate.check(
                            &bytes == ref_bytes,
                            &format!("{cell}: dataset byte-identical to serial cell"),
                        );
                        gate.check(
                            &cps == ref_cps,
                            &format!("{cell}: checkpoint cuts identical to serial cell"),
                        );
                    }
                }
            }
        }
    }

    if gate.failures.is_empty() {
        println!(
            "matrix OK ({} cells)",
            WIDTHS.len() * SHARDS.len() * SRC_SHARDS.len()
        );
    } else {
        eprintln!("matrix FAILED: {} violation(s)", gate.failures.len());
        for f in &gate.failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}

/// The real-socket soak gate (`repro swarm`), run by ci.sh:
///
/// 1. binds the eDonkey UDP server on a real loopback socket and drives
///    it with `--sessions` concurrent client sessions (plus noise
///    sessions sending hostile garbage and two sentinel sessions
///    carrying the anonymisation canary's raw identifiers), through
///    seeded socket-level impairment in both directions when `--faults`
///    is set, with a think-time burst window in the middle;
/// 2. the conservation gate, from the ledgers alone: client sent ==
///    server received + impairment drops; server received == answered +
///    shed + malformed; answers sent == answers received — *exactly*,
///    across real sockets;
/// 3. the capture gate: the server's own traffic, sniffed by the live
///    tap into ethernet frames, flows through the UNCHANGED
///    decode→anonymise pipeline into a dataset; capture loss is
///    whatever the tap actually dropped (measured, not simulated);
/// 4. the canary gate: every output surface of that live-captured
///    dataset (XML, checkpoint sidecars, flight dumps, /metrics) is
///    scanned for the sentinel identifiers the sentinel sessions put
///    on the wire.
///
/// Exits nonzero on any violation.
fn swarm(args: &Args) {
    use edonkey_ten_weeks::anonymize::fileid::{BucketedArrays, ByteSelector};
    use edonkey_ten_weeks::anonymize::scheme::PaperScheme;
    use edonkey_ten_weeks::core::livecap::LiveCapture;
    use edonkey_ten_weeks::core::pipeline::{
        run_capture_pipeline_batched, PipelineOptions, TailConfig, TraceOptions,
    };
    use edonkey_ten_weeks::faults::{DirectedRates, FaultSpec};
    use edonkey_ten_weeks::sentinel;
    use edonkey_ten_weeks::server::net::NetConfig;
    use edonkey_ten_weeks::server::swarm::{
        run_loopback_soak, soak_gate_failures, Roster, SoakConfig, SwarmConfig,
    };
    use edonkey_ten_weeks::xmlout::writer::DatasetWriter;

    let impaired = args.faults;
    println!(
        "== swarm: real-socket loopback soak ({} sessions{}) ==",
        args.sessions,
        if impaired { ", impaired" } else { "" }
    );
    let mut gate = Gate {
        failures: Vec::new(),
    };
    let registry = Registry::new();

    let rate = |to, from| DirectedRates {
        to_server: to,
        from_server: from,
    };
    let fault = |seed| FaultSpec {
        seed,
        drop: rate(0.04, 0.04),
        duplicate: rate(0.02, 0.02),
        truncate: rate(0.03, 0.02),
        delay: rate(0.04, 0.04),
        delay_max_us: 40_000,
        ..FaultSpec::default()
    };
    let duration_us = args.duration_ms.max(500) * 1_000;
    let cfg = SoakConfig {
        swarm: SwarmConfig {
            sessions: args.sessions.max(3),
            seed: 0x5317_0008,
            duration_us,
            noise_per_mille: 60,
            burst_start_us: duration_us / 4,
            burst_len_us: duration_us / 3,
            special: vec![
                (sentinel::client_a(), sentinel::file_a()),
                (sentinel::client_b(), sentinel::file_b()),
            ],
            fault: impaired.then(|| fault(0xC1_1E47)),
            ..SwarmConfig::default()
        },
        net: NetConfig {
            // Sized so the mid-run burst actually bites: the queue can
            // fill, degraded mode can engage, and shedding is real.
            queue_cap: 512,
            high_water: 384,
            low_water: 128,
            proc_budget: 96,
            ..NetConfig::default()
        },
        server_fault: impaired.then(|| fault(0x5E_12F4)),
    };

    // The capture stack: roster for identity, tap on the server socket,
    // collector assembling pipeline-ready frames.
    let roster: Roster = Roster::default();
    let (capture, tap) = LiveCapture::start(&registry, &roster, 8192);

    // etwlint: allow(no-wall-clock): operator-facing elapsed-time print
    // in the binary, not simulation state.
    let started = Instant::now();
    let outcome = match run_loopback_soak(cfg, &registry, &roster, Some(tap)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("swarm FAILED: {e}");
            std::process::exit(1);
        }
    };
    let mut captured = capture.finish();
    println!(
        "  soak done in {:.1}s wall: {} requests, {} sent, {} answers, {} timeouts, {} noise",
        started.elapsed().as_secs_f64(),
        grouped(outcome.report.requests),
        grouped(outcome.report.sent),
        grouped(outcome.report.answers),
        grouped(outcome.report.timeouts),
        grouped(outcome.report.noise),
    );
    let snap = registry.snapshot();
    println!(
        "  server: {} received, {} answered, {} shed ({} degraded entries), {} malformed",
        grouped(snap.counter("server.net.recv_total")),
        grouped(snap.counter("server.net.answered_total")),
        grouped(snap.counter("server.shed_total")),
        snap.counter("server.net.degraded_entered_total"),
        grouped(snap.counter("server.net.malformed_total")),
    );
    println!(
        "  capture: {} datagrams tapped, {} dropped by the tap ({:.3}% measured loss), {} frames",
        grouped(captured.tapped),
        grouped(captured.tap_dropped),
        captured.loss_fraction() * 100.0,
        grouped(captured.frames.len() as u64),
    );

    // Gate 1 — nothing crashed.
    gate.check(
        outcome.server_error.is_none(),
        "serving loop exited cleanly",
    );

    // Gate 2 — exact conservation across real sockets.
    let failures = soak_gate_failures(&snap, impaired, impaired);
    for f in &failures {
        println!("  FAIL: {f}");
    }
    let conserved = failures.is_empty();
    gate.failures.extend(failures);
    gate.check(conserved, "ledger conservation closed exactly");
    gate.check(
        outcome.report.sent > args.sessions as u64,
        "swarm did real work (sent > sessions)",
    );
    if impaired {
        gate.check(
            snap.counter("faults.sock.to_server.dropped_total") > 0,
            "to-server drop fault fired",
        );
        gate.check(
            snap.counter("faults.sock.from_server.dropped_total") > 0,
            "from-server drop fault fired",
        );
    }
    gate.check(
        snap.counter("server.net.malformed_total") > 0,
        "hostile noise reached the malformed ledgers",
    );

    // Gate 3 — the live-captured traffic flows through the unchanged
    // pipeline into a dataset, checkpoints and all.
    let flight_dir = args.out.join("swarm_flight");
    fs::create_dir_all(&flight_dir).expect("flight dir");
    let opts = PipelineOptions {
        checkpoint_interval_us: (duration_us / 4).max(200_000),
        resume: None,
        faults: None,
        trace: Some(TraceOptions {
            ring_slots: 256,
            dump_dir: Some(flight_dir.clone()),
            max_dumps: 8,
        }),
    };
    let seed = 0x5317_0008u64;
    let mut sidecars = Vec::new();
    let scratch = args.out.join("swarm_sidecars");
    fs::create_dir_all(&scratch).expect("sidecar dir");
    let frames = std::mem::take(&mut captured.frames);
    let n_frames = frames.len();
    let pipeline_result = run_capture_pipeline_batched(
        frames.into_iter(),
        2,
        PaperScheme::paper(24),
        Some(BucketedArrays::new(ByteSelector::FIRST_TWO)),
        &registry,
        &opts,
        TailConfig::default(),
        DatasetWriter::new(Vec::new()).expect("vec writer"),
        |cut, writer_bytes| {
            let cp = Checkpoint::from_pipeline(seed, cut, writer_bytes);
            let path = scratch.join(format!("swarm_cp_{}.etwckpt", sidecars.len()));
            cp.write_atomic(&path).expect("sidecar write");
            sidecars.push(path);
        },
    );
    let (stats, _scheme, _fig3, writer) = match pipeline_result {
        Ok(x) => x,
        Err(e) => {
            eprintln!("swarm FAILED: pipeline rejected live capture: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "  pipeline: {} frames in, {} records decoded, {} checkpoints",
        grouped(n_frames as u64),
        grouped(stats.records),
        sidecars.len()
    );
    gate.check(
        stats.records > 0,
        "live-captured frames decode into dataset records",
    );
    gate.check(
        stats.records <= captured.tapped,
        "no more records than datagrams on the wire",
    );

    // Gate 4 — the anonymisation canary over every output surface of
    // the live-captured dataset.
    let dataset = writer.finish().expect("vec write");
    let mut leaks = sentinel::scan_surface("live dataset xml", &dataset);
    for path in &sidecars {
        let bytes = fs::read(path).expect("sidecar read");
        leaks.extend(sentinel::scan_surface("checkpoint sidecar", &bytes));
    }
    for entry in fs::read_dir(&flight_dir).expect("flight dir").flatten() {
        let bytes = fs::read(entry.path()).expect("dump read");
        leaks.extend(sentinel::scan_surface("flight dump", &bytes));
    }
    let final_snap = registry.snapshot();
    leaks.extend(sentinel::scan_surface(
        "/metrics",
        final_snap.render_prometheus().as_bytes(),
    ));
    for l in &leaks {
        println!("  FAIL: {l}");
    }
    let clean = leaks.is_empty();
    gate.failures.extend(leaks);
    gate.check(
        clean,
        "no sentinel identifier on any output surface (canary clean)",
    );

    write(
        &args.out,
        "swarm_dataset.xml",
        &String::from_utf8_lossy(&dataset),
    );
    write(&args.out, "swarm.prom", &final_snap.render_prometheus());
    let report_json = format!(
        "{{\n  \"sessions\": {},\n  \"sent\": {},\n  \"answers\": {},\n  \"timeouts\": {},\n  \
         \"retries\": {},\n  \"gave_up\": {},\n  \"noise\": {},\n  \"requests\": {},\n  \
         \"server_recv\": {},\n  \"server_answered\": {},\n  \"server_shed\": {},\n  \
         \"server_malformed\": {},\n  \"tapped\": {},\n  \"tap_dropped\": {},\n  \
         \"capture_loss\": {:.6},\n  \"records\": {}\n}}\n",
        outcome.report.sessions,
        outcome.report.sent,
        outcome.report.answers,
        outcome.report.timeouts,
        outcome.report.retries,
        outcome.report.gave_up,
        outcome.report.noise,
        outcome.report.requests,
        final_snap.counter("server.net.recv_total"),
        final_snap.counter("server.net.answered_total"),
        final_snap.counter("server.shed_total"),
        final_snap.counter("server.net.malformed_total"),
        captured.tapped,
        captured.tap_dropped,
        captured.loss_fraction(),
        stats.records,
    );
    write(&args.out, "swarm_report.json", &report_json);

    if gate.failures.is_empty() {
        println!(
            "swarm OK ({} sessions, {} live-captured records, canary clean)",
            outcome.report.sessions,
            grouped(stats.records)
        );
    } else {
        eprintln!("swarm FAILED: {} violation(s)", gate.failures.len());
        for f in &gate.failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}

/// The crash-resilience gate (`repro soak --faults`), run by ci.sh:
///
/// 1. an active probe over a lossy transport, so `probe.timeouts_total`
///    and `probe.retries_total` come from real expired deadlines;
/// 2. a fault-injected campaign streamed into a [`DatasetWriter`] with
///    checkpoints cut every `checkpoint_interval_secs`;
/// 3. a simulated kill at a random virtual time — the dataset file is
///    torn at an arbitrary byte past the last checkpoint — followed by
///    recovery (truncate to the checkpoint's writer offset) and resume;
/// 4. the ledger assertions: byte-identical rebuilt dataset, conserving
///    fault counters, every fault class nonzero.
///
/// Exits nonzero if any assertion fails.
fn soak(out: &Path, faults: bool, soak_seed: Option<u64>) {
    use edonkey_ten_weeks::edonkey::ids::{ClientId, FileId};
    use edonkey_ten_weeks::edonkey::messages::{FileEntry, Message};
    use edonkey_ten_weeks::edonkey::tags::{special, Tag, TagList};
    use edonkey_ten_weeks::faults::{DirectedRates, LossyChannel};
    use edonkey_ten_weeks::probe::{ActiveProber, ProbeTransport};
    use edonkey_ten_weeks::server::engine::ServerEngine;
    use edonkey_ten_weeks::xmlout::writer::DatasetWriter;
    use rand::Rng;
    use std::cell::RefCell;

    // OS entropy via std's randomized hasher: no wall clock involved,
    // and `--soak-seed` reproduces any failing run exactly.
    let kill_seed = soak_seed.unwrap_or_else(|| {
        use std::hash::{BuildHasher, Hasher};
        std::collections::hash_map::RandomState::new()
            .build_hasher()
            .finish()
    });
    println!("== soak: crash-resilient campaign gate (kill seed {kill_seed}) ==");
    let mut gate = Gate {
        failures: Vec::new(),
    };
    let registry = Registry::new();

    // Phase 1 — active probe over a lossy link, sharing the campaign's
    // registry so the final health dump shows the probe's real timeouts.
    let mut server = ServerEngine::new(edonkey_ten_weeks::server::engine::EngineConfig {
        max_search_results: 30,
        ..Default::default()
    });
    let vocab: Vec<String> = (0..40).map(|i| format!("word{i}")).collect();
    let mut vrng = StdRng::seed_from_u64(5);
    for i in 0..200usize {
        let name = format!(
            "{} {} track{i}.mp3",
            vocab[vrng.gen_range(0..vocab.len())],
            vocab[vrng.gen_range(0..vocab.len())]
        );
        let owner = ClientId((1000 + i * 31) as u32);
        server.handle(
            owner,
            &Message::OfferFiles {
                files: vec![FileEntry {
                    file_id: FileId::of_identity(i as u64),
                    client_id: owner,
                    port: 4662,
                    tags: TagList(vec![
                        Tag::str(special::FILENAME, name),
                        Tag::u32(special::FILESIZE, 4_000_000),
                    ]),
                }],
            },
        );
    }
    let mut prober = ActiveProber::new(ClientId(7), vocab, 1);
    prober.attach_telemetry(&registry);
    if faults {
        prober.attach_transport(ProbeTransport::new(
            LossyChannel::new(
                kill_seed ^ 0x7072_6f62,
                DirectedRates {
                    to_server: 0.35,
                    from_server: 0.2,
                },
                Vec::new(),
            ),
            500_000, // 0.5 s virtual deadline
            2,       // two retries before abandoning
            30_000,  // 30 ms RTT
        ));
    }
    let sample = prober.sweep(&mut server, 150, 600);
    println!(
        "  probe: {} searches, {} files found, virtual clock {:.2} s",
        sample.searches,
        sample.files.len(),
        prober.virtual_now_us() as f64 / 1e6
    );

    // Phase 2 — the faulty campaign, full run, dataset + checkpoints.
    let config = if faults {
        CampaignConfig::tiny_faulty()
    } else {
        let mut c = CampaignConfig::tiny();
        c.checkpoint_interval_secs = 300;
        c
    };
    let writer = RefCell::new(DatasetWriter::new(Vec::new()).expect("vec write"));
    let cps: RefCell<Vec<Checkpoint>> = RefCell::new(Vec::new());
    let report = try_run_campaign_checkpointed(
        &config,
        &registry,
        |r| writer.borrow_mut().write_record(&r).expect("vec write"),
        |mut cp| {
            cp.writer_bytes = writer.borrow().bytes_written();
            cps.borrow_mut().push(cp);
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("invalid campaign configuration: {e}");
        std::process::exit(2);
    });
    let full = writer.into_inner().finish().expect("vec write");
    let cps = cps.into_inner();
    println!(
        "  campaign: {} records, {} bytes, {} checkpoints",
        grouped(report.records),
        grouped(full.len() as u64),
        cps.len()
    );
    gate.check(cps.len() >= 4, "campaign cut at least 4 checkpoints");

    // Phase 3 — kill at a random virtual time. The tear lands anywhere
    // past the first checkpoint; recovery resumes from the last
    // checkpoint before it.
    let mut krng = StdRng::seed_from_u64(kill_seed);
    let tear_at = krng.gen_range(cps[0].writer_bytes as usize..full.len());
    let cp = cps
        .iter()
        .rev()
        .find(|c| c.writer_bytes as usize <= tear_at)
        .expect("tear past the first checkpoint");
    println!(
        "  kill: dataset torn at byte {} (virtual ~{:.0} s); resuming from the {:.0} s checkpoint \
         ({} records, {} bytes)",
        grouped(tear_at as u64),
        cp.next_checkpoint_us as f64 / 1e6,
        cp.virtual_us as f64 / 1e6,
        grouped(cp.records),
        grouped(cp.writer_bytes)
    );
    let sidecar = out.join("soak_checkpoint.etwckpt");
    cp.write_atomic(&sidecar).expect("write checkpoint sidecar");
    let cp = Checkpoint::read(&sidecar).expect("read checkpoint sidecar back");
    println!(
        "  wrote {} (inspect with `etwtool checkpoint-inspect`)",
        sidecar.display()
    );

    let mut torn = full[..tear_at].to_vec();
    torn.truncate(cp.writer_bytes as usize);
    let writer = RefCell::new(DatasetWriter::resume(torn, cp.records, cp.writer_bytes));
    let resume_registry = Registry::new();
    let resumed = try_resume_campaign_observed(
        &config,
        &resume_registry,
        &cp,
        |r| writer.borrow_mut().write_record(&r).expect("vec write"),
        |_| {},
    )
    .unwrap_or_else(|e| {
        eprintln!("resume rejected: {e}");
        std::process::exit(2);
    });
    let rebuilt = writer.into_inner().finish().expect("vec write");

    // Phase 4 — the verdicts.
    gate.check(
        resumed.records + cp.records == report.records,
        "resumed record count completes the full run's (no loss, no double count)",
    );
    gate.check(
        rebuilt == full,
        "rebuilt dataset is byte-identical to the uninterrupted run",
    );
    let snap = registry.snapshot();
    gate.check(
        snap.counter("probe.searches_total") == sample.searches,
        "probe telemetry matches the sample",
    );
    if faults {
        gate.check(
            snap.counter("probe.timeouts_total") > 0,
            "probe.timeouts_total nonzero (real expired deadlines)",
        );
        gate.check(
            snap.counter("probe.retries_total") > 0,
            "probe.retries_total nonzero",
        );
        let offered = snap.counter("faults.link.offered_total");
        gate.check(
            offered == report.capture.captured,
            "faults.link.offered_total equals captured frames",
        );
        let delivered = snap.counter("faults.link.delivered_total");
        gate.check(
            delivered
                == offered
                    - snap.counter("faults.link.dropped_total")
                    - snap.counter("faults.link.outage_dropped_total")
                    + snap.counter("faults.link.duplicated_total"),
            "link ledger: delivered = offered - dropped - outage + duplicated",
        );
        gate.check(
            delivered == report.pipeline.frames + report.pipeline.shed,
            "pipeline ledger: delivered = decoded frames + shed frames",
        );
        for c in [
            "faults.link.dropped_total",
            "faults.link.duplicated_total",
            "faults.link.reordered_total",
            "faults.link.delayed_total",
            "faults.link.truncated_total",
            "faults.link.outage_dropped_total",
            "faults.worker.crashes_total",
            "faults.worker.restarts_total",
            "pipeline.shed_total",
        ] {
            gate.check(snap.counter(c) > 0, &format!("{c} nonzero"));
        }
        gate.check(
            snap.counter("faults.worker.crashes_total")
                == snap.counter("faults.worker.restarts_total"),
            "every worker crash was restarted (no degradation in the soak preset)",
        );
        gate.check(
            snap.counter("faults.worker.degraded_total") == 0,
            "no worker degraded",
        );
    }
    write(out, "soak.prom", &snap.render_prometheus());

    if gate.failures.is_empty() {
        println!(
            "soak OK ({} records survived the kill)",
            grouped(report.records)
        );
    } else {
        eprintln!("soak FAILED: {} violation(s)", gate.failures.len());
        for f in &gate.failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
