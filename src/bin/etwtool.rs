//! Dataset toolbox for the released XML format — the utility a consumer
//! of the paper's public dataset would want.
//!
//! ```text
//! etwtool validate   <dataset[.etwz]>        check against the formal spec
//! etwtool stats      <dataset[.etwz]>        record counts + §3 quick stats
//! etwtool head       <dataset[.etwz]> [N]    print the first N records
//! etwtool compress   <in.xml> <out.etwz>     LZSS storage codec
//! etwtool decompress <in.etwz> <out.xml>
//! etwtool monitor    [--tiny] [--faulty] [--top] [--weeks N] [--shards N]  run a campaign with live telemetry
//! etwtool serve      [--addr HOST:PORT] [--tiny|--faulty]  campaign + /health.json + /metrics over HTTP
//! etwtool trace-dump <file.etwtrace>         pretty-print a flight-recorder dump
//! etwtool trace-check [--dir DIR]            faulty campaign must produce parseable flight dumps
//! etwtool lint       [--format text|json|sarif] [--list]   repo-specific static analysis (etwlint)
//! etwtool checkpoint-inspect <file.etwckpt>  describe a resume checkpoint sidecar
//! etwtool spec                               print the format specification
//! ```
//!
//! Compressed inputs are detected by magic and decompressed on the fly.

use edonkey_ten_weeks::analysis::report::{grouped, KvTable};
use edonkey_ten_weeks::analysis::DatasetStats;
use edonkey_ten_weeks::core::campaign::try_run_campaign_to_writer;
use edonkey_ten_weeks::core::pipeline::TailConfig;
use edonkey_ten_weeks::core::CampaignConfig;
use edonkey_ten_weeks::telemetry::{Registry, Snapshot};
use edonkey_ten_weeks::trace::ops::{serve, RegistryOps};
use edonkey_ten_weeks::trace::{file as trace_file, SpanKind};
use edonkey_ten_weeks::xmlout::compress::{compress, decompress, MAGIC};
use edonkey_ten_weeks::xmlout::reader::DatasetReader;
use edonkey_ten_weeks::xmlout::schema::{validate, SPEC};
use edonkey_ten_weeks::xmlout::writer::DatasetWriter;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("validate") => cmd_validate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("head") => cmd_head(&args[1..]),
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        Some("split") => cmd_split(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("monitor") => cmd_monitor(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("trace-dump") => cmd_trace_dump(&args[1..]),
        Some("trace-check") => cmd_trace_check(&args[1..]),
        Some("lint") => return cmd_lint(&args[1..]),
        Some("checkpoint-inspect") => cmd_checkpoint_inspect(&args[1..]),
        Some("spec") => {
            println!("{SPEC}");
            Ok(())
        }
        _ => {
            eprintln!(
                "usage: etwtool <validate|stats|head|compress|decompress|split|merge|monitor|serve|trace-dump|trace-check|lint|checkpoint-inspect|spec> [args]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("etwtool: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Loads a dataset file, transparently decompressing `.etwz` containers.
fn load(path: &str) -> Result<String, String> {
    let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let bytes = if bytes.len() >= 4 && &bytes[..4] == MAGIC {
        decompress(&bytes).map_err(|e| format!("{path}: {e}"))?
    } else {
        bytes
    };
    String::from_utf8(bytes).map_err(|_| format!("{path}: not valid UTF-8"))
}

fn one_arg<'a>(args: &'a [String], what: &str) -> Result<&'a str, String> {
    args.first()
        .map(String::as_str)
        .ok_or_else(|| format!("missing {what}"))
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let path = one_arg(args, "dataset path")?;
    let xml = load(path)?;
    let report = validate(&xml).map_err(|e| format!("INVALID: {e}"))?;
    println!("OK: {} records conform to etw-1.0", grouped(report.records));
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = one_arg(args, "dataset path")?;
    let xml = load(path)?;
    let mut stats = DatasetStats::new();
    let mut first_ts = u64::MAX;
    let mut last_ts = 0u64;
    for record in DatasetReader::new(&xml) {
        let r = record.map_err(|e| e.to_string())?;
        first_ts = first_ts.min(r.ts_us);
        last_ts = last_ts.max(r.ts_us);
        stats.observe(&r);
    }
    let mut t = KvTable::new();
    t.row("records", grouped(stats.records()))
        .row("queries", grouped(stats.queries()))
        .row(
            "span",
            if stats.records() == 0 {
                "-".to_owned()
            } else {
                format!("{:.1} hours", (last_ts - first_ts) as f64 / 3.6e9)
            },
        );
    let fam = stats.by_family();
    for (name, n) in [
        ("management", fam[0]),
        ("file searches", fam[1]),
        ("source searches", fam[2]),
        ("announcements", fam[3]),
    ] {
        t.row(format!("  {name}"), grouped(n));
    }
    let prov = stats.providers_per_file();
    let seek = stats.files_per_seeker();
    let sizes = stats.size_histogram_kb();
    t.row("files with providers", grouped(prov.total()))
        .row("max providers for one file", prov.max_value().unwrap_or(0))
        .row("clients asking", grouped(seek.total()))
        .row("clients asking exactly 52 files", seek.count(52))
        .row("files sized", grouped(sizes.total()))
        .row("files at exactly 700 MB", sizes.count(700 * 1024));
    print!("{}", t.render());
    Ok(())
}

fn cmd_head(args: &[String]) -> Result<(), String> {
    let path = one_arg(args, "dataset path")?;
    let n: usize = args
        .get(1)
        .map(|s| s.parse().map_err(|_| format!("bad count {s}")))
        .transpose()?
        .unwrap_or(10);
    let xml = load(path)?;
    for (i, record) in DatasetReader::new(&xml).take(n).enumerate() {
        let r = record.map_err(|e| e.to_string())?;
        println!("#{i} {r:?}");
    }
    Ok(())
}

fn cmd_compress(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err("usage: compress <in.xml> <out.etwz>".into());
    };
    let data = fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let packed = compress(&data);
    fs::write(output, &packed).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "{} -> {} bytes ({:.1}x)",
        data.len(),
        packed.len(),
        data.len() as f64 / packed.len().max(1) as f64
    );
    Ok(())
}

/// Splits a dataset into N time-contiguous chunks (`<out>.partK.xml`),
/// as large captures are released (the paper's dataset ships in pieces).
fn cmd_split(args: &[String]) -> Result<(), String> {
    let [input, parts] = args else {
        return Err("usage: split <dataset[.etwz]> <n-parts>".into());
    };
    let n: usize = parts
        .parse()
        .map_err(|_| format!("bad part count {parts}"))?;
    if n == 0 {
        return Err("part count must be positive".into());
    }
    let xml = load(input)?;
    let records: Vec<_> = DatasetReader::new(&xml)
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let per_part = records.len().div_ceil(n.max(1)).max(1);
    let stem = input.trim_end_matches(".etwz").trim_end_matches(".xml");
    for (k, chunk) in records.chunks(per_part).enumerate() {
        let path = format!("{stem}.part{k}.xml");
        let file = fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
        let mut w =
            edonkey_ten_weeks::xmlout::writer::DatasetWriter::new(std::io::BufWriter::new(file))
                .map_err(|e| e.to_string())?;
        for r in chunk {
            w.write_record(r).map_err(|e| e.to_string())?;
        }
        w.finish().map_err(|e| e.to_string())?;
        println!("wrote {path} ({} records)", chunk.len());
    }
    Ok(())
}

/// Merges dataset chunks back into one document, checking that record
/// timestamps stay non-decreasing across the seam.
fn cmd_merge(args: &[String]) -> Result<(), String> {
    if args.len() < 2 {
        return Err("usage: merge <out.xml> <part.xml>...".into());
    }
    let output = &args[0];
    let file = fs::File::create(output).map_err(|e| format!("{output}: {e}"))?;
    let mut w =
        edonkey_ten_weeks::xmlout::writer::DatasetWriter::new(std::io::BufWriter::new(file))
            .map_err(|e| e.to_string())?;
    let mut last_ts = 0u64;
    let mut total = 0u64;
    for part in &args[1..] {
        let xml = load(part)?;
        for record in DatasetReader::new(&xml) {
            let r = record.map_err(|e| format!("{part}: {e}"))?;
            if r.ts_us < last_ts {
                return Err(format!(
                    "{part}: timestamps regress across parts ({} < {last_ts}); \
                     merge parts in capture order",
                    r.ts_us
                ));
            }
            last_ts = r.ts_us;
            w.write_record(&r).map_err(|e| e.to_string())?;
            total += 1;
        }
    }
    w.finish().map_err(|e| e.to_string())?;
    println!("wrote {output} ({} records)", grouped(total));
    Ok(())
}

/// Runs a campaign on a worker thread while the foreground polls the
/// shared metric registry — the operator's view of the capture machine
/// keeping up (or not) with its own virtual link.
///
/// ```text
/// etwtool monitor [--tiny] [--faulty] [--top] [--weeks N] [--shards N]
///                 [--refresh-ms MS] [--prom FILE] [--trace-dir DIR]
/// ```
///
/// `--top` switches the single status line for a per-stage dashboard:
/// one row per pipeline stage with throughput, utilisation, service
/// p50/p99, queue-wait p99 and input-queue depth, a throughput
/// sparkline over the last 60 samples, and the fault ledger's deltas.
/// `--faulty` runs the soak configuration (lossy link, overload
/// windows, scheduled worker crashes); `--trace-dir` additionally arms
/// the flight recorder so fault events drop `flight_*.etwtrace` files
/// there.
fn cmd_monitor(args: &[String]) -> Result<(), String> {
    let mut tiny = false;
    let mut faulty = false;
    let mut top = false;
    let mut weeks = 1u64;
    let mut shards = 1usize;
    let mut refresh_ms = 500u64;
    let mut prom: Option<String> = None;
    let mut trace_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => tiny = true,
            "--faulty" => faulty = true,
            "--top" => top = true,
            "--trace-dir" => {
                trace_dir = Some(PathBuf::from(
                    it.next().ok_or("--trace-dir needs a directory")?,
                ));
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or("--shards needs a power of two in 1..=16")?
            }
            "--weeks" => {
                weeks = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or("--weeks needs a positive integer")?
            }
            "--refresh-ms" => {
                refresh_ms = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or("--refresh-ms needs a positive integer")?
            }
            "--prom" => {
                prom = Some(it.next().ok_or("--prom needs a file path")?.clone());
            }
            other => return Err(format!("unknown monitor option {other:?}")),
        }
    }

    let mut config = if faulty {
        CampaignConfig::tiny_faulty()
    } else if tiny {
        CampaignConfig::tiny()
    } else {
        let mut c = CampaignConfig::default();
        c.generator.duration_secs = weeks.max(1) * 7 * 86_400;
        c
    };
    // Cut health records often enough that even a tiny run shows a few.
    config.health_interval_secs = if tiny || faulty { 300 } else { 3_600 };
    if let Some(dir) = &trace_dir {
        config.trace_ring_slots = 256;
        config.trace_dump_dir = Some(dir.clone());
    }
    let total_virtual_secs = config.generator.duration_secs;

    // Drive the batched tail (anonymise→format→write) so the monitor
    // shows the formatter/writer stage counters; the dataset itself goes
    // to a sink — monitoring is about vitals, not output. `--shards N`
    // routes the anonymise stage through the shard pool, lighting up the
    // q_sh/q_asm columns.
    let tail = TailConfig {
        anon_shards: shards,
        ..TailConfig::default()
    };
    if !edonkey_ten_weeks::anonymize::shard::shard_count_valid(shards) {
        return Err(format!(
            "--shards must be a power of two in 1..=16, got {shards}"
        ));
    }
    let registry = Registry::new();
    let worker_registry = registry.clone();
    let worker = std::thread::spawn(move || {
        try_run_campaign_to_writer(
            &config,
            &worker_registry,
            tail,
            DatasetWriter::new(std::io::sink()).expect("sink write"),
            |_| {},
        )
        .map(|(report, writer)| {
            let _ = writer.finish();
            report
        })
    });

    println!(
        "monitoring campaign ({} virtual s; refresh every {refresh_ms} ms)",
        grouped(total_virtual_secs)
    );
    let mut prev = Snapshot::default();
    let mut spark: Vec<f64> = Vec::with_capacity(60);
    loop {
        let done = worker.is_finished();
        let snap = registry.snapshot();
        if top {
            print_top(&snap, &prev, refresh_ms, total_virtual_secs, &mut spark);
        } else {
            print_status_line(&snap, &prev, refresh_ms, total_virtual_secs);
        }
        prev = snap;
        if done {
            break;
        }
        std::thread::sleep(Duration::from_millis(refresh_ms));
    }
    let report = worker
        .join()
        .map_err(|_| "campaign thread panicked")?
        .map_err(|e| format!("campaign failed: {e}"))?;

    println!(
        "campaign finished: {} records, {} health snapshots, ring lost {}",
        grouped(report.records),
        report.health.records.len(),
        grouped(report.capture.lost)
    );
    if let Some(path) = prom {
        let text = registry.snapshot().render_prometheus();
        fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Runs the repo-specific static-analysis pass (etwlint) over the
/// workspace — the same catalogue the ci.sh gate enforces.
///
/// ```text
/// etwtool lint [--format text|json|sarif] [--root DIR] [--list]
/// ```
///
/// `--format json` emits the versioned `etwlint-report/1` document;
/// `--format sarif` a SARIF 2.1.0 log (what ci.sh archives under
/// `target/ci/`). Exit codes mirror the standalone binary: 0 clean, 1
/// unsuppressed diagnostics, 2 usage/scan error.
fn cmd_lint(args: &[String]) -> ExitCode {
    #[derive(PartialEq)]
    enum Format {
        Text,
        Json,
        Sarif,
    }
    let mut format = Format::Text;
    let mut list = false;
    let mut root: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => format = Format::Json,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    eprintln!("etwtool lint: unknown format {other:?} (text|json|sarif)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("etwtool lint: --format needs an argument (text|json|sarif)");
                    return ExitCode::from(2);
                }
            },
            "--list" => list = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(std::path::PathBuf::from(dir)),
                None => {
                    eprintln!("etwtool lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("etwtool lint: unknown option {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    if list {
        for (name, desc) in etwlint::rule_catalogue() {
            println!("{name:24} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| etwlint::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("etwtool lint: no workspace Cargo.toml above the current directory");
            return ExitCode::from(2);
        }
    };
    let report = match etwlint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("etwtool lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Json => println!("{}", etwlint::output::render_json_versioned(&report)),
        Format::Sarif => println!("{}", etwlint::output::render_sarif(&report)),
        Format::Text => {
            for d in &report.diagnostics {
                println!("{}", d.render());
            }
            eprintln!(
                "etwtool lint: {} file(s) scanned, {} diagnostic(s), {} suppressed",
                report.files_scanned,
                report.diagnostics.len(),
                report.suppressed.len()
            );
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Describes a resume-checkpoint sidecar: the state a killed campaign
/// restarts from (`repro soak` writes one at every cut).
fn cmd_checkpoint_inspect(args: &[String]) -> Result<(), String> {
    let path = one_arg(args, "checkpoint path")?;
    let cp = edonkey_ten_weeks::core::checkpoint::Checkpoint::read(std::path::Path::new(path))
        .map_err(|e| format!("{path}: {e}"))?;
    let mut t = KvTable::new();
    t.row("campaign seed", cp.seed)
        .row(
            "virtual time",
            format!("{:.3} s", cp.virtual_us as f64 / 1e6),
        )
        .row(
            "next checkpoint due",
            format!("{:.3} s", cp.next_checkpoint_us as f64 / 1e6),
        )
        .row("records written", grouped(cp.records))
        .row("dataset bytes at cut", grouped(cp.writer_bytes))
        .row(
            "distinct clients seen",
            grouped(cp.client_order.len() as u64),
        )
        .row("distinct files seen", grouped(cp.file_order.len() as u64))
        .row(
            "Fig. 3 tracker",
            match &cp.fig3_order {
                Some(order) => format!("{} fileIDs", grouped(order.len() as u64)),
                None => "absent".to_owned(),
            },
        );
    print!("{}", t.render());
    Ok(())
}

/// One line of operator-facing vitals, with per-refresh rates.
fn print_status_line(snap: &Snapshot, prev: &Snapshot, refresh_ms: u64, total_secs: u64) {
    let per_sec = |name: &str| {
        let d = snap.counter_delta(prev, name);
        d as f64 * 1_000.0 / refresh_ms.max(1) as f64
    };
    let virtual_secs = snap.gauge("campaign.virtual_secs").max(0) as u64;
    println!(
        "virt {:>7}s/{} ({:>5.1}%) | frames {:>11} ({:>9.0}/s) | records {:>11} | \
         fmt {:>8} batch {:>6.1} MB ({:>7.0} rec/s) | wr {:>6.1} MB | \
         lost {:>6} | q_in {:>4} | q_sh {:>3} | q_asm {:>3} | q_fmt {:>3} | q_wr {:>3} | \
         stalls {:>4}",
        virtual_secs,
        grouped(total_secs),
        virtual_secs as f64 * 100.0 / total_secs.max(1) as f64,
        grouped(snap.counter("stage.producer.frames_total")),
        per_sec("stage.producer.frames_total"),
        grouped(snap.counter("stage.sink.records_total")),
        grouped(snap.counter("stage.format.batches_total")),
        snap.counter("stage.format.bytes_total") as f64 / 1e6,
        per_sec("stage.format.records_total"),
        snap.counter("stage.write.bytes_total") as f64 / 1e6,
        snap.counter("ring.lost_total"),
        snap.gauge("chan.decode_in.depth"),
        // Shard-pool vitals: fan-out depth (shard_in + shard_out share
        // the pool's channels) and the assembler's batch queue. Flat
        // zero on a serial (--shards 1) run.
        snap.gauge("chan.shard_in.depth") + snap.gauge("chan.shard_out.depth"),
        snap.gauge("chan.asm_in.depth"),
        snap.gauge("chan.fmt_in.depth"),
        snap.gauge("chan.write_in.depth"),
        snap.counter("chan.decode_in.stalls_total"),
    );
}

/// The `--top` dashboard: one row per pipeline stage, driven entirely
/// by the `stage.<name>.latency_ns` / `queue_wait_ns` / `util_permille`
/// instruments the stage-span layer maintains, plus the input-queue
/// depth gauges. Stages that have not run yet (e.g. the shard pool on a
/// serial tail) are omitted.
fn print_top(
    snap: &Snapshot,
    prev: &Snapshot,
    refresh_ms: u64,
    total_secs: u64,
    spark: &mut Vec<f64>,
) {
    let virtual_secs = snap.gauge("campaign.virtual_secs").max(0) as u64;
    let frames_rate = snap.counter_delta(prev, "stage.producer.frames_total") as f64 * 1_000.0
        / refresh_ms.max(1) as f64;
    spark.push(frames_rate);
    if spark.len() > 60 {
        spark.remove(0);
    }
    println!(
        "── virt {:>7}s/{} ({:>5.1}%) ─ frames {:>9.0}/s ─ records {:>11} ─ lost {} ──",
        virtual_secs,
        grouped(total_secs),
        virtual_secs as f64 * 100.0 / total_secs.max(1) as f64,
        frames_rate,
        grouped(snap.counter("stage.sink.records_total")),
        grouped(snap.counter("ring.lost_total")),
    );
    println!("   thr {}", sparkline(spark));
    println!(
        "   {:<9} {:>9} {:>6} {:>9} {:>9} {:>9} {:>5}",
        "stage", "ops/s", "util\u{2030}", "p50 \u{b5}s", "p99 \u{b5}s", "wait99\u{b5}s", "q"
    );
    // (stage, its input-queue depth gauge)
    for (stage, queue) in [
        ("decode", "chan.decode_in.depth"),
        ("reorder", "chan.decode_out.depth"),
        ("shard", "chan.shard_in.depth"),
        ("assemble", "chan.asm_in.depth"),
        ("format", "chan.fmt_in.depth"),
        ("write", "chan.write_in.depth"),
    ] {
        let Some(lat) = snap.histogram(&format!("stage.{stage}.latency_ns")) else {
            continue;
        };
        let prev_count = prev
            .histogram(&format!("stage.{stage}.latency_ns"))
            .map_or(0, |h| h.count);
        let ops = (lat.count - prev_count) as f64 * 1_000.0 / refresh_ms.max(1) as f64;
        let wait99 = snap
            .histogram(&format!("stage.{stage}.queue_wait_ns"))
            .map_or(0, |h| h.quantile(0.99));
        println!(
            "   {:<9} {:>9.0} {:>6} {:>9.1} {:>9.1} {:>9.1} {:>5}",
            stage,
            ops,
            snap.gauge(&format!("stage.{stage}.util_permille")),
            lat.quantile(0.50) as f64 / 1e3,
            lat.quantile(0.99) as f64 / 1e3,
            wait99 as f64 / 1e3,
            snap.gauge(queue),
        );
    }
    print_shard_balance(snap, prev, refresh_ms);
    // Fault ledger: per-refresh deltas, printed only when something
    // happened in the window so a healthy run stays quiet.
    let ledger = [
        ("crash", "faults.worker.crashes_total"),
        ("restart", "faults.worker.restarts_total"),
        ("degraded", "faults.worker.degraded_total"),
        ("shed", "pipeline.shed_total"),
        ("link-drop", "faults.link.dropped_total"),
        ("dump", "trace.dumps_total"),
    ];
    let mut line = String::new();
    for (label, name) in ledger {
        let d = snap.counter_delta(prev, name);
        if d > 0 {
            line.push_str(&format!(" +{d} {label} (tot {})", snap.counter(name)));
        }
    }
    if !line.is_empty() {
        println!("   faults{line}");
    }
}

/// The shard-balance panel: one row per anonymiser shard, from the
/// per-shard `anon.shard<i>.*` ledgers the pipeline maintains next to
/// the aggregates. Shown only when the shard pool is actually fanned
/// out (≥2 shards with work), since a serial tail has nothing to skew.
/// `skew` is the spread between the busiest and laziest shard in the
/// refresh window — a persistently hot shard means the id spaces are
/// striping unevenly across the pool.
fn print_shard_balance(snap: &Snapshot, prev: &Snapshot, refresh_ms: u64) {
    const MAX_SHARDS: usize = 16;
    let active: Vec<usize> = (0..MAX_SHARDS)
        .filter(|s| snap.counter(&format!("anon.shard{s}.batches_total")) > 0)
        .collect();
    if active.len() < 2 {
        return;
    }
    println!(
        "   {:<9} {:>9} {:>11} {:>11} {:>9} {:>5}",
        "shard", "ops/s", "clientIDs", "fileIDs", "busy\u{2030}", "q"
    );
    let window_ns = refresh_ms.max(1) as f64 * 1e6;
    let mut min_ops = f64::MAX;
    let mut max_ops = 0.0f64;
    let mut min_q = i64::MAX;
    let mut max_q = i64::MIN;
    for &s in &active {
        let ops = snap.counter_delta(prev, &format!("anon.shard{s}.batches_total")) as f64
            * 1_000.0
            / refresh_ms.max(1) as f64;
        let busy = snap.counter_delta(prev, &format!("anon.shard{s}.busy_ns_total")) as f64;
        let depth = snap.gauge(&format!("anon.shard{s}.queue_depth"));
        min_ops = min_ops.min(ops);
        max_ops = max_ops.max(ops);
        min_q = min_q.min(depth);
        max_q = max_q.max(depth);
        println!(
            "   shard{:<4} {:>9.0} {:>11} {:>11} {:>9.0} {:>5}",
            s,
            ops,
            grouped(snap.counter(&format!("anon.shard{s}.client_ids_total"))),
            grouped(snap.counter(&format!("anon.shard{s}.file_ids_total"))),
            busy * 1_000.0 / window_ns,
            depth,
        );
    }
    println!(
        "   balance   ops skew {:>5.0}/s ({:.0}..{:.0}), depth skew {} ({}..{})",
        max_ops - min_ops,
        min_ops,
        max_ops,
        max_q - min_q,
        min_q,
        max_q,
    );
}

/// Renders samples as a fixed-height unicode sparkline, scaled to the
/// window's maximum.
fn sparkline(samples: &[f64]) -> String {
    const GLYPHS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    samples
        .iter()
        .map(|&v| {
            let idx = if max <= 0.0 {
                0
            } else {
                ((v / max) * 7.0).round() as usize
            };
            GLYPHS[idx.min(7)]
        })
        .collect()
}

/// Runs a campaign while serving its live metric registry over HTTP:
/// `GET /health.json` (counters, gauges, histogram summaries) and
/// `GET /metrics` (Prometheus text format).
///
/// ```text
/// etwtool serve [--addr HOST:PORT] [--tiny|--faulty] [--weeks N]
///               [--shards N] [--linger-ms MS]
/// ```
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:9463".to_string();
    let mut tiny = false;
    let mut faulty = false;
    let mut weeks = 1u64;
    let mut shards = 1usize;
    let mut linger_ms = 0u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--tiny" => tiny = true,
            "--faulty" => faulty = true,
            "--weeks" => {
                weeks = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or("--weeks needs a positive integer")?
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or("--shards needs a power of two in 1..=16")?
            }
            "--linger-ms" => {
                linger_ms = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or("--linger-ms needs a duration in ms")?
            }
            other => return Err(format!("unknown serve option {other:?}")),
        }
    }
    if !edonkey_ten_weeks::anonymize::shard::shard_count_valid(shards) {
        return Err(format!(
            "--shards must be a power of two in 1..=16, got {shards}"
        ));
    }
    let mut config = if faulty {
        CampaignConfig::tiny_faulty()
    } else if tiny {
        CampaignConfig::tiny()
    } else {
        let mut c = CampaignConfig::default();
        c.generator.duration_secs = weeks.max(1) * 7 * 86_400;
        c
    };
    config.health_interval_secs = if tiny || faulty { 300 } else { 3_600 };

    let registry = Registry::new();
    let server = serve(&addr, Arc::new(RegistryOps::new(registry.clone())))
        .map_err(|e| format!("{addr}: {e}"))?;
    println!(
        "serving GET /health.json and GET /metrics on http://{}",
        server.local_addr()
    );

    let tail = TailConfig {
        anon_shards: shards,
        ..TailConfig::default()
    };
    let worker_registry = registry.clone();
    let worker = std::thread::spawn(move || {
        try_run_campaign_to_writer(
            &config,
            &worker_registry,
            tail,
            DatasetWriter::new(std::io::sink()).expect("sink write"),
            |_| {},
        )
        .map(|(report, writer)| {
            let _ = writer.finish();
            report
        })
    });
    while !worker.is_finished() {
        std::thread::sleep(Duration::from_millis(100));
    }
    let report = worker
        .join()
        .map_err(|_| "campaign thread panicked")?
        .map_err(|e| format!("campaign failed: {e}"))?;
    println!(
        "campaign finished: {} records, {} health snapshots",
        grouped(report.records),
        report.health.records.len()
    );
    if linger_ms > 0 {
        println!("lingering {linger_ms} ms for late scrapes");
        std::thread::sleep(Duration::from_millis(linger_ms));
    }
    server.shutdown();
    Ok(())
}

/// Pretty-prints a `flight_*.etwtrace` dump written by the pipeline's
/// flight recorder.
fn cmd_trace_dump(args: &[String]) -> Result<(), String> {
    let path = one_arg(args, "trace path")?;
    let events = trace_file::read_file(std::path::Path::new(path))?;
    print!("{}", trace_file::render_dump(&events));
    Ok(())
}

/// The ci `trace` gate: runs the soak configuration (scheduled worker
/// crashes, overload, checkpoints) with the flight recorder armed and
/// asserts the observability contract — injected crashes produced
/// `flight_*.etwtrace` dumps, every dump parses, and the merged events
/// contain the fault markers.
///
/// ```text
/// etwtool trace-check [--dir DIR] [--shards N]
/// ```
fn cmd_trace_check(args: &[String]) -> Result<(), String> {
    let mut dir = PathBuf::from("target/trace-check");
    let mut shards = 2usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => dir = PathBuf::from(it.next().ok_or("--dir needs a directory")?),
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or("--shards needs a power of two in 1..=16")?
            }
            other => return Err(format!("unknown trace-check option {other:?}")),
        }
    }
    let _ = fs::remove_dir_all(&dir);

    let mut config = CampaignConfig::tiny_faulty();
    config.trace_ring_slots = 256;
    config.trace_dump_dir = Some(dir.clone());
    let registry = Registry::new();
    let tail = TailConfig {
        anon_shards: shards,
        ..TailConfig::default()
    };
    let (report, writer) = try_run_campaign_to_writer(
        &config,
        &registry,
        tail,
        DatasetWriter::new(std::io::sink()).map_err(|e| e.to_string())?,
        |_| {},
    )
    .map_err(|e| format!("campaign failed: {e}"))?;
    let _ = writer.finish();

    let snap = registry.snapshot();
    let crashes = snap.counter("faults.worker.crashes_total");
    if crashes == 0 {
        return Err("fault plan injected no worker crashes — nothing to check".into());
    }

    let mut dumps: Vec<PathBuf> = fs::read_dir(&dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "etwtrace"))
        .collect();
    dumps.sort();
    if dumps.is_empty() {
        return Err(format!(
            "{crashes} worker crash(es) but no flight dump under {}",
            dir.display()
        ));
    }
    let crash_dump = dumps
        .iter()
        .find(|p| p.to_string_lossy().contains("_crash_"))
        .ok_or("no crash-triggered flight dump among the files written")?;

    let mut events_total = 0usize;
    let mut crash_events = 0usize;
    for p in &dumps {
        let events = trace_file::read_file(p)?;
        if events.is_empty() {
            return Err(format!("{}: empty flight dump", p.display()));
        }
        events_total += events.len();
        crash_events += events
            .iter()
            .filter(|ev| ev.kind() == Some(SpanKind::Crash))
            .count();
    }
    if crash_events == 0 {
        return Err("no CRASH span event in any flight dump".into());
    }

    // The pretty-printer must accept what the recorder wrote: show the
    // head of the crash dump as proof.
    let rendered = trace_file::render_dump(&trace_file::read_file(crash_dump)?);
    println!("--- {} ---", crash_dump.display());
    for line in rendered.lines().take(12) {
        println!("{line}");
    }
    println!("---");

    let mut t = KvTable::new();
    t.row("records", grouped(report.records))
        .row("worker crashes", crashes)
        .row(
            "worker restarts",
            snap.counter("faults.worker.restarts_total"),
        )
        .row("frames shed", grouped(snap.counter("pipeline.shed_total")))
        .row("flight dumps", dumps.len() as u64)
        .row("dumps recorded ok", snap.counter("trace.dumps_total"))
        .row("span events dumped", grouped(events_total as u64))
        .row("CRASH events", crash_events as u64);
    print!("{}", t.render());
    println!("trace-check OK");
    Ok(())
}

fn cmd_decompress(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err("usage: decompress <in.etwz> <out.xml>".into());
    };
    let data = fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let plain = decompress(&data).map_err(|e| format!("{input}: {e}"))?;
    fs::write(output, &plain).map_err(|e| format!("{output}: {e}"))?;
    println!("{} -> {} bytes", data.len(), plain.len());
    Ok(())
}
