//! `etwserved` — the eDonkey directory server on a real UDP socket.
//!
//! ```text
//! etwserved [--bind ADDR] [--duration-secs N] [--impair] [--seed N]
//! ```
//!
//! Binds the serving loop ([`etw_server::net::ServerNet`]) on `--bind`
//! (default `127.0.0.1:4665`), answers eDonkey UDP queries until
//! `--duration-secs` elapses (0 = run until the process is killed), then
//! prints the ingress ledgers and the Prometheus exposition. `--impair`
//! arms the socket-level fault layer with a deterministic spec — useful
//! for driving a real client against a degraded server.
//!
//! This is the operational face of the serving loop; the CI gate around
//! the same code path is `repro swarm`.

use edonkey_ten_weeks::faults::sock::SocketImpairment;
use edonkey_ten_weeks::faults::{DirectedRates, FaultSpec};
use edonkey_ten_weeks::server::net::{NetConfig, NetLedger, ServerNet};
use edonkey_ten_weeks::server::{EngineConfig, ServerEngine};
use edonkey_ten_weeks::telemetry::Registry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct Args {
    bind: String,
    duration_secs: u64,
    impair: bool,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        bind: "127.0.0.1:4665".to_owned(),
        duration_secs: 0,
        impair: false,
        seed: 0xE7_5E12D,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--bind" => {
                args.bind = argv.next().unwrap_or_else(|| {
                    eprintln!("--bind needs an address");
                    std::process::exit(2);
                })
            }
            "--duration-secs" => {
                args.duration_secs = argv.next().and_then(|w| w.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--duration-secs needs an integer");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                args.seed = argv.next().and_then(|w| w.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                })
            }
            "--impair" => args.impair = true,
            "-h" | "--help" => {
                println!(
                    "usage: etwserved [--bind ADDR] [--duration-secs N] [--impair] [--seed N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let registry = Registry::new();
    let engine = ServerEngine::new(EngineConfig::default());
    let mut net = ServerNet::bind(&args.bind, engine, NetConfig::default(), &registry)
        .unwrap_or_else(|e| {
            eprintln!("etwserved: bind {} failed: {e}", args.bind);
            std::process::exit(1);
        });
    if args.impair {
        let rate = |to, from| DirectedRates {
            to_server: to,
            from_server: from,
        };
        let spec = FaultSpec {
            seed: args.seed,
            drop: rate(0.05, 0.05),
            duplicate: rate(0.02, 0.02),
            truncate: rate(0.03, 0.02),
            delay: rate(0.05, 0.05),
            delay_max_us: 50_000,
            ..FaultSpec::default()
        };
        net = net.with_impairment(SocketImpairment::new(spec, &registry));
    }
    let addr = net.local_addr();
    println!(
        "etwserved: listening on {addr}{}{}",
        if args.impair { " (impaired)" } else { "" },
        if args.duration_secs > 0 {
            format!(" for {}s", args.duration_secs)
        } else {
            " until killed".to_owned()
        }
    );

    let shutdown = Arc::new(AtomicBool::new(false));
    if args.duration_secs > 0 {
        let stop = Arc::clone(&shutdown);
        let secs = args.duration_secs;
        std::thread::Builder::new()
            .name("etwserved-timer".to_owned())
            .spawn(move || {
                std::thread::sleep(std::time::Duration::from_secs(secs));
                // ordering: release — pairs with the serving loop's
                // relaxed latch check; strictness is free off the hot path.
                stop.store(true, Ordering::Release);
            })
            .expect("spawn timer");
    }
    let net = {
        let stop = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("etwserved".to_owned())
            .spawn(move || {
                let r = net.run(&stop);
                (net, r)
            })
            .expect("spawn serving loop");
        match handle.join() {
            Ok((net, Ok(()))) => net,
            Ok((_, Err(e))) => {
                eprintln!("etwserved: serving loop failed: {e}");
                std::process::exit(1);
            }
            Err(_) => {
                eprintln!("etwserved: serving loop panicked");
                std::process::exit(1);
            }
        }
    };
    drop(net);

    let snap = registry.snapshot();
    let led = NetLedger::from_snapshot(&snap);
    println!("etwserved: shut down; ingress ledgers:");
    println!("  received          {}", led.recv);
    println!("  answered          {}", led.answered);
    println!("  answers sent      {}", led.answers_sent);
    println!(
        "  shed              {} (queue {}, degraded {}, backoff {})",
        led.shed, led.shed_queue, led.shed_degraded, led.shed_backoff
    );
    println!(
        "  malformed         {} (structural {}, decode {}, not-edonkey {}, oversize {})",
        led.malformed,
        led.malformed_structural,
        led.malformed_decode,
        led.malformed_not_edonkey,
        led.malformed_oversize
    );
    println!("  penalty boxed     {}", led.penalized);
    println!("  degraded entries  {}", led.degraded_entered);
    for failure in led.conservation_failures() {
        eprintln!("  CONSERVATION VIOLATION: {failure}");
    }
    println!("--- /metrics ---");
    print!("{}", snap.render_prometheus());
}
