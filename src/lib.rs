//! # edonkey-ten-weeks
//!
//! A full-system reproduction of **"Ten weeks in the life of an eDonkey
//! server"** (Frédéric Aidouni, Matthieu Latapy, Clémence Magnien —
//! arXiv:0809.3415, HotP2P/IPDPS 2009): the measurement stack, the
//! real-time anonymisation pipeline, the XML dataset, and the analyses
//! behind every figure in the paper.
//!
//! This crate re-exports the workspace members under one roof:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`edonkey`] | `etw-edonkey` | the eDonkey wire protocol and two-step decoder |
//! | [`netsim`] | `etw-netsim` | ethernet/IP/UDP, fragmentation, lossy libpcap-style capture |
//! | [`workload`] | `etw-workload` | the synthetic client population and traffic generator |
//! | [`server`] | `etw-server` | the directory server (file/source index, search answering) |
//! | [`anonymize`] | `etw-anonymize` | MD5 + order-of-appearance clientID/fileID encoders |
//! | [`xmlout`] | `etw-xmlout` | the XML dialog dataset (writer, parser, formal spec) |
//! | [`analysis`] | `etw-analysis` | histograms, power-law fits, peaks, time series |
//! | [`core`] | `etw-core` | the capture-machine pipeline and campaign driver |
//! | [`telemetry`] | `etw-telemetry` | lock-free metrics registry and virtual-time health snapshots |
//! | [`probe`] | `etw-probe` | active client-side measurement (the paper's proposed extension) |
//!
//! ## Quickstart
//!
//! ```
//! use edonkey_ten_weeks::core::{run_campaign, CampaignConfig};
//! use edonkey_ten_weeks::analysis::DatasetStats;
//!
//! // Simulate a (tiny) capture campaign and analyse the dataset.
//! let mut stats = DatasetStats::new();
//! let report = run_campaign(&CampaignConfig::tiny(), |record| stats.observe(&record));
//! assert!(report.distinct_clients > 0);
//! let fig4 = stats.providers_per_file(); // Fig. 4 of the paper
//! assert!(fig4.total() > 0);
//! ```
//!
//! See `examples/` for runnable scenarios and `src/bin/repro.rs` for the
//! binary that regenerates every table and figure of the paper.

pub mod sentinel;

pub use etw_analysis as analysis;
pub use etw_anonymize as anonymize;
pub use etw_bench as bench;
pub use etw_core as core;
pub use etw_edonkey as edonkey;
pub use etw_faults as faults;
pub use etw_netsim as netsim;
pub use etw_probe as probe;
pub use etw_server as server;
pub use etw_telemetry as telemetry;
pub use etw_trace as trace;
pub use etw_workload as workload;
pub use etw_xmlout as xmlout;
