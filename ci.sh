#!/bin/sh
# The full local gate: build, tests, lints, formatting. Run before
# pushing; everything must be green.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> repro soak --faults (kill+resume byte identity, fault ledgers)"
cargo run -q --release --bin repro -- soak --faults --out target/soak

echo "==> repro bench --smoke (tail speedup, zero-alloc formatter, trajectory vs BENCH_PR4.json)"
cargo run -q --release --bin repro -- bench --smoke --out target/bench

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> etwlint (repo-specific static analysis)"
cargo run -q --release -p etwlint

echo "==> etw-interleave (exhaustive schedule checks)"
cargo test -q -p etw-interleave

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
