#!/bin/sh
# The full local gate, as a staged runner. Run before pushing;
# everything must be green.
#
#   ./ci.sh                  run every stage in order
#   ./ci.sh --quick          build + test only (inner-loop smoke)
#   ./ci.sh --stage NAME     run one stage by name (repeatable)
#   ./ci.sh --timeout SECS   kill any stage still running after SECS
#   ./ci.sh --list           print the stage names and exit
#
# Each stage is timed and its full output captured under
# target/ci/<stage>.log; on failure the runner names the stage and
# points at its log, and the final table shows per-stage wall time
# either way. The same per-stage results are written machine-readably
# to target/ci/summary.json for tooling.
set -u

cd "$(dirname "$0")"

LOG_DIR=target/ci
mkdir -p "$LOG_DIR"

# name|description|command — the single source of truth for stage order.
STAGES='
build|cargo build --release|cargo build --release
test|workspace tests|cargo test -q --workspace
soak|kill+resume byte identity, fault ledgers|cargo run -q --release --bin repro -- soak --faults --out target/soak
swarm|real-socket loopback soak: impaired client swarm, exact conservation, live-capture canary|cargo run -q --release --bin repro -- swarm --faults --out target/swarm
bench|stage + end-to-end throughput, decode-ratio + swarm floors, trajectory vs newest BENCH_PR*.json|cargo run -q --release --bin repro -- bench --smoke --out target/bench
matrix|campaign matrix: widths 2^24/2^16 x anon shards 1/4 x source shards 1/4, byte-identical datasets|cargo run -q --release --bin repro -- matrix
trace|flight recorder: injected crashes must dump parseable flight_*.etwtrace|cargo run -q --release --bin etwtool -- trace-check --dir target/ci/flight
clippy|cargo clippy -D warnings|cargo clippy --workspace --all-targets -- -D warnings
etwlint|repo-specific static analysis + taint pass; SARIF under target/ci/|cargo run -q --release -p etwlint && cargo run -q --release -p etwlint -- --format sarif > target/ci/etwlint.sarif && cargo test -q -p etwlint --test fixture_corpus
interleave|exhaustive schedule checks (incl. shard conservation)|cargo test -q -p etw-interleave
fmt|cargo fmt --check|cargo fmt --check
'

QUICK_STAGES="build test"

stage_names() {
    printf '%s\n' "$STAGES" | sed -n 's/^\([^|]*\)|.*/\1/p'
}

stage_field() { # $1=name $2=field-number
    printf '%s\n' "$STAGES" | grep "^$1|" | cut -d'|' -f"$2"
}

selected=""
quick=0
stage_timeout=0
while [ $# -gt 0 ]; do
    case "$1" in
        --quick) quick=1 ;;
        --stage)
            shift
            [ $# -gt 0 ] || { echo "ci.sh: --stage needs a name" >&2; exit 2; }
            if ! stage_names | grep -qx "$1"; then
                echo "ci.sh: unknown stage '$1' (try --list)" >&2
                exit 2
            fi
            selected="$selected $1"
            ;;
        --timeout)
            shift
            [ $# -gt 0 ] || { echo "ci.sh: --timeout needs seconds" >&2; exit 2; }
            case "$1" in
                ''|*[!0-9]*) echo "ci.sh: --timeout wants a positive integer, got '$1'" >&2; exit 2 ;;
            esac
            stage_timeout=$1
            ;;
        --list)
            for s in $(stage_names); do
                printf '  %-10s %s\n' "$s" "$(stage_field "$s" 2)"
            done
            exit 0
            ;;
        *) echo "ci.sh: unknown option '$1' (--quick | --stage NAME | --timeout SECS | --list)" >&2; exit 2 ;;
    esac
    shift
done

if [ "$stage_timeout" -gt 0 ] && ! command -v timeout >/dev/null 2>&1; then
    echo "ci.sh: --timeout needs the coreutils timeout(1) binary" >&2
    exit 2
fi

if [ -n "$selected" ]; then
    run_list=$selected
elif [ "$quick" = 1 ]; then
    run_list=$QUICK_STAGES
else
    run_list=$(stage_names)
fi

# Per-stage results accumulate as "name status seconds" lines for the
# summary table. Wall time comes from date(1) so the script stays POSIX.
SUMMARY=""
failed=""

for s in $run_list; do
    desc=$(stage_field "$s" 2)
    cmd=$(stage_field "$s" 3)
    log="$LOG_DIR/$s.log"
    echo "==> $s: $desc"
    start=$(date +%s)
    # The timeout guard wraps the whole stage shell: a hung soak or
    # swarm stage (wedged socket, stuck thread) fails loudly with a
    # TIMEOUT status instead of wedging the runner. timeout(1) exits
    # 124 when it had to kill the stage.
    if [ "$stage_timeout" -gt 0 ]; then
        timeout "$stage_timeout" sh -c "$cmd" >"$log" 2>&1
        rc=$?
    else
        sh -c "$cmd" >"$log" 2>&1
        rc=$?
    fi
    if [ "$rc" -eq 0 ]; then
        status=ok
    elif [ "$stage_timeout" -gt 0 ] && [ "$rc" -eq 124 ]; then
        status=TIMEOUT
        failed="$failed $s"
    else
        status=FAIL
        failed="$failed $s"
    fi
    secs=$(( $(date +%s) - start ))
    SUMMARY="$SUMMARY$s|$status|$secs
"
    if [ "$status" = ok ]; then
        echo "    ok (${secs}s)"
    elif [ "$status" = TIMEOUT ]; then
        echo "    TIMEOUT after ${stage_timeout}s — last lines of $log:"
        tail -n 15 "$log" | sed 's/^/    | /'
    else
        echo "    FAILED (${secs}s) — last lines of $log:"
        tail -n 15 "$log" | sed 's/^/    | /'
    fi
done

# Machine-readable mirror of the table below. Stage names and statuses
# are shell-identifier-ish ([a-z_]+ / ok / FAIL / TIMEOUT), so plain
# string interpolation is valid JSON here.
summary_json="$LOG_DIR/summary.json"
{
    echo '['
    first=1
    printf '%s' "$SUMMARY" | while IFS='|' read -r s status secs; do
        [ -n "$s" ] || continue
        [ "$first" = 1 ] || echo ','
        first=0
        printf '  {"stage": "%s", "status": "%s", "wall_secs": %s}' "$s" "$status" "$secs"
    done
    echo
    echo ']'
} > "$summary_json"

echo
echo "stage      status  wall"
echo "---------  ------  ------"
printf '%s' "$SUMMARY" | while IFS='|' read -r s status secs; do
    [ -n "$s" ] && printf '%-9s  %-6s  %4ss\n' "$s" "$status" "$secs"
done
echo "(also written to $summary_json)"

if [ -n "$failed" ]; then
    echo
    echo "CI FAILED in stage(s):$failed (logs under $LOG_DIR/)"
    exit 1
fi
echo
echo "CI OK"
