//! Offline stand-in for the `parking_lot` crate.
//!
//! Backed by `std::sync` primitives; matches parking_lot's non-poisoning
//! API for the subset the workspace uses (`Mutex`, `RwLock`). A panic
//! while a lock is held simply clears the poison flag on the next
//! acquisition, mirroring parking_lot's behaviour of not poisoning.

#![warn(missing_docs)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn no_poisoning() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panic while held");
    }
}
