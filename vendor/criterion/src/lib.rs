//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-definition surface the workspace uses —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Throughput`], [`BenchmarkId`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — over a simple wall-clock harness: per benchmark it warms
//! up, sizes batches to roughly 25 ms, times `sample_size` batches, and
//! reports the median per-iteration time plus derived throughput.
//!
//! There is no statistical regression analysis, HTML report, or saved
//! baseline; the numbers are for same-run relative comparison (for
//! example, instrumented versus uninstrumented pipelines).

#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units used to convert measured time into throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A `function_name/parameter` identifier for parameterised benchmarks.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id rendered as the bare parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Median per-iteration time of the best sample, filled by `iter`.
    measured: Duration,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~10 ms has elapsed to settle caches and
        // estimate the per-iteration cost.
        let warmup = Duration::from_millis(10);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as u64 / warm_iters.max(1);

        // Size each sample batch to roughly 25 ms of work.
        let batch = (25_000_000u64 / per_iter.max(1)).clamp(1, 1_000_000);

        let samples = 7usize;
        let mut times: Vec<u64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            times.push(t.elapsed().as_nanos() as u64 / batch);
        }
        times.sort_unstable();
        self.measured = Duration::from_nanos(times[samples / 2]);
    }
}

/// A named group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs, enabling a
    /// throughput column in the output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this harness uses a fixed small
    /// sample count, so the requested size only floors at 1.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; batches are auto-sized.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_name();
        let mut bencher = Bencher {
            measured: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&name, bencher.measured);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.into_name();
        let mut bencher = Bencher {
            measured: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&name, bencher.measured);
        self
    }

    /// Ends the group. (Output is printed per-benchmark; this exists to
    /// mirror criterion's API.)
    pub fn finish(self) {}

    fn report(&self, bench: &str, per_iter: Duration) {
        let nanos = per_iter.as_nanos() as f64;
        let time = fmt_time(nanos);
        let line = match self.throughput {
            Some(Throughput::Elements(n)) if nanos > 0.0 => {
                let rate = n as f64 / (nanos * 1e-9);
                format!("time: [{time}]  thrpt: [{}]", fmt_rate(rate, "elem/s"))
            }
            Some(Throughput::Bytes(n)) if nanos > 0.0 => {
                let rate = n as f64 / (nanos * 1e-9);
                format!("time: [{time}]  thrpt: [{}]", fmt_rate(rate, "B/s"))
            }
            _ => format!("time: [{time}]"),
        };
        println!("{}/{bench:<40} {line}", self.name);
    }
}

fn fmt_time(nanos: f64) -> String {
    if nanos < 1e3 {
        format!("{nanos:.2} ns")
    } else if nanos < 1e6 {
        format!("{:.3} µs", nanos / 1e3)
    } else if nanos < 1e9 {
        format!("{:.3} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for API compatibility with `configure_from_args`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }
}

/// Collects benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups. When invoked with
/// `--test` (as `cargo test --benches` does), each benchmark still runs
/// its closure once via the normal path, which is the smoke-test
/// behaviour this harness provides anyway.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_nonzero_time() {
        let mut b = Bencher {
            measured: Duration::ZERO,
        };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.measured > Duration::ZERO);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("t");
            g.throughput(Throughput::Elements(10));
            g.bench_function("a", |b| {
                ran += 1;
                b.iter(|| 1 + 1)
            });
            g.bench_with_input(BenchmarkId::new("b", 4), &4u32, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        assert_eq!(ran, 1);
    }
}
