//! Offline stand-in for the `bytes` crate.
//!
//! The container this repository builds in has no access to crates.io,
//! so the workspace vendors the small slice of the `bytes` API it
//! actually uses: [`Bytes`], a cheaply cloneable, immutable, shared byte
//! buffer with O(1) slicing. Semantics match the real crate for the
//! methods provided; anything else is intentionally absent.

#![warn(missing_docs)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
///
/// Internally an `Arc<[u8]>` plus a window; `clone` and `slice` are O(1)
/// and never copy the underlying storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Storage,
    start: usize,
    end: usize,
}

#[derive(Clone)]
enum Storage {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Default for Storage {
    fn default() -> Self {
        Storage::Static(&[])
    }
}

impl Storage {
    fn as_slice(&self) -> &[u8] {
        match self {
            Storage::Static(s) => s,
            Storage::Shared(s) => s,
        }
    }
}

impl Bytes {
    /// Creates an empty buffer.
    pub const fn new() -> Bytes {
        Bytes {
            data: Storage::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Storage::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a new `Bytes` viewing `range` of this one (O(1), shares
    /// storage). Panics if the range is out of bounds, like the real
    /// crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The visible bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }

    /// Copies the visible bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data: Storage::Shared(data),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[3, 4]);
    }

    #[test]
    fn equality_and_empty() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_bounds_checked() {
        let b = Bytes::from_static(b"ab");
        let _ = b.slice(0..3);
    }
}
