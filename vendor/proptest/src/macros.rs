//! The `proptest!` family of macros.

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Supports an optional `#![proptest_config(...)]` header
/// and any number of functions per invocation.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strat = ($($strat,)+);
            $crate::test_runner::run_proptest(
                &config,
                stringify!($name),
                move |rng| {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::new_value(&strat, rng);
                    let mut case = || -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    case()
                },
            );
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Like `assert!`, but fails the current case instead of panicking so
/// the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!(
            $cond,
            concat!("assertion failed: ", stringify!($cond))
        )
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!`, but fails the current case instead of panicking.
/// Compares through references, so operands are not moved.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Like `assert_ne!`, but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (without failing the test) unless the
/// condition holds. Rejected cases do not count toward the case target.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among the listed strategies, all generating the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
