//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the property-testing surface it uses: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_recursive` / `boxed`, `any::<T>()`,
//! ranges and `&'static str` regex-subset patterns as strategies, tuple
//! and [`collection::vec`] composition, `prop_oneof!`, and the
//! [`proptest!`] / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the failure message and
//!   the case number; it is not minimised. Failures stay reproducible
//!   because every test derives its RNG seed from the test name (or
//!   `PROPTEST_SEED` when set).
//! * **String patterns** support the subset actually used here:
//!   sequences of char classes / literals with `{m}`, `{m,n}`, `*`,
//!   `+`, `?` quantifiers — not full regex.
//! * `PROPTEST_CASES` overrides the default case count (256), as
//!   upstream.

#![warn(missing_docs)]

pub mod test_runner {
    //! Case execution: config, RNG, error type, driver loop.

    use std::fmt;

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case's inputs were rejected (`prop_assume!`); it does not
        /// count against the test.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with the given message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "failed: {r}"),
            }
        }
    }

    /// The outcome of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG driving value generation (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator via SplitMix64 expansion.
        pub fn from_seed(seed: u64) -> TestRng {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            TestRng { s }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a over the test name: a stable per-test default seed.
    fn name_seed(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one `proptest!`-generated test to completion. Panics on the
    /// first failing case (no shrinking) and on reject exhaustion.
    pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| name_seed(name));
        let mut rng = TestRng::from_seed(seed);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let reject_limit = config.cases.saturating_mul(20).max(1_000);
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= reject_limit,
                        "proptest {name}: {rejected} cases rejected \
                         (only {passed}/{} accepted); strategy too narrow?",
                        config.cases
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {name}: case {} failed (seed {seed}):\n{msg}",
                        passed + 1
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! The `Strategy` abstraction and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Type-erases the strategy behind a cheaply cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
        }

        /// Builds a recursive strategy: `self` is the leaf, and `recurse`
        /// lifts a strategy for subtrees into one for a parent node. Up
        /// to `depth` recursion levels; the size-tuning parameters of the
        /// real crate are accepted and ignored (depth alone bounds our
        /// trees).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // Two leaf arms to one recursive arm keeps expected tree
                // size finite at every level.
                let rec = recurse(strat).boxed();
                strat = Union::new(vec![leaf.clone(), leaf.clone(), rec]).boxed();
            }
            strat
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.new_value(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// A union over the given non-empty alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "empty prop_oneof!");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// `&'static str` patterns generate matching strings (regex subset:
    /// char classes / literals with `{m}` / `{m,n}` / `*` / `+` / `?`).
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text protocol-friendly.
            (0x20u8 + rng.below(0x5F) as u8) as char
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub(crate) mod string {
    //! The regex-subset sampler behind `&'static str` strategies.

    use crate::test_runner::TestRng;

    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Generates a string matching `pattern`. Panics (at test time) on
    /// syntax outside the supported subset — better loud than silently
    /// wrong data.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for atom in &atoms {
            let span = (atom.max - atom.min + 1) as u64;
            let n = atom.min + rng.below(span) as usize;
            for _ in 0..n {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1, pattern);
                    i = next;
                    set
                }
                '\\' => {
                    i += 2;
                    vec![*chars
                        .get(i - 1)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max, next) = parse_quantifier(&chars, i, pattern);
            i = next;
            assert!(!set.is_empty(), "empty char class in pattern {pattern:?}");
            atoms.push(Atom {
                chars: set,
                min,
                max,
            });
        }
        atoms
    }

    /// Parses the body of a `[...]` class starting at `i` (past the
    /// bracket); returns the member set and the index past `]`.
    fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))
            } else {
                chars[i]
            };
            // Range like `a-z` (a `-` before `]` is a literal).
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let hi = chars[i + 2];
                assert!(c <= hi, "inverted range in pattern {pattern:?}");
                for code in c as u32..=hi as u32 {
                    if let Some(ch) = char::from_u32(code) {
                        set.push(ch);
                    }
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
        (set, i + 1)
    }

    /// Parses an optional quantifier at `i`; returns (min, max, next).
    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier min"),
                        hi.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                };
                assert!(min <= max, "inverted quantifier in {pattern:?}");
                (min, max, close + 1)
            }
            Some('*') => (0, 8, i + 1),
            Some('+') => (1, 8, i + 1),
            Some('?') => (0, 1, i + 1),
            _ => (1, 1, i),
        }
    }
}

mod macros;

pub mod prelude {
    //! Everything a property test file needs, mirroring the real crate.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module namespace (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn pattern_sampler_matches_class_and_quantifier() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = Strategy::new_value(&"[a-z]{2,12}", &mut rng);
            assert!((2..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::new_value(&"[0-9a-f]{32}", &mut rng);
            assert_eq!(t.len(), 32);
            assert!(t.chars().all(|c| c.is_ascii_hexdigit()));
            let u = Strategy::new_value(&"[ -~<>/\"=]{0,40}", &mut rng);
            assert!(u.len() <= 40);
            assert!(u.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_tuples_and_collections_compose() {
        let mut rng = rng();
        let strat =
            (0u32..100, crate::collection::vec(any::<u8>(), 1..5)).prop_map(|(n, v)| (n, v.len()));
        for _ in 0..200 {
            let (n, len) = strat.new_value(&mut rng);
            assert!(n < 100);
            assert!((1..=4).contains(&len));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = rng();
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = rng();
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&strat.new_value(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion never taken");
        assert!(max_depth <= 4, "depth bound exceeded: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro pipeline end to end, including rejection.
        #[test]
        fn macro_generates_and_filters(x in 0u32..1000, mut v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assume!(x != 17);
            v.push(1);
            prop_assert!(x < 1000);
            prop_assert_eq!(*v.last().unwrap(), 1);
            prop_assert_ne!(x, 17);
        }
    }
}
