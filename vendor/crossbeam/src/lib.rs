//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two facilities the workspace uses, with crossbeam's
//! signatures but std machinery underneath:
//!
//! * [`channel`] — bounded MPSC channels (`bounded`, `Sender`,
//!   `Receiver`, iteration, `try_send`) over `std::sync::mpsc`;
//! * [`thread`] — scoped threads (`thread::scope`, `Scope::spawn`,
//!   joinable handles) over `std::thread::scope`, returning `Err` when
//!   the scope observed a panic, as crossbeam does.
//!
//! The workspace's pipelines use multiple producers and a single
//! consumer per channel, which `std::sync::mpsc` covers exactly.

#![warn(missing_docs)]

pub mod channel {
    //! Bounded channels with crossbeam's surface API.

    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full.
        Full(T),
        /// The receiver disconnected.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a bounded channel. Cloneable.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued; errors if the receiver
        /// disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }

        /// Attempts to enqueue without blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.inner.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; errors when the channel is empty
        /// and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when empty or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }

        /// Blocking iterator over messages until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates a bounded channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's surface API.

    use std::any::Any;

    /// The result of joining a scoped thread (panic payload on `Err`).
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A handle into a running scope; spawn threads through it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope again so it can spawn siblings, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Owned permission to join a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its value or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all spawned threads are joined before this returns.
    /// Returns `Err` if the scope's own closure or an unjoined child
    /// panicked (crossbeam's contract).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_mpsc_round_trip() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
            }
        });
        std::thread::spawn(move || {
            for i in 5..10 {
                tx2.send(i).unwrap();
            }
        });
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn try_send_reports_full() {
        let (tx, _rx) = channel::bounded::<u8>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(
            tx.try_send(2),
            Err(channel::TrySendError::Full(2))
        ));
    }

    #[test]
    fn scoped_threads_borrow() {
        let data = [1, 2, 3];
        let sum = thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn scope_surfaces_panics() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("child panic"));
        });
        assert!(r.is_err());
    }
}
