//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no crates.io access, so the workspace vendors
//! the slice of `rand` it uses: [`Rng`] / [`RngCore`] / [`SeedableRng`],
//! [`rngs::StdRng`], [`distributions::Distribution`] +
//! [`distributions::Standard`], and [`seq::SliceRandom`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace only relies on
//! *determinism for a fixed seed* and on statistical quality, both of
//! which xoshiro256** provides. Ranges are sampled with Lemire's
//! widening-multiply method (bias ≤ 2⁻⁶⁴, irrelevant at simulation
//! scale).

#![warn(missing_docs)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = split_mix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = sm().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }
}

fn split_mix64(mut state: u64) -> impl FnMut() -> u64 {
    move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value whose type implements the [`distributions::Standard`]
    /// distribution (uniform bits; floats in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Draws uniformly from `range` (half-open or inclusive). Panics on
    /// an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`. Panics unless
    /// `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Fills the byte slice with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }

    /// Draws from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 uniform bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `u64` in `[0, span)` by widening multiply.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types [`Rng::gen_range`] can draw. The blanket
/// [`SampleRange`] impls below go through this trait so that
/// `Range<{integer}>: SampleRange<_>` has exactly one candidate and
/// type inference can flow from the range into the result (as with the
/// real crate's `Uniform` machinery).
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    (hi as i128 - lo as i128 + 1) as u64
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    (hi as i128 - lo as i128) as u64
                };
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        assert!(lo < hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) as f32 * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(lo, hi, true, rng)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&v[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod distributions {
    //! The distribution abstraction and the `Standard` distribution.

    use super::{unit_f64, Rng};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution for primitives: full-width
    /// uniform bits for integers, `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f64(rng.next_u64()) as f32
        }
    }

    impl<const N: usize> Distribution<[u8; N]> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> [u8; N] {
            let mut out = [0u8; N];
            rng.fill_bytes(&mut out);
            out
        }
    }
}

pub mod seq {
    //! Slice convenience methods.

    use super::{bounded_u64, Rng};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Distribution;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i32 = rng.gen_range(0..10);
            assert!((0..10).contains(&v));
            let w: u64 = rng.gen_range(5..=7);
            assert!((5..=7).contains(&w));
            let f: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bin count {c}");
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean {}", sum / 1e4);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn fill_covers_bytes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn distribution_through_trait_object_bound() {
        struct Two;
        impl Distribution<u32> for Two {
            fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> u32 {
                2
            }
        }
        fn takes_dyn(rng: &mut dyn super::RngCore) -> u32 {
            Two.sample(&mut &mut *rng)
        }
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(takes_dyn(&mut rng), 2);
        assert_eq!(rng.sample(Two), 2);
    }
}
