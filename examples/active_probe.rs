//! Active measurement — the complementary method the paper's conclusion
//! proposes: instead of capturing at the server, act as a client and
//! *probe*. Demonstrates (1) capture–recapture estimation of the index
//! size from two keyword sweeps, (2) Chao1 richness estimation from one
//! sweep, and (3) the popularity bias of client-side sampling — the
//! caveat the paper raises when it warns its statistics "are subject to
//! measurement bias".
//!
//! ```text
//! cargo run --release --example active_probe
//! ```

use edonkey_ten_weeks::edonkey::{ClientId, Message};
use edonkey_ten_weeks::probe::estimate::chao1;
use edonkey_ten_weeks::probe::prober::{estimate_index_size, popularity_bias, ActiveProber};
use edonkey_ten_weeks::server::engine::ServerEngine;
use edonkey_ten_weeks::telemetry::Registry;
use edonkey_ten_weeks::workload::catalog::{Catalog, CatalogParams};
use edonkey_ten_weeks::workload::clients::{Population, PopulationParams};
use edonkey_ten_weeks::workload::generator::{GeneratorParams, TrafficGenerator};
use std::collections::HashSet;

fn main() {
    // Populate a live server through ordinary client announcements.
    let catalog = Catalog::generate(
        &CatalogParams {
            n_files: 20_000,
            ..CatalogParams::default()
        },
        1,
    );
    let population = Population::generate(
        &PopulationParams {
            n_clients: 2_000,
            id_space_bits: 22,
            ..PopulationParams::default()
        },
        2,
    );
    let mut server = ServerEngine::default();
    let generator = TrafficGenerator::new(
        &catalog,
        &population,
        GeneratorParams {
            duration_secs: 2 * 3_600,
            ..GeneratorParams::default()
        },
        3,
    );
    for ev in generator {
        if matches!(ev.msg, Message::OfferFiles { .. }) {
            server.handle(ev.client, &ev.msg);
        }
    }
    let truth = server.index().file_count();
    println!("ground truth: server indexes {truth} files\n");

    // The probe dictionary: the same keyword vocabulary clients use.
    let vocab: Vec<String> = {
        let mut set = HashSet::new();
        for f in catalog.files() {
            for kw in &f.keywords {
                set.insert(kw.clone());
            }
        }
        let mut v: Vec<String> = set.into_iter().collect();
        v.sort();
        v
    };
    println!("probe dictionary: {} keywords", vocab.len());

    // Two independent sweeps → capture–recapture. Both probers report
    // into one registry (the probe.* metric namespace).
    let registry = Registry::new();
    let mut p1 = ActiveProber::new(ClientId(0x0030_0001), vocab.clone(), 10);
    let mut p2 = ActiveProber::new(ClientId(0x0030_0002), vocab.clone(), 20);
    p1.attach_telemetry(&registry);
    p2.attach_telemetry(&registry);
    let s1 = p1.sweep(&mut server, 400, 2_000);
    let s2 = p2.sweep(&mut server, 400, 0);
    println!(
        "sweep 1: {} files, {} sources discovered ({} searches, {} source queries)",
        s1.files.len(),
        s1.sources.len(),
        s1.searches,
        s1.source_queries
    );
    println!("sweep 2: {} files discovered", s2.files.len());

    let est = estimate_index_size(&s1, &s2);
    println!(
        "\ncapture-recapture: n1={} n2={} recaptured={} → estimated index = {:.0} ± {:.0} (truth {truth})",
        est.n1, est.n2, est.recaptured, est.estimated_files, est.sd
    );
    let err = (est.estimated_files - truth as f64).abs() / truth as f64;
    println!("relative error: {:.1} %", err * 100.0);
    println!(
        "note the failure mode: capture-recapture assumes *uniform independent* samples,\n\
         but keyword sweeps rediscover the same popular, keyword-rich files ({} of {} recaptured),\n\
         so the estimator collapses to the size of the reachable head. This is the measurement\n\
         bias (Stutzbach et al.) the paper cites — and why its server-side passive capture, which\n\
         sees every query, is the stronger instrument.",
        est.recaptured, est.n1
    );

    // Chao1 from provider-count frequencies of sweep 1.
    let f1 = s1.sources_per_file.values().filter(|&&n| n == 1).count() as u64;
    let f2 = s1.sources_per_file.values().filter(|&&n| n == 2).count() as u64;
    println!(
        "\nChao1 on provider frequencies: observed {} files with sources, f1={f1}, f2={f2} → ≥ {:.0} files have providers",
        s1.sources_per_file.len(),
        chao1(s1.sources_per_file.len() as u64, f1, f2)
    );

    let snap = registry.snapshot();
    println!(
        "\nprobe telemetry: {} searches, {} source queries, {} answers, {} timeouts",
        snap.counter("probe.searches_total"),
        snap.counter("probe.source_queries_total"),
        snap.counter("probe.answers_total"),
        snap.counter("probe.timeouts_total"),
    );

    // The bias the paper warns about.
    if let Some(bias) = popularity_bias(&s1, &server) {
        println!(
            "\nsampling bias: probed files have {bias:.2}x the mean provider count of the whole index"
        );
        println!(
            "(client-side probing over-represents popular content — the paper's §3 caveat, quantified)"
        );
    }
}
