//! Full capture campaign with on-disk artefacts: the anonymised XML
//! dataset (the paper's released format) and a pcap sample of the raw
//! captured traffic.
//!
//! ```text
//! cargo run --release --example capture_campaign [-- <output-dir>]
//! ```
//!
//! Produces `<output-dir>/dataset.xml` and `<output-dir>/sample.pcap`,
//! then re-reads the XML to prove the round trip (the paper's point
//! about a "rigorously specified" released format).

use edonkey_ten_weeks::core::{run_campaign, CampaignConfig};
use edonkey_ten_weeks::netsim::clock::VirtualTime;
use edonkey_ten_weeks::netsim::pcap::PcapWriter;
use edonkey_ten_weeks::xmlout::reader::DatasetReader;
use edonkey_ten_weeks::xmlout::schema::SPEC;
use edonkey_ten_weeks::xmlout::writer::DatasetWriter;
use std::fs;
use std::io::BufWriter;
use std::path::PathBuf;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("campaign-output"));
    fs::create_dir_all(&out_dir).expect("create output dir");

    // 1. Run the campaign, streaming records straight into the XML
    //    writer — the capture machine never holds the dataset in memory.
    let xml_path = out_dir.join("dataset.xml");
    let file = fs::File::create(&xml_path).expect("create dataset.xml");
    let mut writer = DatasetWriter::new(BufWriter::new(file)).expect("xml header");
    let report = run_campaign(&CampaignConfig::tiny(), |record| {
        writer.write_record(&record).expect("write record");
    });
    let records_written = writer.records();
    writer.finish().expect("close document");
    println!(
        "wrote {} records to {} ({} bytes)",
        records_written,
        xml_path.display(),
        fs::metadata(&xml_path).map(|m| m.len()).unwrap_or(0)
    );

    // 2. Ship the formal specification alongside, as the paper did.
    let spec_path = out_dir.join("SPEC.txt");
    fs::write(&spec_path, SPEC).expect("write spec");
    println!("wrote format specification to {}", spec_path.display());

    // 3. A pcap sample of what the raw captured traffic looks like
    //    (first stage of the paper's Fig. 1 pipeline).
    let mut pcap = PcapWriter::new(65_535);
    let sample = edonkey_ten_weeks::edonkey::Message::StatusRequest { challenge: 42 };
    let frames = edonkey_ten_weeks::core::wirepath::encapsulate(
        sample.encode(),
        edonkey_ten_weeks::edonkey::ClientId(0x1234),
        4672,
        edonkey_ten_weeks::core::wirepath::Direction::ToServer,
        1,
        1500,
    );
    for f in &frames {
        pcap.write(VirtualTime::ZERO, &f.to_bytes());
    }
    let pcap_path = out_dir.join("sample.pcap");
    fs::write(&pcap_path, pcap.into_bytes()).expect("write pcap");
    println!("wrote pcap sample to {}", pcap_path.display());

    // 4. Compressed storage (paper footnote 3: XML "once compressed,
    //    does not have a prohibitive space cost").
    let xml_bytes = fs::read(&xml_path).expect("read dataset");
    let compressed = edonkey_ten_weeks::xmlout::compress::compress(&xml_bytes);
    let z_path = out_dir.join("dataset.xml.etwz");
    fs::write(&z_path, &compressed).expect("write compressed");
    println!(
        "compressed dataset: {} -> {} bytes ({:.1}x) at {}",
        xml_bytes.len(),
        compressed.len(),
        edonkey_ten_weeks::xmlout::compress::ratio(xml_bytes.len(), compressed.len()),
        z_path.display()
    );
    assert_eq!(
        edonkey_ten_weeks::xmlout::compress::decompress(&compressed).expect("decompress"),
        xml_bytes
    );

    // 5. Prove the dataset round-trips: parse every record back.
    let xml = String::from_utf8(xml_bytes).expect("utf-8 dataset");
    let mut parsed = 0u64;
    for record in DatasetReader::new(&xml) {
        record.expect("well-formed record");
        parsed += 1;
    }
    assert_eq!(parsed, report.records, "round-trip lost records");
    println!("round-trip OK: parsed {parsed} records back from XML");
    println!(
        "dataset: {} distinct clients, {} distinct files",
        report.distinct_clients, report.distinct_files
    );
}
