//! Audience estimation — the application the paper sketches in
//! footnote 5: "This kind of statistics may be used to conduct audience
//! estimations for the files under concern, most probably audio files or
//! movies."
//!
//! Runs a campaign, then ranks files by their *distinct seeker* count —
//! the dataset-side audience measure — and compares popularity across
//! the seeker and provider dimensions (the supply/demand mismatch that
//! motivates the paper's "no notion of average client" remark).
//!
//! ```text
//! cargo run --release --example audience_estimation
//! ```

use edonkey_ten_weeks::anonymize::scheme::AnonMessage;
use edonkey_ten_weeks::core::{run_campaign, CampaignConfig};
use std::collections::{HashMap, HashSet};

fn main() {
    // Track per-file audiences directly from the anonymised stream,
    // exactly as a consumer of the released dataset would.
    let mut seekers: HashMap<u64, HashSet<u32>> = HashMap::new();
    let mut providers: HashMap<u64, HashSet<u32>> = HashMap::new();
    let report = run_campaign(&CampaignConfig::tiny(), |record| match &record.msg {
        AnonMessage::GetSources { files } => {
            for &f in files {
                seekers.entry(f).or_default().insert(record.peer);
            }
        }
        AnonMessage::OfferFiles { files } => {
            for e in files {
                providers.entry(e.file).or_default().insert(record.peer);
            }
        }
        _ => {}
    });
    println!(
        "campaign: {} records, {} distinct files observed",
        report.records, report.distinct_files
    );

    // Rank by audience.
    let mut ranked: Vec<(u64, usize)> = seekers.iter().map(|(&f, s)| (f, s.len())).collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    println!("\ntop 10 files by audience (distinct clients asking):");
    println!(
        "{:>10} {:>9} {:>10} {:>13}",
        "anonFile", "audience", "providers", "demand/supply"
    );
    for &(file, audience) in ranked.iter().take(10) {
        let supply = providers.get(&file).map(HashSet::len).unwrap_or(0);
        let ratio = audience as f64 / supply.max(1) as f64;
        println!("{file:>10} {audience:>9} {supply:>10} {ratio:>13.1}");
    }

    // The paper's heterogeneity claim, quantified: audience spans orders
    // of magnitude.
    let max = ranked.first().map(|&(_, a)| a).unwrap_or(0);
    let singletons = ranked.iter().filter(|&&(_, a)| a == 1).count();
    println!(
        "\naudience heterogeneity: max audience {max}, {singletons} files asked by exactly one client"
    );

    // Demand-only files: asked for but never provided — a quantity only
    // visible because the dataset links both dimensions.
    let unsupplied = ranked
        .iter()
        .filter(|&&(f, _)| !providers.contains_key(&f))
        .count();
    println!("{unsupplied} files were asked for but never announced by anyone (forged or off-server content)");
}
