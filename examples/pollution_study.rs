//! Pollution study — reproduces the paper's §2.4 detective story: forged
//! fileIDs (pollution, as studied by Lee et al., the paper's ref. [12])
//! silently concentrate in anonymisation buckets 0 and 256 when the
//! arrays are indexed by the first two fileID bytes, and a different
//! byte pair fixes it.
//!
//! Sweeps the polluter share of the population and prints, for each
//! level, the bucket imbalance under both selectors — showing the
//! phenomenon appears *only* with pollution and *only* under first-two-
//! bytes indexing.
//!
//! ```text
//! cargo run --release --example pollution_study
//! ```

use edonkey_ten_weeks::anonymize::fileid::{BucketedArrays, ByteSelector, FileIdAnonymizer};
use edonkey_ten_weeks::edonkey::Message;
use edonkey_ten_weeks::workload::catalog::{Catalog, CatalogParams};
use edonkey_ten_weeks::workload::clients::{ClassMix, Population, PopulationParams};
use edonkey_ten_weeks::workload::generator::{GeneratorParams, TrafficGenerator};

fn main() {
    let catalog = Catalog::generate(
        &CatalogParams {
            n_files: 5_000,
            ..CatalogParams::default()
        },
        1,
    );

    println!(
        "{:>12} {:>14} {:>14} {:>10} {:>10}",
        "polluter %", "max(first2)", "max(altbytes)", "bucket0", "bucket256"
    );

    for polluter_pct in [0.0, 0.5, 1.0, 2.0, 5.0] {
        let mix = ClassMix {
            polluter: polluter_pct / 100.0,
            ..ClassMix::paper_like()
        };
        let population = Population::generate(
            &PopulationParams {
                n_clients: 1_000,
                id_space_bits: 20,
                mix,
                ..PopulationParams::default()
            },
            2,
        );
        let generator = TrafficGenerator::new(
            &catalog,
            &population,
            GeneratorParams {
                duration_secs: 3_600,
                ..GeneratorParams::default()
            },
            3,
        );

        // Feed every announced fileID through both stores, exactly as
        // the capture machine's anonymiser would.
        let mut first = BucketedArrays::new(ByteSelector::FIRST_TWO);
        let mut alt = BucketedArrays::new(ByteSelector::ALTERNATIVE);
        for ev in generator {
            if let Message::OfferFiles { files } = &ev.msg {
                for e in files {
                    first.anonymize(&e.file_id);
                    alt.anonymize(&e.file_id);
                }
            }
        }
        let sizes = first.bucket_sizes();
        println!(
            "{:>12.1} {:>14} {:>14} {:>10} {:>10}",
            polluter_pct,
            first.max_bucket_size(),
            alt.max_bucket_size(),
            sizes[0],
            sizes[256],
        );
    }

    println!(
        "\nReading the table: without pollution both selectors stay balanced; \
         as polluters join, buckets 0/256 under first-two-bytes indexing absorb \
         every forged ID while the alternative byte pair stays flat — the paper's Fig. 3."
    );
}
