//! Behaviour study — runs the analyses the paper lists as opened-up
//! research directions (§3.2 and §4): provide/ask correlation,
//! communities of interest, growth curves, and file-spread speed.
//!
//! ```text
//! cargo run --release --example behavior_study
//! ```

use edonkey_ten_weeks::analysis::behavior::BehaviorStats;
use edonkey_ten_weeks::analysis::report::grouped;
use edonkey_ten_weeks::analysis::{fit_histogram, DatasetStats};
use edonkey_ten_weeks::core::{run_campaign, CampaignConfig};

fn main() {
    let mut config = CampaignConfig::tiny();
    config.population.n_clients = 600;
    config.generator.duration_secs = 6 * 3_600;

    let mut behavior = BehaviorStats::new();
    let mut stats = DatasetStats::new();
    let report = run_campaign(&config, |r| {
        behavior.observe(&r);
        stats.observe(&r);
    });
    println!(
        "campaign: {} records, {} clients, {} files\n",
        grouped(report.records),
        grouped(report.distinct_clients as u64),
        grouped(report.distinct_files)
    );

    // §3.2: correlation between files provided and files asked for.
    println!("== provide/ask correlation (paper §3.2's open question) ==");
    match behavior.provide_ask_correlation() {
        Some(c) => println!(
            "  over {} dual-role clients: Pearson {:.3}, Spearman {:.3}",
            c.n, c.pearson, c.spearman
        ),
        None => println!("  not enough dual-role clients"),
    }
    println!(
        "  ({} clients both provide and ask)\n",
        behavior.dual_role_clients()
    );

    // §4: communities of interest.
    println!("== communities of interest (co-asked files, label propagation) ==");
    let comms = behavior.communities(3, 50);
    println!("  {} communities of size >= 2", comms.len());
    for (i, c) in comms.iter().take(5).enumerate() {
        println!("  community #{i}: {} clients", c.len());
    }
    println!();

    // Wide-time-scale growth curves.
    println!("== growth of the observed population (hourly buckets) ==");
    let hours = |us: u64| us / 3_600_000_000;
    for (ts, n) in behavior.client_growth(3_600_000_000) {
        println!(
            "  after hour {:>2}: {:>6} distinct clients",
            hours(ts) + 1,
            n
        );
    }
    println!();

    // Keyword popularity: strings are hashed but joinable (§2.4), so
    // search-term popularity remains analysable from the dataset.
    println!("== search keyword popularity (hashed but joinable) ==");
    let kw = stats.keyword_popularity();
    println!(
        "  {} distinct hashed keywords, most-searched keyword used {} times",
        grouped(stats.distinct_keywords() as u64),
        kw.max_value().unwrap_or(0)
    );
    if let Some(fit) = fit_histogram(&kw) {
        println!(
            "  popularity distribution: alpha={:.2}, r2={:.3}",
            fit.alpha, fit.r2
        );
    }
    println!();

    // §4: how files spread among users.
    println!("== file spread: time from 1st to 5th provider ==");
    let h = behavior.spread_time_to_k(5);
    if h.total() == 0 {
        println!("  no file reached 5 providers at this scale");
    } else {
        let pts = h.sorted_points();
        let median_idx = h.total() / 2;
        let mut acc = 0;
        let mut median = 0;
        for (v, c) in &pts {
            acc += c;
            if acc > median_idx {
                median = *v;
                break;
            }
        }
        println!(
            "  {} files reached 5 providers; median spread time {}s, fastest {}s",
            h.total(),
            median,
            pts.first().map(|p| p.0).unwrap_or(0),
        );
    }
}
