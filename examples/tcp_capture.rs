//! TCP capture — a working demonstration of the measurement the paper
//! could not do (§2.2) and proposed as future work: capture eDonkey TCP
//! sessions, reconstruct the flows, decode the login handshake and the
//! message stream, and quantify what capture loss costs.
//!
//! ```text
//! cargo run --release --example tcp_capture
//! ```

use edonkey_ten_weeks::edonkey::ids::ClientId;
use edonkey_ten_weeks::edonkey::messages::{FileEntry, Message};
use edonkey_ten_weeks::edonkey::session::{handshake_response, IdAssigner, SessionMessage};
use edonkey_ten_weeks::edonkey::stream::{encode_stream, StreamDecoder};
use edonkey_ten_weeks::edonkey::tags::{special, Tag, TagList};
use edonkey_ten_weeks::edonkey::{FileId, SearchExpr};
use edonkey_ten_weeks::netsim::flows::{FlowOutcome, FlowReassembler};
use edonkey_ten_weeks::netsim::tcp::segmentize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds one client's TCP session: login handshake bytes prepended to a
/// run of ordinary messages.
fn session_stream(client_ip: u32, assigner: &mut IdAssigner, n_msgs: usize) -> Vec<u8> {
    // Login (the session messages use the same framing as the rest).
    let login = SessionMessage::LoginRequest {
        user_hash: {
            let mut h = [0u8; 16];
            h[..4].copy_from_slice(&client_ip.to_be_bytes());
            h
        },
        client_id: ClientId(0),
        port: 4662,
        tags: TagList(vec![Tag::u32(special::VERSION, 60)]),
    };
    // The server answers in its own direction; here we only build the
    // client→server stream, but run the handshake to exercise the ID
    // assignment rule.
    let reachable = !client_ip.is_multiple_of(4); // 25 % NATed clients
    let _answers = handshake_response(assigner, client_ip, reachable, "welcome");

    let mut msgs = Vec::with_capacity(n_msgs);
    for i in 0..n_msgs {
        msgs.push(match i % 3 {
            0 => Message::SearchRequest {
                expr: SearchExpr::keyword(format!("term{}", i % 11)),
            },
            1 => Message::GetSources {
                file_ids: vec![FileId::of_identity(i as u64)],
            },
            _ => Message::OfferFiles {
                files: vec![FileEntry {
                    file_id: FileId::of_identity(i as u64 * 31),
                    client_id: ClientId(client_ip),
                    port: 4662,
                    tags: TagList(vec![
                        Tag::str(special::FILENAME, format!("shared item {i}.mp3")),
                        Tag::u32(special::FILESIZE, 3_000_000),
                    ]),
                }],
            },
        });
    }
    let mut stream = Vec::new();
    // Frame the login like any other message: marker + len + body.
    let login_frame = login.encode();
    stream.push(0xE3);
    stream.extend_from_slice(&((login_frame.len() - 1) as u32).to_le_bytes());
    stream.extend_from_slice(&login_frame[1..]);
    stream.extend_from_slice(&encode_stream(&msgs));
    stream
}

fn main() {
    let mut assigner = IdAssigner::new();
    let n_flows = 200u32;
    let msgs_per_flow = 1_500usize; // ~60 KB sessions, ~45 segments

    for loss_pct in [0.0, 0.1, 0.5, 1.0, 2.0] {
        let mut rng = StdRng::seed_from_u64(42);
        let mut reasm = FlowReassembler::new();
        let mut complete = 0u64;
        let mut decoded_msgs = 0u64;
        let mut segments = 0u64;
        for f in 0..n_flows {
            let ip = 0x5200_0000 + f;
            let stream = session_stream(ip, &mut assigner, msgs_per_flow);
            let segs = segmentize(ip, 0x5216_0a01, 40_000, 4661, f * 7, &stream, 1460);
            for seg in &segs {
                segments += 1;
                if rng.gen_bool(loss_pct / 100.0) {
                    continue;
                }
                if let Some(FlowOutcome::Complete(bytes)) = reasm.push(seg) {
                    complete += 1;
                    let mut d = StreamDecoder::new();
                    decoded_msgs += d.push(&bytes).len() as u64;
                }
            }
        }
        println!(
            "segment loss {loss_pct:>4.1} %: {complete:>4}/{n_flows} flows complete, \
             {decoded_msgs:>6} messages decoded ({segments} segments seen)",
        );
    }
    println!(
        "\nNATed clients received low IDs 1..{} from the server's assigner — the 24-bit \
         clientID of the paper's §2.1.",
        assigner.low_ids_assigned()
    );
    println!(
        "The collapse above — percent-level segment loss destroying most flows — is the paper's \
         §2.2 footnote, measured. (See tests/tcp_extension.rs for the resynchronising decoder \
         that recovers most messages anyway.)"
    );
}
