//! Quickstart: simulate a small capture campaign and compute the paper's
//! headline statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use edonkey_ten_weeks::analysis::report::grouped;
use edonkey_ten_weeks::analysis::DatasetStats;
use edonkey_ten_weeks::core::{render_t1, run_campaign, CampaignConfig};

fn main() {
    // A tiny campaign: 200 clients, 30 virtual minutes. The default
    // configuration (CampaignConfig::default()) runs ~10k clients over a
    // virtual week; see `cargo run --release --bin repro -- all`.
    let config = CampaignConfig::tiny();

    // The campaign streams anonymised dataset records; we both count
    // them and feed the paper's §3 statistics accumulator.
    let mut stats = DatasetStats::new();
    let report = run_campaign(&config, |record| stats.observe(&record));

    println!("=== dataset summary (paper Table-equivalent) ===");
    print!("{}", render_t1(&report));

    println!("\n=== per-figure teasers ===");
    let fig4 = stats.providers_per_file();
    println!(
        "Fig 4: {} files have providers; most-provided file has {} providers",
        grouped(fig4.total()),
        fig4.max_value().unwrap_or(0)
    );
    let fig7 = stats.files_per_seeker();
    println!(
        "Fig 7: {} clients asked for files; the 52-query client cap shows as {} clients at exactly 52",
        grouped(fig7.total()),
        fig7.count(52)
    );
    let fig8 = stats.size_histogram_kb();
    println!(
        "Fig 8: {} files sized; {} sit exactly at the 700 MB CD peak",
        grouped(fig8.total()),
        fig8.count(700 * 1024)
    );
}
