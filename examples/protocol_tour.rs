//! Protocol tour: speak raw eDonkey to the directory server, watching
//! the bytes, the two-step decoder, and the anonymiser at each hop.
//! A guided walk through the paper's §2.1 message families.
//!
//! ```text
//! cargo run --example protocol_tour
//! ```

use edonkey_ten_weeks::anonymize::scheme::PaperScheme;
use edonkey_ten_weeks::edonkey::decoder::{DecodeOutcome, Decoder};
use edonkey_ten_weeks::edonkey::messages::FileEntry;
use edonkey_ten_weeks::edonkey::tags::{special, Tag, TagList};
use edonkey_ten_weeks::edonkey::{ClientId, FileId, Message, SearchExpr};
use edonkey_ten_weeks::server::engine::ServerEngine;

fn hex(bytes: &[u8]) -> String {
    bytes
        .iter()
        .take(24)
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(" ")
        + if bytes.len() > 24 { " …" } else { "" }
}

fn main() {
    let mut server = ServerEngine::default();
    let mut decoder = Decoder::new();
    let mut scheme = PaperScheme::paper(16);
    let alice = ClientId(0x1001);
    let bob = ClientId(0x2002);

    println!("== 1. announcement family: Alice publishes a file ==");
    let offer = Message::OfferFiles {
        files: vec![FileEntry {
            file_id: FileId::of_content(b"the actual file bytes"),
            client_id: alice,
            port: 4662,
            tags: TagList(vec![
                Tag::str(special::FILENAME, "midnight concert live.mp3"),
                Tag::u32(special::FILESIZE, 4_800_000),
                Tag::str(special::FILETYPE, "Audio"),
            ]),
        }],
    };
    let wire = offer.encode();
    println!("  on the wire ({} bytes): {}", wire.len(), hex(&wire));
    match decoder.push(&wire) {
        DecodeOutcome::Ok(msg) => {
            println!("  capture decoder: OK ({:?} family)", msg.family());
            server.handle(alice, &msg);
        }
        other => panic!("{other:?}"),
    }

    println!("\n== 2. file-search family: Bob searches by keywords ==");
    let query = Message::SearchRequest {
        expr: SearchExpr::and(
            SearchExpr::keyword("midnight"),
            SearchExpr::keyword("concert"),
        ),
    };
    println!(
        "  expression: {}",
        match &query {
            Message::SearchRequest { expr } => expr.to_string(),
            _ => unreachable!(),
        }
    );
    let answers = server.handle(bob, &query);
    let Message::SearchResponse { results } = &answers[0] else {
        panic!("expected results");
    };
    println!("  server answers with {} result(s):", results.len());
    for r in results {
        println!(
            "    fileID {} — \"{}\" ({} bytes)",
            r.file_id,
            r.tags.filename().unwrap_or("?"),
            r.tags.filesize().unwrap_or(0)
        );
    }

    println!("\n== 3. source-search family: Bob asks who provides it ==");
    let want = results[0].file_id;
    let answers = server.handle(
        bob,
        &Message::GetSources {
            file_ids: vec![want],
        },
    );
    let Message::FoundSources { sources, .. } = &answers[0] else {
        panic!("expected sources");
    };
    println!("  {} source(s): {:?}", sources.len(), sources);

    println!("\n== 4. management family: status ==");
    let answers = server.handle(bob, &Message::StatusRequest { challenge: 7 });
    println!("  {:?}", answers[0]);

    println!("\n== 5. what the released dataset stores (anonymised) ==");
    let record = scheme.anonymize(123_456, bob, &query);
    println!("  {record:?}");
    println!(
        "  note: keywords are MD5 digests, the peer is the dense integer {}, \
         and only time-since-capture-start remains",
        record.peer
    );

    println!("\n== 6. what happens to garbage on the wire ==");
    let mut broken = query.encode();
    broken.truncate(2);
    println!("  truncated message: {:?}", decoder.push(&broken));
    println!("  final decoder accounting: {:?}", decoder.stats());
}
