//! Population-size estimators for active measurement.
//!
//! A client probing a directory server only sees the files its queries
//! surface — a *sample* of the index. Estimating the index size from
//! samples is the classic capture–recapture problem; estimating how much
//! is still unseen from the sample's frequency profile is the
//! species-richness problem. Both are implemented here:
//!
//! * [`lincoln_petersen`] / [`chapman`] — two-sample capture–recapture;
//! * [`chao1`] — lower-bound richness from singleton/doubleton counts.

/// Two-sample Lincoln–Petersen estimate of population size.
///
/// `n1` marked in sample one, `n2` in sample two, `m` recaptured in
/// both. Returns `None` when `m == 0` (estimator undefined).
pub fn lincoln_petersen(n1: u64, n2: u64, m: u64) -> Option<f64> {
    if m == 0 {
        return None;
    }
    Some(n1 as f64 * n2 as f64 / m as f64)
}

/// Chapman's bias-corrected capture–recapture estimator — well-defined
/// even with zero recaptures and nearly unbiased for small samples.
pub fn chapman(n1: u64, n2: u64, m: u64) -> f64 {
    ((n1 + 1) as f64) * ((n2 + 1) as f64) / ((m + 1) as f64) - 1.0
}

/// Chao1 species-richness lower bound: observed species `s_obs`, with
/// `f1` seen exactly once and `f2` exactly twice.
pub fn chao1(s_obs: u64, f1: u64, f2: u64) -> f64 {
    if f2 == 0 {
        // Bias-corrected form for f2 = 0.
        s_obs as f64 + f1 as f64 * (f1 as f64 - 1.0) / 2.0
    } else {
        s_obs as f64 + f1 as f64 * f1 as f64 / (2.0 * f2 as f64)
    }
}

/// Variance of the Chapman estimator (for confidence intervals).
pub fn chapman_variance(n1: u64, n2: u64, m: u64) -> f64 {
    let (n1, n2, m) = (n1 as f64, n2 as f64, m as f64);
    (n1 + 1.0) * (n2 + 1.0) * (n1 - m) * (n2 - m) / ((m + 1.0) * (m + 1.0) * (m + 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn lincoln_petersen_exact_cases() {
        // Sample 1 marks 100 of 1000; sample 2 of 100 should recapture
        // ~10 → estimate 1000.
        assert_eq!(lincoln_petersen(100, 100, 10), Some(1000.0));
        assert_eq!(lincoln_petersen(10, 10, 0), None);
    }

    #[test]
    fn chapman_defined_at_zero_recaptures() {
        let est = chapman(10, 10, 0);
        assert!((est - 120.0).abs() < 1e-9);
    }

    #[test]
    fn chapman_close_to_lp_for_large_m() {
        let lp = lincoln_petersen(5000, 5000, 500).unwrap();
        let ch = chapman(5000, 5000, 500);
        assert!((lp - ch).abs() / lp < 0.01, "{lp} vs {ch}");
    }

    #[test]
    fn capture_recapture_recovers_simulated_population() {
        // Ground truth: N = 20_000. Two independent uniform samples.
        let n = 20_000u64;
        let mut rng = StdRng::seed_from_u64(77);
        let sample = |rng: &mut StdRng| -> std::collections::HashSet<u64> {
            (0..3_000).map(|_| rng.gen_range(0..n)).collect()
        };
        let s1 = sample(&mut rng);
        let s2 = sample(&mut rng);
        let m = s1.intersection(&s2).count() as u64;
        let est = chapman(s1.len() as u64, s2.len() as u64, m);
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.1, "estimate {est} vs {n} (err {err})");
        // Variance is positive and the true value is inside ±4σ.
        let sd = chapman_variance(s1.len() as u64, s2.len() as u64, m).sqrt();
        assert!(sd > 0.0);
        assert!((est - n as f64).abs() < 4.0 * sd, "{est} ± {sd} vs {n}");
    }

    #[test]
    fn chao1_behaviour() {
        // No singletons: nothing suggests unseen mass.
        assert_eq!(chao1(100, 0, 10), 100.0);
        // Many singletons, few doubletons: large unseen mass.
        assert!(chao1(100, 50, 5) > 300.0);
        // f2 = 0 fallback.
        assert_eq!(chao1(10, 4, 0), 10.0 + 6.0);
    }

    #[test]
    fn chao1_never_below_observed() {
        for s in [1u64, 10, 1000] {
            for f1 in [0u64, 1, 50] {
                for f2 in [0u64, 1, 50] {
                    assert!(chao1(s, f1, f2) >= s as f64);
                }
            }
        }
    }
}
