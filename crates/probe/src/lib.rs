//! # etw-probe — active client-side measurement
//!
//! The paper's capture is passive and server-side; its introduction
//! situates it as "complementary of … client-side passive or active
//! measurements", and the conclusion proposes "measuring the eDonkey
//! activity using complementary methods (active measurements from
//! clients, for instance)". This crate is that complementary method:
//!
//! * [`prober`] — a protocol-speaking crawler: keyword sweeps + source
//!   enumeration against a directory server;
//! * [`estimate`] — capture–recapture (Lincoln–Petersen, Chapman) and
//!   species-richness (Chao1) estimators of what the probe *cannot* see;
//! * [`prober::popularity_bias`] — quantifies the sampling bias the
//!   paper warns about (§3, citing Stutzbach et al.): keyword probing
//!   over-represents popular files.
//!
//! ## Example
//!
//! ```
//! use etw_edonkey::{ClientId, FileId, Message};
//! use etw_edonkey::messages::FileEntry;
//! use etw_edonkey::tags::{special, Tag, TagList};
//! use etw_probe::prober::ActiveProber;
//! use etw_server::engine::ServerEngine;
//!
//! let mut server = ServerEngine::default();
//! server.handle(ClientId(42), &Message::OfferFiles { files: vec![FileEntry {
//!     file_id: FileId([1; 16]),
//!     client_id: ClientId(42),
//!     port: 4662,
//!     tags: TagList(vec![
//!         Tag::str(special::FILENAME, "sunrise mix.mp3"),
//!         Tag::u32(special::FILESIZE, 1_000_000),
//!     ]),
//! }]});
//! let mut prober = ActiveProber::new(ClientId(7), vec!["sunrise".into()], 1);
//! let sample = prober.sweep(&mut server, 5, 10);
//! assert_eq!(sample.files.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod estimate;
pub mod prober;

pub use estimate::{chao1, chapman, lincoln_petersen};
pub use prober::{
    estimate_index_size, popularity_bias, ActiveProber, IndexEstimate, ProbeSample, ProbeTransport,
};
