//! The active probing client.
//!
//! The paper's measurement is *passive* (capture at the server) and
//! "complementary of … client-side passive or active measurements"
//! (§1); its conclusion proposes "active measurements from clients" as
//! an extension. [`ActiveProber`] is such a client: it speaks the normal
//! protocol (keyword searches, then source queries) against a directory
//! server and records what a client can learn — including how *biased*
//! that view is, the caveat the paper raises via its citation of
//! Stutzbach et al. on unbiased sampling.

use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::Message;
use etw_edonkey::search::SearchExpr;
use etw_server::engine::ServerEngine;
use etw_telemetry::{Counter, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Live metrics for the probing client (`probe.*` namespace). All
/// handles are no-ops until [`ActiveProber::attach_telemetry`] is
/// called, so uninstrumented probers pay nothing.
#[derive(Clone, Debug, Default)]
struct ProbeTelemetry {
    /// `probe.searches_total` — search queries sent.
    searches: Counter,
    /// `probe.source_queries_total` — GetSources queries sent.
    source_queries: Counter,
    /// `probe.answers_total` — answer messages received (all kinds).
    answers: Counter,
    /// `probe.timeouts_total` — queries that yielded zero answers (the
    /// simulated server never loses a datagram, so for now this counts
    /// empty result sets; a lossy transport will feed real timeouts).
    timeouts: Counter,
}

/// What one probe sweep observed.
#[derive(Clone, Debug, Default)]
pub struct ProbeSample {
    /// Distinct files surfaced by searches.
    pub files: HashSet<FileId>,
    /// Distinct providers surfaced by source queries.
    pub sources: HashSet<ClientId>,
    /// Source count per discovered file (from follow-up GetSources).
    pub sources_per_file: HashMap<FileId, usize>,
    /// Search queries spent.
    pub searches: u64,
    /// Source queries spent.
    pub source_queries: u64,
}

/// An active-measurement client.
pub struct ActiveProber {
    /// The probing client's identity at the server.
    pub client: ClientId,
    dictionary: Vec<String>,
    rng: StdRng,
    telemetry: ProbeTelemetry,
}

impl ActiveProber {
    /// Builds a prober with a keyword dictionary (the crawl vocabulary).
    pub fn new(client: ClientId, dictionary: Vec<String>, seed: u64) -> Self {
        assert!(!dictionary.is_empty(), "empty probe dictionary");
        ActiveProber {
            client,
            dictionary,
            rng: StdRng::seed_from_u64(seed ^ 0x7072_6f62), // "prob"
            telemetry: ProbeTelemetry::default(),
        }
    }

    /// Mirrors probe activity into `registry` (metrics
    /// `probe.searches_total`, `probe.source_queries_total`,
    /// `probe.answers_total`, `probe.timeouts_total`).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = ProbeTelemetry {
            searches: registry.counter("probe.searches_total"),
            source_queries: registry.counter("probe.source_queries_total"),
            answers: registry.counter("probe.answers_total"),
            timeouts: registry.counter("probe.timeouts_total"),
        };
    }

    /// Runs one sweep: up to `search_budget` random-keyword searches,
    /// each followed by source queries for every newly discovered file
    /// (up to `source_budget` total).
    pub fn sweep(
        &mut self,
        server: &mut ServerEngine,
        search_budget: u64,
        source_budget: u64,
    ) -> ProbeSample {
        let mut sample = ProbeSample::default();
        for _ in 0..search_budget {
            let kw = &self.dictionary[self.rng.gen_range(0..self.dictionary.len())];
            sample.searches += 1;
            self.telemetry.searches.inc();
            let answers = server.handle(
                self.client,
                &Message::SearchRequest {
                    expr: SearchExpr::keyword(kw.clone()),
                },
            );
            self.telemetry.answers.add(answers.len() as u64);
            if answers.is_empty() {
                self.telemetry.timeouts.inc();
            }
            let mut fresh = Vec::new();
            for a in &answers {
                if let Message::SearchResponse { results } = a {
                    for r in results {
                        if sample.files.insert(r.file_id) {
                            fresh.push(r.file_id);
                        }
                    }
                }
            }
            // Enumerate providers of newly discovered files.
            for file_id in fresh {
                if sample.source_queries >= source_budget {
                    break;
                }
                sample.source_queries += 1;
                self.telemetry.source_queries.inc();
                let answers = server.handle(
                    self.client,
                    &Message::GetSources {
                        file_ids: vec![file_id],
                    },
                );
                self.telemetry.answers.add(answers.len() as u64);
                if answers.is_empty() {
                    self.telemetry.timeouts.inc();
                }
                for a in &answers {
                    if let Message::FoundSources { sources, .. } = a {
                        sample.sources_per_file.insert(file_id, sources.len());
                        for s in sources {
                            sample.sources.insert(s.client_id);
                        }
                    }
                }
            }
        }
        sample
    }
}

/// Estimates from two independent sweeps (capture–recapture over the
/// discovered-file sets).
#[derive(Clone, Copy, Debug)]
pub struct IndexEstimate {
    /// Files seen in sweep one.
    pub n1: u64,
    /// Files seen in sweep two.
    pub n2: u64,
    /// Files seen in both.
    pub recaptured: u64,
    /// Chapman estimate of the indexed-file population.
    pub estimated_files: f64,
    /// Standard deviation of the estimate.
    pub sd: f64,
}

/// Capture–recapture estimate of the server's index size from two
/// sweeps.
pub fn estimate_index_size(a: &ProbeSample, b: &ProbeSample) -> IndexEstimate {
    let n1 = a.files.len() as u64;
    let n2 = b.files.len() as u64;
    let m = a.files.intersection(&b.files).count() as u64;
    IndexEstimate {
        n1,
        n2,
        recaptured: m,
        estimated_files: crate::estimate::chapman(n1, n2, m),
        sd: crate::estimate::chapman_variance(n1, n2, m).sqrt(),
    }
}

/// Quantifies the sampling bias the paper warns about: the mean
/// source-count of *probed* files versus the mean over the *whole*
/// index. Keyword sampling surfaces popular files first, so the probed
/// mean is an overestimate; the ratio measures by how much.
pub fn popularity_bias(sample: &ProbeSample, server: &ServerEngine) -> Option<f64> {
    if sample.sources_per_file.is_empty() {
        return None;
    }
    let probed_mean = sample
        .sources_per_file
        .values()
        .map(|&n| n as f64)
        .sum::<f64>()
        / sample.sources_per_file.len() as f64;
    let index = server.index();
    let total_files = index.file_count() as u64;
    if total_files == 0 {
        return None;
    }
    let mut total_sources = 0u64;
    for slot in 0..total_files {
        total_sources += index.file(slot as u32).sources.len() as u64;
    }
    let true_mean = total_sources as f64 / total_files as f64;
    Some(probed_mean / true_mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etw_edonkey::messages::FileEntry;
    use etw_edonkey::tags::{special, Tag, TagList};

    /// A server indexing `n` files named from a small vocabulary, with a
    /// popularity-skewed provider assignment.
    fn populated_server(n: usize) -> (ServerEngine, Vec<String>) {
        let mut server = ServerEngine::new(etw_server::engine::EngineConfig {
            max_search_results: 30,
            ..Default::default()
        });
        let vocab: Vec<String> = (0..60).map(|i| format!("word{i}")).collect();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..n {
            let w1 = &vocab[rng.gen_range(0..vocab.len())];
            let w2 = &vocab[rng.gen_range(0..vocab.len())];
            let name = format!("{w1} {w2} track{i}.mp3");
            // Popular head: early files get many providers.
            let providers = 1 + 200 / (i + 1);
            for p in 0..providers {
                let entry = FileEntry {
                    file_id: FileId::of_identity(i as u64),
                    client_id: ClientId((1000 + i * 31 + p) as u32),
                    port: 4662,
                    tags: TagList(vec![
                        Tag::str(special::FILENAME, name.clone()),
                        Tag::u32(special::FILESIZE, 4_000_000),
                        Tag::str(special::FILETYPE, "Audio"),
                    ]),
                };
                server.handle(
                    ClientId((1000 + i * 31 + p) as u32),
                    &Message::OfferFiles { files: vec![entry] },
                );
            }
        }
        (server, vocab)
    }

    #[test]
    fn sweep_discovers_files_and_sources() {
        let (mut server, vocab) = populated_server(300);
        let mut prober = ActiveProber::new(ClientId(7), vocab, 1);
        let sample = prober.sweep(&mut server, 100, 1_000);
        assert!(sample.files.len() > 100, "found {}", sample.files.len());
        assert!(!sample.sources.is_empty());
        assert_eq!(sample.searches, 100);
        assert!(sample.source_queries > 0);
        // Discovered source counts match the index, modulo the server's
        // per-answer cap (max_sources = 50 by default).
        for (f, &n) in &sample.sources_per_file {
            assert_eq!(n, server.index().sources_for(f, 50).len());
        }
    }

    #[test]
    fn capture_recapture_estimates_index_size() {
        let (mut server, vocab) = populated_server(400);
        let truth = server.index().file_count() as f64;
        let mut p1 = ActiveProber::new(ClientId(7), vocab.clone(), 1);
        let mut p2 = ActiveProber::new(ClientId(8), vocab, 2);
        let s1 = p1.sweep(&mut server, 150, 0);
        let s2 = p2.sweep(&mut server, 150, 0);
        let est = estimate_index_size(&s1, &s2);
        assert!(est.recaptured > 0);
        // Keyword sampling is biased toward multi-keyword-matched files,
        // so the estimate is rough — but it must be the right order of
        // magnitude.
        assert!(
            est.estimated_files > truth * 0.5 && est.estimated_files < truth * 2.0,
            "estimate {} vs truth {truth}",
            est.estimated_files
        );
    }

    #[test]
    fn popularity_bias_is_positive() {
        let (mut server, vocab) = populated_server(300);
        let mut prober = ActiveProber::new(ClientId(7), vocab, 3);
        // Small budget: only what the first few searches surface.
        let sample = prober.sweep(&mut server, 10, 50);
        let bias = popularity_bias(&sample, &server).expect("bias");
        // The probe must not *under*-represent popular files: keyword
        // search returns every match, so at worst the view is unbiased,
        // and source-count ordering in answers skews it upward.
        assert!(bias > 0.5, "bias {bias}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut s1, vocab) = populated_server(100);
        let (mut s2, _) = populated_server(100);
        let a = ActiveProber::new(ClientId(7), vocab.clone(), 9).sweep(&mut s1, 50, 100);
        let b = ActiveProber::new(ClientId(7), vocab, 9).sweep(&mut s2, 50, 100);
        assert_eq!(a.files, b.files);
        assert_eq!(a.sources, b.sources);
    }

    #[test]
    #[should_panic(expected = "empty probe dictionary")]
    fn empty_dictionary_rejected() {
        let _ = ActiveProber::new(ClientId(1), Vec::new(), 0);
    }

    #[test]
    fn telemetry_counts_match_sample() {
        let (mut server, vocab) = populated_server(200);
        let registry = Registry::new();
        let mut prober = ActiveProber::new(ClientId(7), vocab, 1);
        prober.attach_telemetry(&registry);
        let sample = prober.sweep(&mut server, 80, 500);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("probe.searches_total"), sample.searches);
        assert_eq!(
            snap.counter("probe.source_queries_total"),
            sample.source_queries
        );
        // Every query is either answered or counted as a timeout.
        assert!(snap.counter("probe.answers_total") > 0);
        assert!(
            snap.counter("probe.answers_total") + snap.counter("probe.timeouts_total")
                >= sample.searches + sample.source_queries
        );
    }

    #[test]
    fn unattached_prober_records_nothing() {
        let (mut server, vocab) = populated_server(50);
        let mut prober = ActiveProber::new(ClientId(7), vocab, 1);
        // No attach_telemetry: handles are no-ops and nothing panics.
        let sample = prober.sweep(&mut server, 10, 20);
        assert!(sample.searches == 10);
    }
}
