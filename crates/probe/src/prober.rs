//! The active probing client.
//!
//! The paper's measurement is *passive* (capture at the server) and
//! "complementary of … client-side passive or active measurements"
//! (§1); its conclusion proposes "active measurements from clients" as
//! an extension. [`ActiveProber`] is such a client: it speaks the normal
//! protocol (keyword searches, then source queries) against a directory
//! server and records what a client can learn — including how *biased*
//! that view is, the caveat the paper raises via its citation of
//! Stutzbach et al. on unbiased sampling.

use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::Message;
use etw_edonkey::search::SearchExpr;
use etw_faults::{LinkDirection, LossyChannel};
use etw_server::engine::ServerEngine;
use etw_telemetry::{Counter, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Live metrics for the probing client (`probe.*` namespace). All
/// handles are no-ops until [`ActiveProber::attach_telemetry`] is
/// called, so uninstrumented probers pay nothing.
#[derive(Clone, Debug, Default)]
struct ProbeTelemetry {
    /// `probe.searches_total` — search queries sent.
    searches: Counter,
    /// `probe.source_queries_total` — GetSources queries sent.
    source_queries: Counter,
    /// `probe.answers_total` — answer messages received (all kinds).
    answers: Counter,
    /// `probe.timeouts_total` — requests abandoned after the virtual-time
    /// deadline expired on every retry. Only a lossy transport can
    /// produce these: an attached [`ProbeTransport`] drops requests or
    /// answers, and the client's deadline + bounded-retry loop gives up.
    timeouts: Counter,
    /// `probe.retries_total` — request re-sends after an expired
    /// deadline (each timeout is preceded by `max_retries` of these).
    retries: Counter,
    /// `probe.empty_answers_total` — requests the server answered with
    /// nothing (no matches). Distinct from a timeout: the exchange
    /// completed, there was just nothing to learn.
    empty_answers: Counter,
}

/// A client-side UDP transport model: requests and answers cross a
/// [`LossyChannel`], and the client enforces a virtual-time deadline
/// with bounded exponential-backoff retries — the loop every real
/// eDonkey client runs.
///
/// Time is virtual and advances only inside the prober: `rtt_us` per
/// completed exchange, the (doubling) deadline per lost one.
#[derive(Debug)]
pub struct ProbeTransport {
    link: LossyChannel,
    /// Deadline for the first attempt, µs of virtual time; doubles on
    /// each retry.
    pub timeout_us: u64,
    /// Re-sends after the first expired deadline before giving up.
    pub max_retries: u32,
    /// Round-trip time of a completed exchange, µs.
    pub rtt_us: u64,
}

impl ProbeTransport {
    /// A transport over `link` with the given deadline policy.
    pub fn new(link: LossyChannel, timeout_us: u64, max_retries: u32, rtt_us: u64) -> Self {
        ProbeTransport {
            link,
            timeout_us,
            max_retries,
            rtt_us,
        }
    }
}

/// What one probe sweep observed.
#[derive(Clone, Debug, Default)]
pub struct ProbeSample {
    /// Distinct files surfaced by searches.
    pub files: HashSet<FileId>,
    /// Distinct providers surfaced by source queries.
    pub sources: HashSet<ClientId>,
    /// Source count per discovered file (from follow-up GetSources).
    pub sources_per_file: HashMap<FileId, usize>,
    /// Search queries spent.
    pub searches: u64,
    /// Source queries spent.
    pub source_queries: u64,
}

/// An active-measurement client.
pub struct ActiveProber {
    /// The probing client's identity at the server.
    pub client: ClientId,
    dictionary: Vec<String>,
    rng: StdRng,
    telemetry: ProbeTelemetry,
    transport: Option<ProbeTransport>,
    clock_us: u64,
}

impl ActiveProber {
    /// Builds a prober with a keyword dictionary (the crawl vocabulary).
    pub fn new(client: ClientId, dictionary: Vec<String>, seed: u64) -> Self {
        assert!(!dictionary.is_empty(), "empty probe dictionary");
        ActiveProber {
            client,
            dictionary,
            rng: StdRng::seed_from_u64(seed ^ 0x7072_6f62), // "prob"
            telemetry: ProbeTelemetry::default(),
            transport: None,
            clock_us: 0,
        }
    }

    /// Mirrors probe activity into `registry` (metrics
    /// `probe.searches_total`, `probe.source_queries_total`,
    /// `probe.answers_total`, `probe.timeouts_total`,
    /// `probe.retries_total`, `probe.empty_answers_total`).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = ProbeTelemetry {
            searches: registry.counter("probe.searches_total"),
            source_queries: registry.counter("probe.source_queries_total"),
            answers: registry.counter("probe.answers_total"),
            timeouts: registry.counter("probe.timeouts_total"),
            retries: registry.counter("probe.retries_total"),
            empty_answers: registry.counter("probe.empty_answers_total"),
        };
    }

    /// Routes all exchanges through a lossy transport. Without one the
    /// prober talks to the server directly (a perfect link).
    pub fn attach_transport(&mut self, transport: ProbeTransport) {
        self.transport = Some(transport);
    }

    /// The prober's virtual clock, µs: advances with every exchange over
    /// an attached transport (RTTs and expired deadlines).
    pub fn virtual_now_us(&self) -> u64 {
        self.clock_us
    }

    /// One request/response exchange. Over a perfect link this is a
    /// direct call. Over a [`ProbeTransport`] the request and each
    /// answer datagram independently survive the lossy link, and a lost
    /// exchange costs the (doubling) deadline before the bounded retry
    /// loop re-sends — after `max_retries` expiries the request is
    /// abandoned and counted in `probe.timeouts_total`.
    fn exchange(&mut self, server: &mut ServerEngine, msg: &Message) -> Vec<Message> {
        let Some(t) = self.transport.as_mut() else {
            let answers = server.handle(self.client, msg);
            if answers.is_empty() {
                self.telemetry.empty_answers.inc();
            }
            return answers;
        };
        let mut deadline = t.timeout_us;
        for attempt in 0..=t.max_retries {
            if t.link.delivers(LinkDirection::ToServer, self.clock_us) {
                let answers = server.handle(self.client, msg);
                if answers.is_empty() {
                    // The request arrived and the server had nothing to
                    // say: a completed exchange, not a timeout.
                    self.clock_us += t.rtt_us;
                    self.telemetry.empty_answers.inc();
                    return answers;
                }
                let delivered: Vec<Message> = answers
                    .into_iter()
                    .filter(|_| t.link.delivers(LinkDirection::FromServer, self.clock_us))
                    .collect();
                if !delivered.is_empty() {
                    self.clock_us += t.rtt_us;
                    return delivered;
                }
                // Every answer datagram was lost: to the client this is
                // indistinguishable from a lost request.
            }
            self.clock_us += deadline;
            deadline = deadline.saturating_mul(2);
            if attempt < t.max_retries {
                self.telemetry.retries.inc();
            }
        }
        self.telemetry.timeouts.inc();
        Vec::new()
    }

    /// Runs one sweep: up to `search_budget` random-keyword searches,
    /// each followed by source queries for every newly discovered file
    /// (up to `source_budget` total).
    pub fn sweep(
        &mut self,
        server: &mut ServerEngine,
        search_budget: u64,
        source_budget: u64,
    ) -> ProbeSample {
        let mut sample = ProbeSample::default();
        for _ in 0..search_budget {
            let kw = self.dictionary[self.rng.gen_range(0..self.dictionary.len())].clone();
            sample.searches += 1;
            self.telemetry.searches.inc();
            let msg = Message::SearchRequest {
                expr: SearchExpr::keyword(kw),
            };
            let answers = self.exchange(server, &msg);
            self.telemetry.answers.add(answers.len() as u64);
            let mut fresh = Vec::new();
            for a in &answers {
                if let Message::SearchResponse { results } = a {
                    for r in results {
                        if sample.files.insert(r.file_id) {
                            fresh.push(r.file_id);
                        }
                    }
                }
            }
            // Enumerate providers of newly discovered files.
            for file_id in fresh {
                if sample.source_queries >= source_budget {
                    break;
                }
                sample.source_queries += 1;
                self.telemetry.source_queries.inc();
                let msg = Message::GetSources {
                    file_ids: vec![file_id],
                };
                let answers = self.exchange(server, &msg);
                self.telemetry.answers.add(answers.len() as u64);
                for a in &answers {
                    if let Message::FoundSources { sources, .. } = a {
                        sample.sources_per_file.insert(file_id, sources.len());
                        for s in sources {
                            sample.sources.insert(s.client_id);
                        }
                    }
                }
            }
        }
        sample
    }
}

/// Estimates from two independent sweeps (capture–recapture over the
/// discovered-file sets).
#[derive(Clone, Copy, Debug)]
pub struct IndexEstimate {
    /// Files seen in sweep one.
    pub n1: u64,
    /// Files seen in sweep two.
    pub n2: u64,
    /// Files seen in both.
    pub recaptured: u64,
    /// Chapman estimate of the indexed-file population.
    pub estimated_files: f64,
    /// Standard deviation of the estimate.
    pub sd: f64,
}

/// Capture–recapture estimate of the server's index size from two
/// sweeps.
pub fn estimate_index_size(a: &ProbeSample, b: &ProbeSample) -> IndexEstimate {
    let n1 = a.files.len() as u64;
    let n2 = b.files.len() as u64;
    let m = a.files.intersection(&b.files).count() as u64;
    IndexEstimate {
        n1,
        n2,
        recaptured: m,
        estimated_files: crate::estimate::chapman(n1, n2, m),
        sd: crate::estimate::chapman_variance(n1, n2, m).sqrt(),
    }
}

/// Quantifies the sampling bias the paper warns about: the mean
/// source-count of *probed* files versus the mean over the *whole*
/// index. Keyword sampling surfaces popular files first, so the probed
/// mean is an overestimate; the ratio measures by how much.
pub fn popularity_bias(sample: &ProbeSample, server: &ServerEngine) -> Option<f64> {
    if sample.sources_per_file.is_empty() {
        return None;
    }
    let probed_mean = sample
        .sources_per_file
        .values()
        .map(|&n| n as f64)
        .sum::<f64>()
        / sample.sources_per_file.len() as f64;
    let index = server.index();
    let total_files = index.file_count() as u64;
    if total_files == 0 {
        return None;
    }
    let mut total_sources = 0u64;
    for slot in 0..total_files {
        total_sources += index.file(slot as u32).sources.len() as u64;
    }
    let true_mean = total_sources as f64 / total_files as f64;
    Some(probed_mean / true_mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etw_edonkey::messages::FileEntry;
    use etw_edonkey::tags::{special, Tag, TagList};

    /// A server indexing `n` files named from a small vocabulary, with a
    /// popularity-skewed provider assignment.
    fn populated_server(n: usize) -> (ServerEngine, Vec<String>) {
        let mut server = ServerEngine::new(etw_server::engine::EngineConfig {
            max_search_results: 30,
            ..Default::default()
        });
        let vocab: Vec<String> = (0..60).map(|i| format!("word{i}")).collect();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..n {
            let w1 = &vocab[rng.gen_range(0..vocab.len())];
            let w2 = &vocab[rng.gen_range(0..vocab.len())];
            let name = format!("{w1} {w2} track{i}.mp3");
            // Popular head: early files get many providers.
            let providers = 1 + 200 / (i + 1);
            for p in 0..providers {
                let entry = FileEntry {
                    file_id: FileId::of_identity(i as u64),
                    client_id: ClientId((1000 + i * 31 + p) as u32),
                    port: 4662,
                    tags: TagList(vec![
                        Tag::str(special::FILENAME, name.clone()),
                        Tag::u32(special::FILESIZE, 4_000_000),
                        Tag::str(special::FILETYPE, "Audio"),
                    ]),
                };
                server.handle(
                    ClientId((1000 + i * 31 + p) as u32),
                    &Message::OfferFiles { files: vec![entry] },
                );
            }
        }
        (server, vocab)
    }

    #[test]
    fn sweep_discovers_files_and_sources() {
        let (mut server, vocab) = populated_server(300);
        let mut prober = ActiveProber::new(ClientId(7), vocab, 1);
        let sample = prober.sweep(&mut server, 100, 1_000);
        assert!(sample.files.len() > 100, "found {}", sample.files.len());
        assert!(!sample.sources.is_empty());
        assert_eq!(sample.searches, 100);
        assert!(sample.source_queries > 0);
        // Discovered source counts match the index, modulo the server's
        // per-answer cap (max_sources = 50 by default).
        for (f, &n) in &sample.sources_per_file {
            assert_eq!(n, server.index().sources_for(f, 50).len());
        }
    }

    #[test]
    fn capture_recapture_estimates_index_size() {
        let (mut server, vocab) = populated_server(400);
        let truth = server.index().file_count() as f64;
        let mut p1 = ActiveProber::new(ClientId(7), vocab.clone(), 1);
        let mut p2 = ActiveProber::new(ClientId(8), vocab, 2);
        let s1 = p1.sweep(&mut server, 150, 0);
        let s2 = p2.sweep(&mut server, 150, 0);
        let est = estimate_index_size(&s1, &s2);
        assert!(est.recaptured > 0);
        // Keyword sampling is biased toward multi-keyword-matched files,
        // so the estimate is rough — but it must be the right order of
        // magnitude.
        assert!(
            est.estimated_files > truth * 0.5 && est.estimated_files < truth * 2.0,
            "estimate {} vs truth {truth}",
            est.estimated_files
        );
    }

    #[test]
    fn popularity_bias_is_positive() {
        let (mut server, vocab) = populated_server(300);
        let mut prober = ActiveProber::new(ClientId(7), vocab, 3);
        // Small budget: only what the first few searches surface.
        let sample = prober.sweep(&mut server, 10, 50);
        let bias = popularity_bias(&sample, &server).expect("bias");
        // The probe must not *under*-represent popular files: keyword
        // search returns every match, so at worst the view is unbiased,
        // and source-count ordering in answers skews it upward.
        assert!(bias > 0.5, "bias {bias}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut s1, vocab) = populated_server(100);
        let (mut s2, _) = populated_server(100);
        let a = ActiveProber::new(ClientId(7), vocab.clone(), 9).sweep(&mut s1, 50, 100);
        let b = ActiveProber::new(ClientId(7), vocab, 9).sweep(&mut s2, 50, 100);
        assert_eq!(a.files, b.files);
        assert_eq!(a.sources, b.sources);
    }

    #[test]
    #[should_panic(expected = "empty probe dictionary")]
    fn empty_dictionary_rejected() {
        let _ = ActiveProber::new(ClientId(1), Vec::new(), 0);
    }

    #[test]
    fn telemetry_counts_match_sample() {
        let (mut server, vocab) = populated_server(200);
        let registry = Registry::new();
        let mut prober = ActiveProber::new(ClientId(7), vocab, 1);
        prober.attach_telemetry(&registry);
        let sample = prober.sweep(&mut server, 80, 500);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("probe.searches_total"), sample.searches);
        assert_eq!(
            snap.counter("probe.source_queries_total"),
            sample.source_queries
        );
        // Every query is either answered or completed empty; the link is
        // perfect, so nothing can time out.
        assert!(snap.counter("probe.answers_total") > 0);
        assert_eq!(snap.counter("probe.timeouts_total"), 0);
        assert_eq!(snap.counter("probe.retries_total"), 0);
        assert!(
            snap.counter("probe.answers_total") + snap.counter("probe.empty_answers_total")
                >= sample.searches + sample.source_queries
        );
    }

    #[test]
    fn lossy_transport_produces_real_timeouts() {
        use etw_faults::DirectedRates;
        let (mut server, vocab) = populated_server(200);
        let registry = Registry::new();
        let mut prober = ActiveProber::new(ClientId(7), vocab, 1);
        prober.attach_telemetry(&registry);
        prober.attach_transport(ProbeTransport::new(
            LossyChannel::new(
                42,
                DirectedRates {
                    to_server: 0.4,
                    from_server: 0.2,
                },
                Vec::new(),
            ),
            500_000, // 0.5 s deadline
            2,       // then two retries
            30_000,  // 30 ms RTT
        ));
        let sample = prober.sweep(&mut server, 120, 600);
        let snap = registry.snapshot();
        // With a 40 % request drop rate, deadlines expire and some
        // requests exhaust their retry budget.
        assert!(snap.counter("probe.retries_total") > 0, "no retries");
        assert!(snap.counter("probe.timeouts_total") > 0, "no timeouts");
        // Retries are bounded: at most max_retries per query.
        assert!(
            snap.counter("probe.retries_total") <= 2 * (sample.searches + sample.source_queries)
        );
        // Time only moves forward, and every expiry paid at least one
        // full deadline.
        assert!(prober.virtual_now_us() >= 500_000 * snap.counter("probe.timeouts_total"));
        // The sweep still learns things through the loss.
        assert!(!sample.files.is_empty());
    }

    #[test]
    fn lossy_transport_is_deterministic() {
        use etw_faults::DirectedRates;
        let run = || {
            let (mut server, vocab) = populated_server(150);
            let mut prober = ActiveProber::new(ClientId(7), vocab, 9);
            prober.attach_transport(ProbeTransport::new(
                LossyChannel::new(7, DirectedRates::symmetric(0.3), Vec::new()),
                200_000,
                3,
                20_000,
            ));
            let sample = prober.sweep(&mut server, 60, 300);
            (sample.files, sample.sources, prober.virtual_now_us())
        };
        let (f1, s1, t1) = run();
        let (f2, s2, t2) = run();
        assert_eq!(f1, f2);
        assert_eq!(s1, s2);
        assert_eq!(t1, t2, "virtual clock must be reproducible");
        assert!(t1 > 0, "clock never advanced");
    }

    #[test]
    fn unattached_prober_records_nothing() {
        let (mut server, vocab) = populated_server(50);
        let mut prober = ActiveProber::new(ClientId(7), vocab, 1);
        // No attach_telemetry: handles are no-ops and nothing panics.
        let sample = prober.sweep(&mut server, 10, 20);
        assert!(sample.searches == 10);
    }
}
