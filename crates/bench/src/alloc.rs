//! Allocation-counting global allocator for the benchmark harness.
//!
//! The batched capture tail claims *zero steady-state heap allocations
//! per record* (ISSUE: the formatter renders into recycled buffers with
//! the zero-alloc encoder). Claims like that rot silently — an innocent
//! `format!` in a hot loop brings the allocator right back — so `repro
//! bench` measures it instead of trusting it: the binary installs
//! [`CountingAllocator`] as its `#[global_allocator]` and the tail-only
//! benchmark reads the counter delta across a steady-state formatting
//! run.
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: etw_bench::alloc::CountingAllocator = CountingAllocator;
//! ```
//!
//! The counters are process-global relaxed atomics: two uncontended
//! `fetch_add`s per allocation, cheap enough to leave installed for all
//! `repro` subcommands. Spans measured while other threads allocate
//! attribute their allocations too — the suite therefore measures the
//! formatter single-threaded, after the campaign threads have joined.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A pass-through wrapper over [`System`] that counts allocation events
/// and bytes. Deallocations are not tracked: the benchmarks care about
/// allocator round-trips in hot loops, not live-set size.
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counters never influence the
// returned pointers.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // ordering: independent event counters, read only after the
        // measured threads have joined; no cross-counter invariant
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place still counts: the caller asked the allocator
        // for more memory, which is exactly the event a zero-alloc hot
        // loop must not produce.
        // ordering: independent event counters, as in `alloc` above
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocation events since process start (0 if the counting
/// allocator is not installed).
pub fn allocations() -> u64 {
    // ordering: monotone counter snapshot; spans tolerate concurrent
    // increments and only compare same-thread before/after reads
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested since process start.
pub fn allocated_bytes() -> u64 {
    // ordering: monotone counter snapshot, same as `allocations`
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Whether the process actually routes allocations through
/// [`CountingAllocator`]. Performs a heap allocation to find out, so
/// call it outside measured spans.
pub fn counting_active() -> bool {
    let before = allocations();
    let probe = vec![0u8; 1];
    std::hint::black_box(&probe);
    drop(probe);
    allocations() > before
}

/// Allocation-count delta over a span of code.
pub struct AllocSpan {
    start: u64,
}

impl AllocSpan {
    /// Starts counting from the current total.
    pub fn start() -> Self {
        AllocSpan {
            start: allocations(),
        }
    }

    /// Allocation events since [`AllocSpan::start`].
    pub fn delta(&self) -> u64 {
        allocations() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_without_install_reads_zero() {
        // The test binary does not install the allocator; the counters
        // must still be safe to read and monotone.
        let span = AllocSpan::start();
        let _v: Vec<u8> = Vec::with_capacity(3);
        // Either 0 (not installed) or >0 (some harness installed it);
        // never a panic or underflow — and the byte counter reads too.
        let _ = span.delta();
        let _ = allocated_bytes();
    }
}
