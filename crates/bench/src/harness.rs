//! Measurement plumbing for `repro bench`: best-of-N wall timing and the
//! `BENCH_*.json` report format.
//!
//! The JSON is written and parsed by hand — the workspace has no serde
//! (offline build, vendored stand-ins only) and the format is a flat
//! list of numbers. The parser accepts exactly what [`BenchReport::to_json`]
//! emits, which is all the trajectory gate needs: it compares a fresh run
//! against the committed baseline of the *same* format version.

use std::time::Instant;

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark id, e.g. `tail_batched` or `end_to_end`.
    pub name: String,
    /// Campaign preset the corpus came from (`tiny`, `tiny_faulty`).
    pub preset: String,
    /// Records (or messages, for decode benches) processed per repeat.
    pub records: u64,
    /// Best-of-N wall seconds for one repeat.
    pub wall_secs: f64,
    /// `records / wall_secs`.
    pub records_per_sec: f64,
    /// Steady-state allocator round-trips per record, when the bench
    /// measures them (requires the counting allocator to be installed;
    /// `None` otherwise).
    pub allocs_per_record: Option<f64>,
}

/// A full `repro bench` run, serialisable as `BENCH_*.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// The measured configurations, in suite order.
    pub results: Vec<BenchResult>,
}

/// Format version stamped into the JSON; bump when the schema changes so
/// stale baselines fail loudly instead of comparing wrong fields.
pub const SCHEMA: &str = "etw-bench-1";

impl BenchReport {
    /// Finds a result by benchmark id and preset.
    pub fn find(&self, name: &str, preset: &str) -> Option<&BenchResult> {
        self.results
            .iter()
            .find(|r| r.name == name && r.preset == preset)
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": \"{}\", ", r.name));
            out.push_str(&format!("\"preset\": \"{}\", ", r.preset));
            out.push_str(&format!("\"records\": {}, ", r.records));
            out.push_str(&format!("\"wall_secs\": {:.6}, ", r.wall_secs));
            out.push_str(&format!("\"records_per_sec\": {:.1}, ", r.records_per_sec));
            match r.allocs_per_record {
                Some(a) => out.push_str(&format!("\"allocs_per_record\": {a:.3}")),
                None => out.push_str("\"allocs_per_record\": null"),
            }
            out.push_str(if i + 1 == self.results.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report previously produced by [`BenchReport::to_json`].
    /// Returns `None` on any structural surprise (including a schema
    /// mismatch) — the caller treats that as "no usable baseline".
    pub fn from_json(s: &str) -> Option<BenchReport> {
        if str_field(s, "schema")? != SCHEMA {
            return None;
        }
        let mut results = Vec::new();
        // Objects inside the results array: everything between the
        // top-level '[' and ']' split on '}' boundaries.
        let open = s.find('[')?;
        let close = s.rfind(']')?;
        for obj in s[open + 1..close].split('}') {
            let obj = obj.trim().trim_start_matches(',').trim();
            if obj.is_empty() {
                continue;
            }
            results.push(BenchResult {
                name: str_field(obj, "name")?,
                preset: str_field(obj, "preset")?,
                records: num_field(obj, "records")? as u64,
                wall_secs: num_field(obj, "wall_secs")?,
                records_per_sec: num_field(obj, "records_per_sec")?,
                allocs_per_record: opt_num_field(obj, "allocs_per_record"),
            });
        }
        Some(BenchReport { results })
    }
}

/// Value of `"key": "value"` within `obj`.
fn str_field(obj: &str, key: &str) -> Option<String> {
    let rest = field_value(obj, key)?;
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_owned())
}

/// Value of `"key": <number>` within `obj`.
fn num_field(obj: &str, key: &str) -> Option<f64> {
    let rest = field_value(obj, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn opt_num_field(obj: &str, key: &str) -> Option<f64> {
    let rest = field_value(obj, key)?;
    if rest.starts_with("null") {
        None
    } else {
        num_field(obj, key)
    }
}

/// The text immediately after `"key":`, whitespace-trimmed.
fn field_value<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)?;
    let rest = obj[at + pat.len()..].trim_start();
    Some(rest.strip_prefix(':')?.trim_start())
}

/// Runs `f` once as warmup, then `reps` measured times, returning the
/// best (smallest) wall-clock seconds and the last repeat's output. Best
/// rather than mean: scheduling noise only ever adds time, so the
/// minimum is the least-noisy estimate of the work itself.
pub fn time_best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    assert!(reps > 0);
    let mut out = f(); // warmup (also primes caches and pools)
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            results: vec![
                BenchResult {
                    name: "tail_serial".into(),
                    preset: "tiny".into(),
                    records: 12_345,
                    wall_secs: 0.5,
                    records_per_sec: 24_690.0,
                    allocs_per_record: Some(2.125),
                },
                BenchResult {
                    name: "end_to_end".into(),
                    preset: "tiny_faulty".into(),
                    records: 999,
                    wall_secs: 1.25,
                    records_per_sec: 799.2,
                    allocs_per_record: None,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrips() {
        let report = sample();
        let back = BenchReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(back.results.len(), 2);
        assert_eq!(back.results[0].name, "tail_serial");
        assert_eq!(back.results[0].records, 12_345);
        assert_eq!(back.results[0].allocs_per_record, Some(2.125));
        assert_eq!(back.results[1].preset, "tiny_faulty");
        assert_eq!(back.results[1].allocs_per_record, None);
        assert!((back.results[1].wall_secs - 1.25).abs() < 1e-9);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let bad = sample().to_json().replace(SCHEMA, "etw-bench-0");
        assert!(BenchReport::from_json(&bad).is_none());
        assert!(BenchReport::from_json("not json at all").is_none());
    }

    #[test]
    fn find_selects_by_name_and_preset() {
        let report = sample();
        assert!(report.find("end_to_end", "tiny_faulty").is_some());
        assert!(report.find("end_to_end", "tiny").is_none());
    }

    #[test]
    fn time_best_of_returns_positive() {
        let (secs, v) = time_best_of(3, || (0..1000u64).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(secs >= 0.0 && secs.is_finite());
    }
}
