//! The `repro bench` suite: decode-only, tail-only and end-to-end
//! throughput, plus steady-state allocations per record in the
//! formatter, on the `tiny` and `tiny_faulty` campaign presets.
//!
//! Four measurements, matching the capture machine's serial bottleneck
//! story (the paper's "keeping up with the server" requirement):
//!
//! * `decode_only` — the parallelisable front: wire decapsulation plus
//!   two-step eDonkey decoding over a realistic message mix;
//! * `tail_serial` / `tail_batched` — the sequential tail in isolation:
//!   the same anonymised records pushed through `DatasetWriter::write_record`
//!   (per-record `write!` formatting) versus the batched zero-alloc
//!   encoder + `write_encoded`. The ratio is PR 4's headline number
//!   and [`self_checks`] enforces the [`MIN_TAIL_SPEEDUP`] floor;
//! * `anonymize_serial` / `anonymize_shard4` — the anonymise stage in
//!   isolation: the same decoded message mix through the pre-PR serial
//!   scheme (fresh record per slot) and through the clientID/fileID
//!   shard pool's resolve→assemble→construct path, which reuses record
//!   allocations in place. [`self_checks`] enforces the
//!   [`MIN_ANON_SHARD_SPEEDUP`] floor;
//! * `end_to_end` — full campaigns through the batched writer tail, plus
//!   an `end_to_end_traced` overhead row with the stage-span layer and
//!   flight recorder armed.
//!
//! PR 10 adds the sharded-source rows and two new floors:
//!
//! * `source_only` — the sharded front end in isolation: generator
//!   workers, virtual-time merge, per-shard directory indexes and the
//!   lossy capture ring, with nothing downstream;
//! * `end_to_end_src1` / `end_to_end_src4` — full campaigns with the
//!   source shard count pinned, so the byte-identical shard widths are
//!   also visible as throughput rows;
//! * the decode-ratio floor ([`MAX_E2E_DECODE_RATIO`]): `end_to_end`
//!   may lag `decode_only` by at most that factor, so the front end
//!   can never silently rot back to the pre-sharding starvation;
//! * the swarm floors: `swarm_served` joins the trajectory-gated set
//!   and the live tap's measured loss must stay under
//!   [`MAX_SWARM_LOSS_PERMILLE`].
//!
//! The trajectory gate compares each of [`GATED_BENCHES`] — end-to-end
//! and the three per-stage benches — against the committed baseline
//! individually, so a stage-local regression trips at its own stage
//! instead of hiding inside the end-to-end average.

use crate::alloc::{counting_active, AllocSpan};
use crate::harness::{time_best_of, BenchReport, BenchResult};
use etw_anonymize::fileid::ByteSelector;
use etw_anonymize::scheme::{AnonRecord, PaperScheme};
use etw_anonymize::ShardedAnonymizer;
use etw_core::campaign::{run_campaign, try_run_campaign_to_writer};
use etw_core::config::CampaignConfig;
use etw_core::livecap::LiveCapture;
use etw_core::pipeline::TailConfig;
use etw_core::wirepath::{encapsulate, Direction, Recovered, WireDecoder};
use etw_edonkey::decoder::{DecodeOutcome, Decoder};
use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::{FileEntry, Message, Source};
use etw_edonkey::search::SearchExpr;
use etw_edonkey::tags::{special, Tag, TagList};
use etw_netsim::clock::VirtualTime;
use etw_telemetry::Registry;
use etw_xmlout::encode::encode_batch;
use etw_xmlout::writer::DatasetWriter;
use std::io;

/// How the suite is run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SuiteOptions {
    /// CI mode: one measured repeat per bench and shortened campaigns.
    /// Throughputs (records/sec) stay comparable to a full run; absolute
    /// record counts do not.
    pub smoke: bool,
}

/// A gated benchmark may regress at most this fraction against the
/// committed baseline before [`trajectory_gate`] fails the run.
pub const MAX_BENCH_REGRESSION: f64 = 0.20;

/// Benchmarks the trajectory gate enforces, each individually against
/// the [`MAX_BENCH_REGRESSION`] budget: the end-to-end campaigns plus
/// the three per-stage benches, so a regression confined to one stage
/// (and diluted below the end-to-end threshold by Amdahl) still trips
/// the gate at the stage where it happened.
pub const GATED_BENCHES: &[&str] = &[
    "end_to_end",
    "decode_only",
    "tail_batched",
    "anonymize_shard4",
    "swarm_served",
];

/// The decode-ratio floor [`self_checks`] enforces: `end_to_end` must
/// stay within this factor of `decode_only`. The decode front runs at
/// millions of records/s; before the sharded source the serial front
/// end held end-to-end 55× below it, and nothing would have caught a
/// relapse — the trajectory gate only sees a 20% slide per PR. Start
/// at 20× (measured ≈ 17× after the sharded source landed) and tighten
/// as the front end improves.
pub const MAX_E2E_DECODE_RATIO: f64 = 20.0;

/// The live-tap loss budget for the swarm bench, in permille of tapped
/// frames. The tap's 256-slot queue is deliberately small (the paper's
/// lossy-capture stand-in), so some loss is expected and *measured* —
/// PR 8 recorded ≈ 7‰ — but a capture path that starts shedding one
/// frame in twenty is broken, not lossy.
pub const MAX_SWARM_LOSS_PERMILLE: f64 = 50.0;

/// The tail-only speedup floor [`self_checks`] enforces: the batched
/// zero-alloc encoder must beat the per-record `write!` writer by at
/// least this factor on `tiny`. PR 4 measured 2.5×; PR 10's `Arc`/`Cow`
/// record representation made the *serial* writer's records cheaper to
/// format too, narrowing the measured gap to ≈ 2.0× — the floor sits
/// under that with room for scheduler noise, not under the old gap.
pub const MIN_TAIL_SPEEDUP: f64 = 1.7;

/// The anonymise-only speedup floor [`self_checks`] enforces: the
/// sharded anonymiser at [`ANON_SHARDS`] shards must beat the serial
/// scheme by at least this factor on the bench mix. The win is
/// algorithmic, not parallel, so it holds on a single-core host too:
/// the sharded assembler constructs records in place, reusing each
/// output slot's allocations across batches, where the serial scheme
/// builds every record fresh into a cleared `Vec`. PR 5 measured 1.8×;
/// PR 10's memoised `Arc<str>` digests and `Cow<'static, str>` tag
/// names removed most of the serial scheme's per-record allocations,
/// narrowing the measured gap to ≈ 1.4× — the floor tracks that.
pub const MIN_ANON_SHARD_SPEEDUP: f64 = 1.25;

/// Records staged per formatter batch in the tail benches — the
/// pipeline's default batch size, so the bench measures what ships.
const TAIL_BATCH: usize = 256;

/// ClientID space for the anonymise-only benches: the CI matrix's
/// default width, so first-appearance assignment costs what a wide
/// campaign pays.
const ANON_WIDTH_BITS: u32 = 24;

/// Shard count for the `anonymize_shard4` row.
const ANON_SHARDS: usize = 4;

fn preset(name: &str, smoke: bool) -> CampaignConfig {
    let mut config = match name {
        "tiny" => CampaignConfig::tiny(),
        "tiny_faulty" => CampaignConfig::tiny_faulty(),
        other => panic!("unknown bench preset {other:?}"),
    };
    if smoke {
        config.generator.duration_secs = 600;
    }
    config
}

/// Runs the whole suite and returns the report, printing one line per
/// bench to stderr as results land.
pub fn run_suite(opts: &SuiteOptions) -> BenchReport {
    let reps = if opts.smoke { 1 } else { 3 };
    let mut report = BenchReport::default();

    // decode_only carries a per-stage trajectory floor and each pass is
    // tens of milliseconds — best-of-9 for the same reason as the tail
    // benches below: the floor must not flake on a preempted pass.
    report.results.push(bench_decode_only(opts, reps.max(9)));
    eprintln!("  {}", describe(report.results.last().unwrap()));

    // The sharded source in isolation: what the generator workers,
    // virtual-time merger, directory shards and capture ring produce
    // with nothing downstream. Passes are ~25 ms; best-of-9 like the
    // other stage rows.
    report.results.push(bench_source_only(opts, reps.max(9)));
    eprintln!("  {}", describe(report.results.last().unwrap()));

    // Tail corpus: the records a tiny campaign actually produces, so the
    // tail benches format the real message mix (search expressions,
    // offer lists, found sources) rather than a synthetic best case.
    let mut corpus: Vec<AnonRecord> = Vec::new();
    run_campaign(&preset("tiny", opts.smoke), |r| corpus.push(r));
    assert!(!corpus.is_empty(), "corpus campaign produced no records");

    // The tail passes are ~10 ms each — the same order as a scheduler
    // timeslice, so on a busy single-core host any one pass can eat a
    // preemption and read half its true rate. They are cheap enough to
    // always run best-of-9: one clean window is all the measurement
    // needs, and the 2× gate must not flake in CI.
    for result in bench_tail(&corpus, reps.max(9)) {
        eprintln!("  {}", describe(&result));
        report.results.push(result);
    }

    // Anonymise-only passes are ~10 ms too; same best-of-9 rationale so
    // the 1.5× shard gate never reads a preempted pass.
    for result in bench_anonymize(if opts.smoke { 30_000 } else { 60_000 }, reps.max(9)) {
        eprintln!("  {}", describe(&result));
        report.results.push(result);
    }

    // End-to-end carries the trajectory gate; best-of-3 keeps a single
    // preempted campaign from reading as a >20 % regression.
    for preset_name in ["tiny", "tiny_faulty"] {
        let result = bench_end_to_end(preset_name, opts, reps.max(3));
        eprintln!("  {}", describe(&result));
        report.results.push(result);
    }

    // The same tiny campaign with the source shard count pinned at 1
    // and 4 — the widths the CI matrix proves byte-identical, here as
    // throughput rows so the shard machinery's cost (or win, on a
    // multi-core host) stays visible in every committed baseline.
    for shards in [1usize, 4] {
        let result = bench_end_to_end_src(shards, opts, reps.max(3));
        eprintln!("  {}", describe(&result));
        report.results.push(result);
    }

    // Informational (never gated — the delta sits inside run-to-run
    // noise): the same tiny campaign with the full observability stack
    // on, quantifying what `stage.*` spans + the flight recorder cost.
    let result = bench_end_to_end_traced(opts, reps.max(3));
    eprintln!("  {}", describe(&result));
    report.results.push(result);

    // The real-socket serving loop and its live capture tap. Wall time
    // here is kernel socket scheduling, so the bench keeps the best of
    // two soaks to damp the jitter; `swarm_served` is trajectory-gated
    // and the tap's measured loss is held under the permille budget by
    // [`self_checks`].
    for result in bench_swarm(opts) {
        eprintln!("  {}", describe(&result));
        report.results.push(result);
    }
    report
}

/// The UDP serving loop under the loopback client swarm, including the
/// mid-run burst window: `swarm_served` is answered queries per wall
/// second; `swarm_tapped` / `swarm_capture_loss` are the live tap's
/// *measured* intake and drop counts through a deliberately small
/// capture queue (the paper's lossy-capture stand-in — the loss is
/// real backpressure, not a simulated coin flip).
///
/// `swarm_served` is trajectory-gated (PR 10), so the bench runs the
/// whole soak twice and keeps the faster run: wall time here is kernel
/// socket scheduling, and one clean window is what the floor needs.
/// The loss rows always come from the kept run, so the permille check
/// in [`self_checks`] reads a consistent (tapped, dropped) pair.
fn bench_swarm(_opts: &SuiteOptions) -> Vec<BenchResult> {
    use etw_server::net::NetConfig;
    use etw_server::swarm::{run_loopback_soak, Roster, SoakConfig, SwarmConfig};

    // Same shape in smoke and full runs: the served rate scales with
    // session concurrency, so a shortened smoke soak would read 40%
    // under the committed full-run baseline and the trajectory floor
    // would compare apples to oranges. The soak is ~1.5 s wall; paying
    // it twice in CI is cheaper than a floor that cannot gate.
    let sessions = 256;
    let duration_us: u64 = 1_500_000;
    let mut best: Option<(f64, u64, u64, u64)> = None; // (wall, answered, tapped, dropped)
    for _ in 0..2 {
        let registry = Registry::new();
        let roster = Roster::default();
        let (capture, tap) = LiveCapture::start(&registry, &roster, 256);
        let cfg = SoakConfig {
            swarm: SwarmConfig {
                sessions,
                seed: 0xBE_0C85,
                duration_us,
                burst_start_us: duration_us / 4,
                burst_len_us: duration_us / 2,
                ..SwarmConfig::default()
            },
            net: NetConfig::default(),
            server_fault: None,
        };
        let mut tap_slot = Some(tap);
        let (wall_secs, outcome) = time_best_of(1, || {
            run_loopback_soak(cfg.clone(), &registry, &roster, tap_slot.take())
        });
        let outcome = outcome.expect("loopback soak");
        assert!(
            outcome.server_error.is_none(),
            "serving loop failed: {:?}",
            outcome.server_error
        );
        let captured = capture.finish();
        let answered = registry.snapshot().counter("server.net.answered_total");
        eprintln!(
            "  swarm capture: {} tapped, {} dropped ({:.3}% measured loss)",
            captured.tapped,
            captured.tap_dropped,
            captured.loss_fraction() * 100.0
        );
        let rate = answered as f64 / wall_secs;
        if best.is_none_or(|(w, a, _, _)| rate > a as f64 / w) {
            best = Some((wall_secs, answered, captured.tapped, captured.tap_dropped));
        }
    }
    let (wall_secs, answered, tapped, dropped) = best.expect("at least one soak");
    vec![
        BenchResult {
            name: "swarm_served".into(),
            preset: "loopback".into(),
            records: answered,
            wall_secs,
            records_per_sec: answered as f64 / wall_secs,
            allocs_per_record: None,
        },
        BenchResult {
            name: "swarm_tapped".into(),
            preset: "loopback".into(),
            records: tapped,
            wall_secs,
            records_per_sec: tapped as f64 / wall_secs,
            allocs_per_record: None,
        },
        BenchResult {
            name: "swarm_capture_loss".into(),
            preset: "loopback".into(),
            records: dropped,
            wall_secs,
            records_per_sec: dropped as f64 / wall_secs,
            allocs_per_record: None,
        },
    ]
}

/// The tiny end-to-end campaign with tracing fully armed — live metric
/// registry, stage-span histograms and the per-thread flight-recorder
/// rings (no dump directory: dumps are fault-path, not steady-state).
/// Compared against `end_to_end/tiny` this is the measured overhead of
/// the observability layer, documented in DESIGN.md §14.
fn bench_end_to_end_traced(opts: &SuiteOptions, reps: usize) -> BenchResult {
    let mut config = preset("tiny", opts.smoke);
    config.trace_ring_slots = 256;
    let mut run = || {
        let (report, writer) = try_run_campaign_to_writer(
            &config,
            &Registry::new(),
            TailConfig::default(),
            DatasetWriter::new(io::sink()).expect("sink writer"),
            |_| {},
        )
        .expect("bench campaign");
        writer.finish().expect("sink write");
        report.records
    };
    let (wall_secs, records) = time_best_of(reps, &mut run);
    BenchResult {
        name: "end_to_end_traced".into(),
        preset: "tiny".into(),
        records,
        wall_secs,
        records_per_sec: records as f64 / wall_secs,
        allocs_per_record: None,
    }
}

fn describe(r: &BenchResult) -> String {
    let allocs = match r.allocs_per_record {
        Some(a) => format!(", {a:.3} allocs/record"),
        None => String::new(),
    };
    format!(
        "{}/{}: {} records in {:.3}s = {:.0} records/s{}",
        r.name, r.preset, r.records, r.wall_secs, r.records_per_sec, allocs
    )
}

/// The decode front in isolation: frames through the wire decoder and
/// the two-step eDonkey decoder, single-threaded.
fn bench_decode_only(opts: &SuiteOptions, reps: usize) -> BenchResult {
    let n = if opts.smoke { 20_000 } else { 50_000 };
    let frames: Vec<Vec<u8>> = message_mix(n, 0xdec0)
        .into_iter()
        .enumerate()
        .flat_map(|(i, m)| {
            encapsulate(
                m,
                ClientId(i as u32 % 0xffff),
                4672,
                Direction::ToServer,
                i as u16,
                1500,
            )
            .into_iter()
            .map(|f| f.to_bytes())
        })
        .collect();

    let mut run = || {
        let mut wire = WireDecoder::new();
        let mut decoder = Decoder::new();
        let mut decoded = 0u64;
        for f in &frames {
            if let Recovered::Udp { payload, .. } = wire.push(VirtualTime::ZERO, f) {
                if let DecodeOutcome::Ok(_) = decoder.push(&payload) {
                    decoded += 1;
                }
            }
        }
        decoded
    };
    let (wall_secs, decoded) = time_best_of(reps, &mut run);
    assert!(decoded as usize > n / 2, "decode bench mix mostly failed");
    BenchResult {
        name: "decode_only".into(),
        preset: "mix".into(),
        records: n as u64,
        wall_secs,
        records_per_sec: n as f64 / wall_secs,
        allocs_per_record: None,
    }
}

/// [`std::io::Write`] into a borrowed, recycled `Vec<u8>` — the tail
/// benches' sink. A plain `io::sink()` would flatter the serial writer
/// (its many small `write!` fragment writes become free); the real tail
/// materialises every byte, so the bench does too. The buffer reaches
/// its high-water capacity during warmup and never reallocates after.
struct BufSink<'a>(&'a mut Vec<u8>);

impl io::Write for BufSink<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The sequential tail in isolation, old vs new: identical records into
/// a recycled memory sink, once through per-record `write!` formatting
/// and once through the batched zero-alloc encoder. Steady-state
/// allocations are read over one extra pass after timing, when every
/// reused buffer has reached its high-water capacity.
fn bench_tail(corpus: &[AnonRecord], reps: usize) -> Vec<BenchResult> {
    let n = corpus.len() as u64;
    let mut out: Vec<u8> = Vec::new();

    let mut serial = || {
        out.clear();
        let mut w = DatasetWriter::new(BufSink(&mut out)).expect("buffer writer");
        for r in corpus {
            w.write_record(r).expect("buffer write");
        }
        w.records()
    };
    let (serial_secs, written) = time_best_of(reps, &mut serial);
    assert_eq!(written, n);
    let serial_allocs = measure_allocs(n, &mut serial);

    let mut buf: Vec<u8> = Vec::with_capacity(TAIL_BATCH * 64);
    let mut batched = || {
        out.clear();
        let mut w = DatasetWriter::new(BufSink(&mut out)).expect("buffer writer");
        for batch in corpus.chunks(TAIL_BATCH) {
            buf.clear();
            encode_batch(&mut buf, batch);
            w.write_encoded(&buf, batch.len() as u64)
                .expect("buffer write");
        }
        w.records()
    };
    let (batched_secs, written) = time_best_of(reps, &mut batched);
    assert_eq!(written, n);
    let batched_allocs = measure_allocs(n, &mut batched);

    vec![
        BenchResult {
            name: "tail_serial".into(),
            preset: "tiny".into(),
            records: n,
            wall_secs: serial_secs,
            records_per_sec: n as f64 / serial_secs,
            allocs_per_record: serial_allocs,
        },
        BenchResult {
            name: "tail_batched".into(),
            preset: "tiny".into(),
            records: n,
            wall_secs: batched_secs,
            records_per_sec: n as f64 / batched_secs,
            allocs_per_record: batched_allocs,
        },
    ]
}

/// Allocation events per record over one steady-state pass, or `None`
/// when the process does not route allocations through the counting
/// allocator (unit tests; any binary without the `#[global_allocator]`).
fn measure_allocs(records: u64, run: &mut impl FnMut() -> u64) -> Option<f64> {
    if !counting_active() {
        return None;
    }
    let span = AllocSpan::start();
    run();
    Some(span.delta() as f64 / records as f64)
}

/// The anonymise stage in isolation, old vs new: the same decoded
/// message mix staged in [`TAIL_BATCH`]-record batches, once through
/// the serial scheme's batch API into a **cleared** `Vec` — exactly
/// the anonymise stage the batched tail ran before this PR, paying a
/// fresh allocation for every string, entry vector and tag list — and
/// once through the [`ANON_SHARDS`]-shard pool's full path (collect
/// ids, per-shard resolve, assemble, construct records **in place**),
/// the work the sharded tail's shard and assembler threads do. The
/// speedup is algorithmic, so it holds on a single core: the in-place
/// construction reuses every record allocation in the shape-stable
/// steady state this corpus models. Each repeat builds fresh encoders
/// so every pass pays the same first-appearance assignment work.
///
/// The corpus cycles the four message families with fixed-arity bodies
/// ([`anon_mix`]): [`TAIL_BATCH`] is a multiple of the period, so every
/// record slot sees the same message shape batch after batch — the
/// repetitive-traffic steady state in-place reuse targets. The
/// randomized-shape case (where reuse degrades to fresh construction)
/// is covered end-to-end by the campaign benches and their trajectory
/// gate.
fn bench_anonymize(n: usize, reps: usize) -> Vec<BenchResult> {
    use std::time::Instant;

    let corpus = anon_mix(n);

    // Fresh encoders are built (and dropped) OUTSIDE the timed window:
    // the 2^24-entry clientID table is memset on construction and
    // unmapped on drop — tens of milliseconds of one-time campaign
    // setup that would swamp the ~10 ms measured pass. The pipeline
    // pays that once per campaign, not per batch. The extra iteration
    // (`0..=reps`) is the untimed warmup, like [`time_best_of`]'s.
    let mut out: Vec<AnonRecord> = Vec::new();
    let mut serial_secs = f64::INFINITY;
    for rep in 0..=reps {
        let mut scheme = PaperScheme::paper(ANON_WIDTH_BITS);
        let mut records = 0u64;
        let t = Instant::now();
        for chunk in corpus.chunks(TAIL_BATCH) {
            out.clear();
            let summary =
                scheme.anonymize_batch(chunk.iter().map(|(t, p, m)| (*t, *p, m)), &mut out);
            records += summary.records;
        }
        if rep > 0 {
            serial_secs = serial_secs.min(t.elapsed().as_secs_f64());
        }
        assert_eq!(records, n as u64);
    }

    // NOT cleared between batches: the stale records are the sharded
    // path's allocation pool, as in the pipeline.
    let mut sharded_out: Vec<AnonRecord> = Vec::new();
    let mut sharded_secs = f64::INFINITY;
    for rep in 0..=reps {
        let mut sh =
            ShardedAnonymizer::new(ANON_WIDTH_BITS, ByteSelector::ALTERNATIVE, ANON_SHARDS);
        let mut records = 0u64;
        let t = Instant::now();
        for chunk in corpus.chunks(TAIL_BATCH) {
            let summary =
                sh.anonymize_batch(chunk.iter().map(|(t, p, m)| (*t, *p, m)), &mut sharded_out);
            records += summary.records;
        }
        if rep > 0 {
            sharded_secs = sharded_secs.min(t.elapsed().as_secs_f64());
        }
        assert_eq!(records, n as u64);
    }

    vec![
        BenchResult {
            name: "anonymize_serial".into(),
            preset: "mix".into(),
            records: n as u64,
            wall_secs: serial_secs,
            records_per_sec: n as f64 / serial_secs,
            allocs_per_record: None,
        },
        BenchResult {
            name: format!("anonymize_shard{ANON_SHARDS}"),
            preset: "mix".into(),
            records: n as u64,
            wall_secs: sharded_secs,
            records_per_sec: n as f64 / sharded_secs,
            allocs_per_record: None,
        },
    ]
}

/// A full campaign through the batched writer tail into a sink.
fn bench_end_to_end(preset_name: &str, opts: &SuiteOptions, reps: usize) -> BenchResult {
    let config = preset(preset_name, opts.smoke);
    let mut run = || {
        let (report, writer) = try_run_campaign_to_writer(
            &config,
            &Registry::disabled(),
            TailConfig::default(),
            DatasetWriter::new(io::sink()).expect("sink writer"),
            |_| {},
        )
        .expect("bench campaign");
        writer.finish().expect("sink write");
        report.records
    };
    let (wall_secs, records) = time_best_of(reps, &mut run);
    BenchResult {
        name: "end_to_end".into(),
        preset: preset_name.into(),
        records,
        wall_secs,
        records_per_sec: records as f64 / wall_secs,
        allocs_per_record: None,
    }
}

/// The sharded source with nothing downstream: generator workers, the
/// virtual-time merger, per-shard directory indexes, answer assembly
/// and the lossy capture ring, on the tiny preset. Records are the
/// frames the capture side kept — the front end's deliverable.
fn bench_source_only(opts: &SuiteOptions, reps: usize) -> BenchResult {
    use etw_core::source::run_source_only;

    let config = preset("tiny", opts.smoke);
    let mut run = || {
        let (side, _bytes) = run_source_only(&config, &Registry::disabled());
        side.captured
    };
    let (wall_secs, frames) = time_best_of(reps, &mut run);
    assert!(frames > 0, "source-only bench captured nothing");
    BenchResult {
        name: "source_only".into(),
        preset: "tiny".into(),
        records: frames,
        wall_secs,
        records_per_sec: frames as f64 / wall_secs,
        allocs_per_record: None,
    }
}

/// A full tiny campaign with `source_shards` pinned — the throughput
/// face of the byte-identical shard widths the CI matrix proves.
fn bench_end_to_end_src(shards: usize, opts: &SuiteOptions, reps: usize) -> BenchResult {
    let mut config = preset("tiny", opts.smoke);
    config.source.source_shards = shards;
    let mut run = || {
        let (report, writer) = try_run_campaign_to_writer(
            &config,
            &Registry::disabled(),
            TailConfig::default(),
            DatasetWriter::new(io::sink()).expect("sink writer"),
            |_| {},
        )
        .expect("bench campaign");
        writer.finish().expect("sink write");
        report.records
    };
    let (wall_secs, records) = time_best_of(reps, &mut run);
    BenchResult {
        name: format!("end_to_end_src{shards}"),
        preset: "tiny".into(),
        records,
        wall_secs,
        records_per_sec: records as f64 / wall_secs,
        allocs_per_record: None,
    }
}

/// Invariants the fresh run must satisfy on its own, baseline or not:
/// the batched tail's ≥ 2× speedup and its zero-allocation steady
/// state, the anonymiser shard floor, the decode-ratio floor
/// ([`MAX_E2E_DECODE_RATIO`]) and the swarm tap's loss budget
/// ([`MAX_SWARM_LOSS_PERMILLE`]). Returns human-readable failures
/// (empty = pass).
pub fn self_checks(fresh: &BenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    match (
        fresh.find("tail_serial", "tiny"),
        fresh.find("tail_batched", "tiny"),
    ) {
        (Some(serial), Some(batched)) => {
            let speedup = batched.records_per_sec / serial.records_per_sec;
            if speedup < MIN_TAIL_SPEEDUP {
                failures.push(format!(
                    "tail speedup {speedup:.2}x below the {MIN_TAIL_SPEEDUP}x floor \
                     ({:.0} vs {:.0} records/s)",
                    batched.records_per_sec, serial.records_per_sec
                ));
            }
            match batched.allocs_per_record {
                Some(a) if a > 0.0 => failures.push(format!(
                    "batched formatter allocates in steady state: {a:.3} allocs/record"
                )),
                Some(_) => {}
                None => failures
                    .push("allocations unmeasured: counting allocator not installed".to_owned()),
            }
        }
        _ => failures.push("tail benches missing from the run".to_owned()),
    }
    match (
        fresh.find("anonymize_serial", "mix"),
        fresh.find(&format!("anonymize_shard{ANON_SHARDS}"), "mix"),
    ) {
        (Some(serial), Some(sharded)) => {
            let speedup = sharded.records_per_sec / serial.records_per_sec;
            if speedup < MIN_ANON_SHARD_SPEEDUP {
                failures.push(format!(
                    "anonymise-only shard speedup {speedup:.2}x below the \
                     {MIN_ANON_SHARD_SPEEDUP}x floor ({:.0} vs {:.0} records/s)",
                    sharded.records_per_sec, serial.records_per_sec
                ));
            }
        }
        _ => failures.push("anonymise-only benches missing from the run".to_owned()),
    }
    // Decode-ratio floor (PR 10): the end-to-end campaign may lag the
    // decode front by at most MAX_E2E_DECODE_RATIO. A relative floor,
    // so it survives host changes that scale both rows together —
    // what it catches is the *front end* rotting back toward the
    // pre-sharding 55× starvation.
    match (
        fresh.find("decode_only", "mix"),
        fresh.find("end_to_end", "tiny"),
    ) {
        (Some(decode), Some(e2e)) => {
            let ratio = decode.records_per_sec / e2e.records_per_sec;
            if ratio > MAX_E2E_DECODE_RATIO {
                failures.push(format!(
                    "decode-ratio gate: end_to_end {:.0} records/s lags decode_only \
                     {:.0} by {ratio:.1}x (budget {MAX_E2E_DECODE_RATIO}x) — \
                     the front end is starving the pipeline again",
                    e2e.records_per_sec, decode.records_per_sec
                ));
            }
        }
        _ => failures.push("decode-ratio gate: decode_only or end_to_end row missing".to_owned()),
    }
    // Swarm tap loss budget (PR 10): measured drops as a fraction of
    // tapped frames, from the soak the swarm bench kept.
    match (
        fresh.find("swarm_tapped", "loopback"),
        fresh.find("swarm_capture_loss", "loopback"),
    ) {
        (Some(tapped), Some(dropped)) if tapped.records > 0 => {
            let permille = dropped.records as f64 * 1000.0 / tapped.records as f64;
            if permille > MAX_SWARM_LOSS_PERMILLE {
                failures.push(format!(
                    "swarm capture-loss gate: {} of {} tapped frames dropped \
                     ({permille:.1}‰ > budget {MAX_SWARM_LOSS_PERMILLE}‰)",
                    dropped.records, tapped.records
                ));
            }
        }
        _ => failures.push(
            "swarm capture-loss gate: swarm_tapped/swarm_capture_loss rows missing \
             or tap saw no frames"
                .to_owned(),
        ),
    }
    failures
}

/// The benchmark trajectory gate: every [`GATED_BENCHES`] result in
/// `baseline` must be matched in `fresh` within
/// [`MAX_BENCH_REGRESSION`], each bench gated individually. Returns
/// human-readable failures.
pub fn trajectory_gate(fresh: &BenchReport, baseline: &BenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    for b in baseline
        .results
        .iter()
        .filter(|r| GATED_BENCHES.contains(&r.name.as_str()))
    {
        match fresh.find(&b.name, &b.preset) {
            None => failures.push(format!(
                "baseline bench {}/{} missing from this run",
                b.name, b.preset
            )),
            Some(f) => {
                let floor = b.records_per_sec * (1.0 - MAX_BENCH_REGRESSION);
                if f.records_per_sec < floor {
                    failures.push(format!(
                        "{}/{} regressed: {:.0} records/s < {:.0} \
                         (baseline {:.0} − {:.0}%)",
                        b.name,
                        b.preset,
                        f.records_per_sec,
                        floor,
                        b.records_per_sec,
                        MAX_BENCH_REGRESSION * 100.0
                    ));
                }
            }
        }
    }
    failures
}

/// The gate's self-demonstration, run by `repro bench --smoke` after a
/// green gate: clone the committed baseline, slow `decode_only` down by
/// 25 %, and confirm [`trajectory_gate`] rejects it. Proves the
/// per-stage floor is live — a stage regression bigger than the budget
/// cannot ride in under a healthy end-to-end number. Returns the line
/// to print, or what went wrong with the demonstration itself.
pub fn demo_gate_rejects_stage_slowdown(baseline: &BenchReport) -> Result<String, String> {
    const SLOWDOWN: f64 = 0.25;
    let mut synthetic = baseline.clone();
    let mut scaled = false;
    for r in &mut synthetic.results {
        if r.name == "decode_only" {
            r.records_per_sec *= 1.0 - SLOWDOWN;
            r.wall_secs /= 1.0 - SLOWDOWN;
            scaled = true;
        }
    }
    if !scaled {
        return Err("gate demo: baseline has no decode_only row to slow down".to_owned());
    }
    let failures = trajectory_gate(&synthetic, baseline);
    if failures.iter().any(|f| f.contains("decode_only")) {
        Ok(format!(
            "gate self-test: synthetic {:.0}% decode_only slowdown rejected \
             ({} violation(s))",
            SLOWDOWN * 100.0,
            failures.len()
        ))
    } else {
        Err(format!(
            "gate demo: synthetic {:.0}% decode_only slowdown NOT rejected — \
             per-stage floor is dead",
            SLOWDOWN * 100.0
        ))
    }
}

/// Self-demonstration for the PR 10 decode-ratio floor: clone the fresh
/// report, starve its `end_to_end` row down to twice the permitted
/// decode ratio, and confirm [`self_checks`] rejects it. Proves a
/// front-end relapse cannot ride in under green per-stage rows.
pub fn demo_ratio_gate_rejects_front_end_rot(fresh: &BenchReport) -> Result<String, String> {
    let decode_rps = match fresh.find("decode_only", "mix") {
        Some(d) => d.records_per_sec,
        None => return Err("ratio demo: fresh run has no decode_only row".to_owned()),
    };
    let starved_rps = decode_rps / (MAX_E2E_DECODE_RATIO * 2.0);
    let mut synthetic = fresh.clone();
    let mut scaled = false;
    for r in &mut synthetic.results {
        if r.name == "end_to_end" && r.preset == "tiny" {
            r.wall_secs *= r.records_per_sec / starved_rps;
            r.records_per_sec = starved_rps;
            scaled = true;
        }
    }
    if !scaled {
        return Err("ratio demo: fresh run has no end_to_end/tiny row".to_owned());
    }
    let failures = self_checks(&synthetic);
    if failures.iter().any(|f| f.contains("decode-ratio gate")) {
        Ok(format!(
            "ratio self-test: synthetic {:.0}x decode/end-to-end gap rejected",
            MAX_E2E_DECODE_RATIO * 2.0
        ))
    } else {
        Err("ratio demo: synthetic front-end starvation NOT rejected — \
             decode-ratio floor is dead"
            .to_owned())
    }
}

/// Self-demonstration for the PR 10 swarm floors, against the committed
/// baseline and the fresh run: a synthetic 25% `swarm_served` slowdown
/// must trip [`trajectory_gate`], and a synthetic tap loss at twice the
/// permille budget must trip [`self_checks`].
pub fn demo_swarm_gates_reject(
    fresh: &BenchReport,
    baseline: &BenchReport,
) -> Result<String, String> {
    const SLOWDOWN: f64 = 0.25;
    if baseline.find("swarm_served", "loopback").is_none() {
        return Err("swarm demo: baseline has no swarm_served row".to_owned());
    }
    let mut slow = baseline.clone();
    for r in &mut slow.results {
        if r.name == "swarm_served" {
            r.records_per_sec *= 1.0 - SLOWDOWN;
            r.wall_secs /= 1.0 - SLOWDOWN;
        }
    }
    if !trajectory_gate(&slow, baseline)
        .iter()
        .any(|f| f.contains("swarm_served"))
    {
        return Err(format!(
            "swarm demo: synthetic {:.0}% swarm_served slowdown NOT rejected — \
             swarm floor is dead",
            SLOWDOWN * 100.0
        ));
    }
    let tapped = match fresh.find("swarm_tapped", "loopback") {
        Some(t) if t.records > 0 => t.records,
        _ => return Err("swarm demo: fresh run has no usable swarm_tapped row".to_owned()),
    };
    let mut lossy = fresh.clone();
    let mut scaled = false;
    for r in &mut lossy.results {
        if r.name == "swarm_capture_loss" {
            r.records = (tapped as f64 * MAX_SWARM_LOSS_PERMILLE * 2.0 / 1000.0).ceil() as u64;
            scaled = true;
        }
    }
    if !scaled {
        return Err("swarm demo: fresh run has no swarm_capture_loss row".to_owned());
    }
    if !self_checks(&lossy)
        .iter()
        .any(|f| f.contains("swarm capture-loss gate"))
    {
        return Err("swarm demo: synthetic 2x-budget tap loss NOT rejected — \
             loss budget is dead"
            .to_owned());
    }
    Ok(format!(
        "swarm self-test: synthetic {:.0}% served slowdown and 2x-budget tap loss \
         both rejected",
        SLOWDOWN * 100.0
    ))
}

/// A realistic message mix (mostly source searches, some metadata
/// searches, announcements, management — per the paper's four message
/// families), encoded to wire bytes for the decode bench.
fn message_mix(n: usize, seed: u64) -> Vec<Vec<u8>> {
    mix_messages(n, seed).iter().map(Message::encode).collect()
}

/// The anonymise-only corpus: the four message families in a fixed
/// rotation with fixed-arity bodies, repeating clientIDs and fileIDs
/// (the server sees every popular file and chatty client over and
/// over). Deterministic and period-4, so with [`TAIL_BATCH`] a multiple
/// of the period every record slot keeps its message shape across
/// batches.
fn anon_mix(n: usize) -> Vec<(u64, ClientId, Message)> {
    (0..n as u64)
        .map(|i| {
            let msg = match i % 4 {
                0 => Message::GetSources {
                    file_ids: vec![FileId::of_identity(i % 1_500)],
                },
                1 => Message::SearchRequest {
                    expr: SearchExpr::and(
                        SearchExpr::keyword("blue"),
                        SearchExpr::keyword("album"),
                    ),
                },
                2 => Message::FoundSources {
                    file_id: FileId::of_identity(i % 1_500),
                    sources: (0..3)
                        .map(|k| Source {
                            client_id: ClientId(((i * 7 + k) % 20_000) as u32),
                            port: 4662,
                        })
                        .collect(),
                },
                _ => Message::OfferFiles {
                    files: vec![FileEntry {
                        file_id: FileId::of_identity(i % 1_500),
                        client_id: ClientId((i % 20_000) as u32),
                        port: 4662,
                        tags: TagList(vec![
                            Tag::str(special::FILENAME, "some file name here.mp3"),
                            Tag::u32(special::FILESIZE, 4_000_000),
                        ]),
                    }],
                },
            };
            (i * 250, ClientId(((i * 13) % 20_000) as u32), msg)
        })
        .collect()
}

/// The same mix, decoded — the decode bench's corpus pre-encoding.
fn mix_messages(n: usize, seed: u64) -> Vec<Message> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| match rng.gen_range(0..10) {
            0..=4 => Message::GetSources {
                file_ids: vec![FileId::of_identity(i as u64 % 5000)],
            },
            5 => Message::SearchRequest {
                expr: SearchExpr::and(SearchExpr::keyword("blue"), SearchExpr::keyword("album")),
            },
            6 => Message::FoundSources {
                file_id: FileId::of_identity(i as u64 % 5000),
                sources: (0..rng.gen_range(1..20))
                    .map(|k| Source {
                        client_id: ClientId(0x0100_0000 + k),
                        port: 4662,
                    })
                    .collect(),
            },
            7..=8 => Message::OfferFiles {
                files: (0..rng.gen_range(1..12))
                    .map(|k| FileEntry {
                        file_id: FileId::of_identity((i * 31 + k) as u64 % 9000),
                        client_id: ClientId(i as u32 % 0xffff),
                        port: 4662,
                        tags: TagList(vec![
                            Tag::str(special::FILENAME, "some file name here.mp3"),
                            Tag::u32(special::FILESIZE, 4_000_000),
                        ]),
                    })
                    .collect(),
            },
            _ => Message::StatusRequest {
                challenge: rng.gen(),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, preset: &str, rps: f64, allocs: Option<f64>) -> BenchResult {
        BenchResult {
            name: name.into(),
            preset: preset.into(),
            records: 1000,
            wall_secs: 1000.0 / rps,
            records_per_sec: rps,
            allocs_per_record: allocs,
        }
    }

    #[test]
    fn trajectory_gate_flags_regression_only() {
        let baseline = BenchReport {
            results: vec![
                result("end_to_end", "tiny", 10_000.0, None),
                result("end_to_end_traced", "tiny", 9_000.0, None),
            ],
        };
        // 15% slower: within the 20% budget.
        let ok = BenchReport {
            results: vec![result("end_to_end", "tiny", 8_500.0, None)],
        };
        assert!(trajectory_gate(&ok, &baseline).is_empty());
        // 30% slower: out of budget.
        let slow = BenchReport {
            results: vec![result("end_to_end", "tiny", 7_000.0, None)],
        };
        assert_eq!(trajectory_gate(&slow, &baseline).len(), 1);
        // Missing bench is a failure too.
        let missing = BenchReport::default();
        assert_eq!(trajectory_gate(&missing, &baseline).len(), 1);
        // Ungated baselines (the traced overhead row) are informational:
        // a fresh run without them, or slower on them, never fails.
        let traced_ignored = BenchReport {
            results: vec![result("end_to_end", "tiny", 10_000.0, None)],
        };
        assert!(trajectory_gate(&traced_ignored, &baseline).is_empty());
    }

    #[test]
    fn trajectory_gate_floors_each_stage_bench() {
        let baseline = BenchReport {
            results: vec![
                result("end_to_end", "tiny", 10_000.0, None),
                result("decode_only", "mix", 2_000_000.0, None),
                result("tail_batched", "tiny", 900_000.0, Some(0.0)),
                result("anonymize_shard4", "mix", 800_000.0, None),
            ],
        };
        // All four within budget: green.
        let ok = BenchReport {
            results: vec![
                result("end_to_end", "tiny", 9_000.0, None),
                result("decode_only", "mix", 1_700_000.0, None),
                result("tail_batched", "tiny", 780_000.0, Some(0.0)),
                result("anonymize_shard4", "mix", 700_000.0, None),
            ],
        };
        assert!(trajectory_gate(&ok, &baseline).is_empty());
        // One stage 25% down while end-to-end holds: exactly that stage
        // trips, named in the failure.
        for (i, name) in ["decode_only", "tail_batched", "anonymize_shard4"]
            .iter()
            .enumerate()
        {
            let mut fresh = ok.clone();
            fresh.results[i + 1].records_per_sec *= 0.75 / 0.85;
            let failures = trajectory_gate(&fresh, &baseline);
            assert_eq!(failures.len(), 1, "{name}: {failures:?}");
            assert!(failures[0].contains(name), "{failures:?}");
        }
        // A missing stage bench is a failure, not a silent skip.
        let mut partial = ok.clone();
        partial.results.remove(1);
        let failures = trajectory_gate(&partial, &baseline);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("decode_only"));
    }

    #[test]
    fn gate_demo_rejects_synthetic_decode_slowdown() {
        let baseline = BenchReport {
            results: vec![
                result("end_to_end", "tiny", 10_000.0, None),
                result("decode_only", "mix", 2_000_000.0, None),
            ],
        };
        let line = demo_gate_rejects_stage_slowdown(&baseline).expect("demo rejects");
        assert!(line.contains("25% decode_only slowdown rejected"));
        // Without a decode_only row the demo reports itself broken.
        let no_decode = BenchReport {
            results: vec![result("end_to_end", "tiny", 10_000.0, None)],
        };
        assert!(demo_gate_rejects_stage_slowdown(&no_decode).is_err());
    }

    /// A result row with an explicit record count, for the swarm loss
    /// check (which reads counts, not rates).
    fn count_result(name: &str, preset: &str, records: u64) -> BenchResult {
        BenchResult {
            name: name.into(),
            preset: preset.into(),
            records,
            wall_secs: 1.0,
            records_per_sec: records as f64,
            allocs_per_record: None,
        }
    }

    /// A report every [`self_checks`] invariant passes on, so each case
    /// below isolates exactly one failure by mutating a clone.
    fn green_report() -> BenchReport {
        BenchReport {
            results: vec![
                result("tail_serial", "tiny", 10_000.0, Some(1.5)),
                result("tail_batched", "tiny", 25_000.0, Some(0.0)),
                result("anonymize_serial", "mix", 10_000.0, None),
                result("anonymize_shard4", "mix", 20_000.0, None),
                // Ratio 10x: inside the 20x decode-ratio budget.
                result("decode_only", "mix", 1_000_000.0, None),
                result("end_to_end", "tiny", 100_000.0, None),
                // 10 per mille measured loss: inside the 50 budget.
                count_result("swarm_tapped", "loopback", 10_000),
                count_result("swarm_capture_loss", "loopback", 100),
            ],
        }
    }

    fn set_rps(report: &mut BenchReport, name: &str, rps: f64) {
        let r = report
            .results
            .iter_mut()
            .find(|r| r.name == name)
            .expect("row present");
        r.records_per_sec = rps;
    }

    #[test]
    fn self_checks_enforce_speedup_and_allocs() {
        let good = green_report();
        assert!(self_checks(&good).is_empty());

        // Batched tail under the 2x floor: exactly one failure.
        let mut slow = green_report();
        set_rps(&mut slow, "tail_batched", 15_000.0);
        assert_eq!(self_checks(&slow).len(), 1);

        // Batched tail allocating in steady state: exactly one failure.
        let mut leaky = green_report();
        leaky
            .results
            .iter_mut()
            .find(|r| r.name == "tail_batched")
            .unwrap()
            .allocs_per_record = Some(0.5);
        assert_eq!(self_checks(&leaky).len(), 1);

        // Sharded anonymiser under the 1.5x floor: exactly one failure.
        let mut shard_slow = green_report();
        set_rps(&mut shard_slow, "anonymize_shard4", 12_000.0);
        let failures = self_checks(&shard_slow);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("anonymise-only shard speedup"));

        // Nothing measured: all four check families reported missing.
        assert_eq!(self_checks(&BenchReport::default()).len(), 4);
    }

    #[test]
    fn decode_ratio_floor_catches_front_end_starvation() {
        // end_to_end at 1/25th of decode_only: over the 20x budget.
        let mut starved = green_report();
        set_rps(&mut starved, "end_to_end", 40_000.0);
        let failures = self_checks(&starved);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("decode-ratio gate"), "{failures:?}");

        // Exactly at the budget: passes (the floor is `>`, not `>=`).
        let mut at_budget = green_report();
        set_rps(
            &mut at_budget,
            "end_to_end",
            1_000_000.0 / MAX_E2E_DECODE_RATIO,
        );
        assert!(self_checks(&at_budget).is_empty());

        // Host twice as slow overall: both rows scale, ratio unchanged,
        // no failure — the floor is relative, not absolute.
        let mut slow_host = green_report();
        set_rps(&mut slow_host, "decode_only", 500_000.0);
        set_rps(&mut slow_host, "end_to_end", 50_000.0);
        assert!(self_checks(&slow_host).is_empty());
    }

    #[test]
    fn swarm_loss_budget_enforced() {
        // 80 per mille: over the 50 budget, named failure.
        let mut lossy = green_report();
        lossy
            .results
            .iter_mut()
            .find(|r| r.name == "swarm_capture_loss")
            .unwrap()
            .records = 800;
        let failures = self_checks(&lossy);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("swarm capture-loss gate"),
            "{failures:?}"
        );

        // A tap that saw no frames cannot certify the budget: failure,
        // not a silent pass.
        let mut blind = green_report();
        blind
            .results
            .iter_mut()
            .find(|r| r.name == "swarm_tapped")
            .unwrap()
            .records = 0;
        assert_eq!(self_checks(&blind).len(), 1);
    }

    #[test]
    fn swarm_served_is_trajectory_gated() {
        let baseline = BenchReport {
            results: vec![count_result("swarm_served", "loopback", 60_000)],
        };
        // 25% slower than baseline: out of the 20% budget.
        let mut slow = baseline.clone();
        set_rps(&mut slow, "swarm_served", 45_000.0);
        let failures = trajectory_gate(&slow, &baseline);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("swarm_served"));
        // 15% slower: inside the budget.
        let mut ok = baseline.clone();
        set_rps(&mut ok, "swarm_served", 51_000.0);
        assert!(trajectory_gate(&ok, &baseline).is_empty());
    }

    #[test]
    fn ratio_demo_rejects_synthetic_starvation() {
        let fresh = green_report();
        let line = demo_ratio_gate_rejects_front_end_rot(&fresh).expect("demo rejects");
        assert!(line.contains("rejected"), "{line}");
        // Without a decode_only row the demo reports itself broken.
        let mut no_decode = green_report();
        no_decode.results.retain(|r| r.name != "decode_only");
        assert!(demo_ratio_gate_rejects_front_end_rot(&no_decode).is_err());
    }

    #[test]
    fn swarm_demo_rejects_synthetic_violations() {
        let mut baseline = green_report();
        baseline
            .results
            .push(count_result("swarm_served", "loopback", 60_000));
        let fresh = green_report();
        let line = demo_swarm_gates_reject(&fresh, &baseline).expect("demo rejects");
        assert!(line.contains("rejected"), "{line}");
        // Baseline without a swarm_served row: the demo reports itself
        // broken instead of vacuously passing.
        assert!(demo_swarm_gates_reject(&fresh, &green_report()).is_err());
    }

    #[test]
    fn tail_bench_measures_real_corpus() {
        // A miniature corpus through both tails: counts must agree and
        // throughputs be finite. (The 2x floor is checked in `repro
        // bench` where timing is meaningful, not under the test runner.)
        let mut corpus = Vec::new();
        let mut config = CampaignConfig::tiny();
        config.generator.duration_secs = 120;
        run_campaign(&config, |r| corpus.push(r));
        let results = bench_tail(&corpus, 1);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.records, corpus.len() as u64);
            assert!(r.records_per_sec.is_finite() && r.records_per_sec > 0.0);
        }
    }

    #[test]
    fn anonymize_bench_rows_agree() {
        // Both anonymiser rows over a small mix: same record counts,
        // finite throughputs. (The 1.5x floor is checked in `repro
        // bench` where timing is meaningful, not under the test runner.)
        let results = bench_anonymize(2_000, 1);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].name, "anonymize_serial");
        assert_eq!(results[1].name, format!("anonymize_shard{ANON_SHARDS}"));
        for r in &results {
            assert_eq!(r.records, 2_000);
            assert!(r.records_per_sec.is_finite() && r.records_per_sec > 0.0);
        }
    }
}
