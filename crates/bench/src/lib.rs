//! # etw-bench — benchmark harness
//!
//! Criterion benches regenerating the paper's evaluation:
//!
//! | bench | reproduces |
//! |---|---|
//! | `anonymize_clientid` | ablation A1: direct array vs hashtable vs tree (§2.4) |
//! | `anonymize_fileid` | ablation A2: bucketed sorted arrays vs baselines; byte selector under pollution (§2.4, Fig. 3) |
//! | `decode` | ablation A3: two-step decoder throughput, early reject (§2.3) |
//! | `capture` | ablation A4: ring capacity vs loss (Fig. 2 mechanics) |
//! | `pipeline` | ablation A5: end-to-end capture machine, worker sweep (Fig. 1) |
//! | `figures` | per-figure statistic extraction cost (§3) |
//! | `extensions` | LZSS dataset codec throughput (§2.4 fn.3), TCP flow reconstruction (conclusion), distinct-counting ablation (§1) |
//!
//! Run with `cargo bench -p etw-bench` (or `cargo bench -p etw-bench --bench decode`).
//!
//! Besides the criterion benches, this crate is the library behind
//! `repro bench`, the benchmark trajectory gate:
//!
//! * [`alloc`] — allocation-counting `#[global_allocator]` wrapper, so
//!   the zero-alloc claims of the batched tail are measured, not trusted;
//! * [`harness`] — best-of-N timing and the `BENCH_*.json` format;
//! * [`suite`] — the decode-only / tail-only / end-to-end measurements,
//!   the ≥ 2× tail-speedup self-check, and the ≤ 20% end-to-end
//!   regression gate against the committed baseline.

pub mod alloc;
pub mod harness;
pub mod suite;
