//! Ablation A6 — what does watching the machine cost?
//!
//! The telemetry registry claims to be cheap enough to leave on for a
//! whole campaign: relaxed atomics on the hot paths, clock reads only
//! where a histogram is explicitly timed. This bench runs the same
//! campaign three ways — unobserved, against a disabled registry, and
//! fully instrumented with health snapshots — so the overhead of each
//! layer is a column apart. The instrumented run should stay within a
//! few percent of the unobserved one.
//!
//! Micro-benches below isolate the primitive costs (counter add,
//! histogram record, metered channel transfer).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use etw_core::campaign::{run_campaign, run_campaign_observed};
use etw_core::config::CampaignConfig;
use etw_telemetry::channel::metered_bounded;
use etw_telemetry::Registry;

fn bench_config() -> CampaignConfig {
    let mut c = CampaignConfig::tiny();
    c.population.n_clients = 400;
    c.generator.duration_secs = 1_200;
    c.health_interval_secs = 300;
    c
}

fn bench_campaign_overhead(c: &mut Criterion) {
    let config = bench_config();
    let probe = run_campaign(&config, |_| {});
    let records = probe.records;

    let mut group = c.benchmark_group("telemetry_overhead");
    group.throughput(Throughput::Elements(records));
    group.sample_size(10);
    group.bench_function("campaign_unobserved", |b| {
        b.iter(|| {
            let mut n = 0u64;
            run_campaign(&config, |_| n += 1);
            n
        })
    });
    group.bench_function("campaign_disabled_registry", |b| {
        b.iter(|| {
            let mut n = 0u64;
            run_campaign_observed(&config, &Registry::disabled(), |_| n += 1);
            n
        })
    });
    group.bench_function("campaign_instrumented", |b| {
        b.iter(|| {
            let mut n = 0u64;
            let registry = Registry::new();
            let report = run_campaign_observed(&config, &registry, |_| n += 1);
            assert!(!report.health.is_empty());
            n
        })
    });
    group.finish();

    // Headline number: best-of-3 each way, so the overhead claim is in
    // the bench output itself rather than left to mental arithmetic.
    let time = |f: &dyn Fn()| {
        (0..3)
            .map(|_| {
                let t = std::time::Instant::now();
                f();
                t.elapsed()
            })
            .min()
            .unwrap()
    };
    let plain = time(&|| {
        run_campaign(&config, |_| {});
    });
    let instrumented = time(&|| {
        let registry = Registry::new();
        run_campaign_observed(&config, &registry, |_| {});
    });
    let overhead = (instrumented.as_secs_f64() / plain.as_secs_f64() - 1.0) * 100.0;
    println!(
        "\ntelemetry overhead: instrumented {:.3}s vs unobserved {:.3}s = {overhead:+.1}% \
         (target: < 5%)\n",
        instrumented.as_secs_f64(),
        plain.as_secs_f64(),
    );
}

fn bench_primitives(c: &mut Criterion) {
    let registry = Registry::new();
    let counter = registry.counter("bench.counter");
    let disabled = Registry::disabled().counter("bench.counter");
    let histogram = registry.histogram("bench.histogram");

    let mut group = c.benchmark_group("telemetry_primitives");
    group.throughput(Throughput::Elements(1));
    group.bench_function("counter_add", |b| b.iter(|| counter.add(1)));
    group.bench_function("counter_add_disabled", |b| b.iter(|| disabled.add(1)));
    group.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
            histogram.record(v)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("metered_channel");
    group.throughput(Throughput::Elements(1));
    let (plain_tx, plain_rx) = crossbeam::channel::bounded::<u64>(1024);
    group.bench_function("plain_send_recv", |b| {
        b.iter(|| {
            plain_tx.send(42).unwrap();
            plain_rx.recv().unwrap()
        })
    });
    let (tx, rx) = metered_bounded::<u64>(1024, &registry, "bench");
    group.bench_function("metered_send_recv", |b| {
        b.iter(|| {
            tx.send(42).unwrap();
            rx.recv().unwrap()
        })
    });
    let (dtx, drx) = metered_bounded::<u64>(1024, &Registry::disabled(), "bench");
    group.bench_function("metered_send_recv_disabled", |b| {
        b.iter(|| {
            dtx.send(42).unwrap();
            drx.recv().unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_campaign_overhead, bench_primitives);
criterion_main!(benches);
