//! Ablation A4 — capture ring sizing (the Fig. 2 mechanism).
//!
//! Measures the cost of the fluid ring model itself (it must be cheap:
//! Fig. 2 simulates 6 million seconds), and reports — via criterion's
//! bench labels over a capacity sweep — how ring capacity trades against
//! loss under the same bursty offered load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use etw_netsim::capture::CaptureBuffer;
use etw_netsim::clock::VirtualTime;
use etw_netsim::traffic::{Burst, RateModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bursty_model(horizon: u64) -> RateModel {
    let mut m = RateModel::new(5_200.0, 0.45, 0.10, horizon, 0, 1);
    m.set_bursts(vec![
        Burst {
            start_sec: horizon / 4,
            duration_sec: 30,
            amplitude: 9.0,
        },
        Burst {
            start_sec: horizon / 2,
            duration_sec: 60,
            amplitude: 12.0,
        },
    ]);
    m
}

fn bench_capture(c: &mut Criterion) {
    let horizon = 20_000u64;
    let model = bursty_model(horizon);

    // Pre-sample arrivals so the bench isolates the ring.
    let mut rng = StdRng::seed_from_u64(5);
    let arrivals: Vec<u64> = (0..horizon)
        .map(|s| model.sample_arrivals(VirtualTime::from_secs(s), &mut rng))
        .collect();
    let offered: u64 = arrivals.iter().sum();

    let mut group = c.benchmark_group("capture_ring");
    group.throughput(Throughput::Elements(offered));
    group.sample_size(10);
    for capacity in [1_024u64, 8_192, 65_536] {
        group.bench_with_input(
            BenchmarkId::new("simulate_horizon", capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    let mut ring = CaptureBuffer::new(cap, 26_000.0);
                    for (s, &n) in arrivals.iter().enumerate() {
                        ring.offer_batch(VirtualTime::from_secs(s as u64), n);
                    }
                    ring.lost()
                })
            },
        );
    }
    group.finish();

    // Print the loss-vs-capacity ablation table once (criterion output
    // captures stdout in the log).
    println!("\ncapture ring ablation (offered {offered} packets, drain 26k pps):");
    println!("{:>10} {:>12} {:>12}", "capacity", "lost", "loss ratio");
    for capacity in [256u64, 1_024, 4_096, 8_192, 16_384, 65_536, 262_144] {
        let mut ring = CaptureBuffer::new(capacity, 26_000.0);
        for (s, &n) in arrivals.iter().enumerate() {
            ring.offer_batch(VirtualTime::from_secs(s as u64), n);
        }
        println!(
            "{:>10} {:>12} {:>12.2e}",
            capacity,
            ring.lost(),
            ring.lost() as f64 / offered as f64
        );
    }
}

criterion_group!(benches, bench_capture);
criterion_main!(benches);
