//! Ablation A5 — pipeline parallelism and the T1 regeneration cost.
//!
//! The paper's processing "is able to decode udp traffic in real-time,
//! which is crucial in our context". Here we measure the whole capture
//! machine (generator → server → wire → decode → anonymise) end to end,
//! sweeping the number of decode workers, and report the achieved
//! messages/second so the real-time claim can be checked against any
//! target link rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use etw_core::campaign::run_campaign;
use etw_core::config::CampaignConfig;

fn bench_config() -> CampaignConfig {
    let mut c = CampaignConfig::tiny();
    c.population.n_clients = 400;
    c.generator.duration_secs = 1_200;
    c
}

fn bench_pipeline(c: &mut Criterion) {
    // Calibrate message count once.
    let mut config = bench_config();
    let probe = run_campaign(&config, |_| {});
    let records = probe.records;

    let mut group = c.benchmark_group("pipeline_end_to_end");
    group.throughput(Throughput::Elements(records));
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        config.decode_workers = workers;
        let cfg = config.clone();
        group.bench_with_input(
            BenchmarkId::new("decode_workers", workers),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut n = 0u64;
                    let report = run_campaign(cfg, |_| n += 1);
                    assert_eq!(report.records, n);
                    n
                })
            },
        );
    }
    group.finish();

    println!(
        "\npipeline T1 probe: {} records per run — compare the per-run time above \
         against the paper's real-time requirement (~1 600 msg/s average link rate).",
        records
    );
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
