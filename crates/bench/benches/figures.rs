//! Per-figure regeneration benches: the cost of computing each of the
//! paper's §3 statistics from a dataset, which the paper claims is kept
//! "reasonable" by the dense anonymised encoding.
//!
//! One bench per figure: Fig. 2 (loss series utilities), Fig. 3 (bucket
//! distribution), Figs. 4–7 (degree distributions), Fig. 8 (size
//! histogram) plus the power-law fit and peak detection used in the
//! captions.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use etw_analysis::distributions::DatasetStats;
use etw_analysis::peaks::find_peaks;
use etw_analysis::powerlaw::fit_histogram;
use etw_analysis::timeseries::SparseSeries;
use etw_anonymize::fileid::{BucketedArrays, ByteSelector, FileIdAnonymizer};
use etw_anonymize::scheme::AnonRecord;
use etw_core::campaign::run_campaign;
use etw_core::config::CampaignConfig;
use etw_edonkey::ids::FileId;
use std::sync::OnceLock;

/// One shared dataset for all figure benches.
fn dataset() -> &'static Vec<AnonRecord> {
    static DATA: OnceLock<Vec<AnonRecord>> = OnceLock::new();
    DATA.get_or_init(|| {
        let mut config = CampaignConfig::tiny();
        config.population.n_clients = 500;
        config.generator.duration_secs = 3_600;
        let mut records = Vec::new();
        run_campaign(&config, |r| records.push(r));
        records
    })
}

fn accumulate(records: &[AnonRecord]) -> DatasetStats {
    let mut stats = DatasetStats::new();
    for r in records {
        stats.observe(r);
    }
    stats
}

fn bench_figures(c: &mut Criterion) {
    let records = dataset();
    let n = records.len() as u64;
    let stats = accumulate(records);

    let mut group = c.benchmark_group("figures");
    group.throughput(Throughput::Elements(n));

    group.bench_function("accumulate_dataset", |b| b.iter(|| accumulate(records)));

    group.bench_function("fig4_providers_per_file", |b| {
        b.iter(|| stats.providers_per_file().total())
    });
    group.bench_function("fig5_seekers_per_file", |b| {
        b.iter(|| stats.seekers_per_file().total())
    });
    group.bench_function("fig6_files_per_provider", |b| {
        b.iter(|| stats.files_per_provider().total())
    });
    group.bench_function("fig7_files_per_seeker_with_peak", |b| {
        b.iter(|| {
            let h = stats.files_per_seeker();
            find_peaks(&h, 5, 3.0, 5).len()
        })
    });
    group.bench_function("fig8_size_histogram_with_peaks", |b| {
        b.iter(|| {
            let h = stats.size_histogram_kb();
            find_peaks(&h, 8, 10.0, 5).len()
        })
    });
    group.bench_function("powerlaw_fit_fig4", |b| {
        let h = stats.providers_per_file();
        b.iter(|| fit_histogram(&h))
    });
    group.finish();

    // Fig. 2: time-series utilities over a long sparse loss series.
    let series = SparseSeries::new((0..100_000u64).step_by(37).map(|s| (s, s % 7)).collect());
    let mut group = c.benchmark_group("fig2_series");
    group.throughput(Throughput::Elements(series.points.len() as u64));
    group.bench_function("cumulative", |b| b.iter(|| series.cumulative().len()));
    group.bench_function("bucketed_1h", |b| b.iter(|| series.bucketed(3_600).len()));
    group.finish();

    // Fig. 3: bucket-size extraction from a loaded store.
    let mut store = BucketedArrays::new(ByteSelector::ALTERNATIVE);
    for i in 0..50_000u64 {
        store.anonymize(&FileId::of_identity(i));
    }
    let mut group = c.benchmark_group("fig3_buckets");
    group.bench_function("bucket_sizes_histogram", |b| {
        b.iter(|| {
            let sizes = store.bucket_sizes();
            let h: etw_analysis::histogram::IntHistogram =
                sizes.iter().map(|&s| s as u64).collect();
            h.distinct_values()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
