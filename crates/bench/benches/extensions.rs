//! Benches for the extension subsystems: the LZSS dataset codec
//! (footnote 3's compression) and TCP flow reconstruction (the
//! conclusion's proposed measurement).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use etw_anonymize::scheme::{AnonMessage, AnonRecord};
use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::{FileEntry, Message};
use etw_edonkey::stream::{encode_stream, StreamDecoder};
use etw_edonkey::tags::{special, Tag, TagList};
use etw_netsim::flows::{FlowOutcome, FlowReassembler};
use etw_netsim::tcp::segmentize;
use etw_xmlout::compress::{compress, decompress};
use etw_xmlout::writer::to_xml_string;

/// A representative dataset document (~1 MB of XML).
fn dataset_xml() -> String {
    let records: Vec<AnonRecord> = (0..8_000u64)
        .map(|i| AnonRecord {
            ts_us: i * 1_000,
            peer: (i % 500) as u32,
            msg: AnonMessage::GetSources {
                files: vec![i % 900, (i * 7) % 900],
            },
        })
        .collect();
    to_xml_string(&records)
}

fn bench_compression(c: &mut Criterion) {
    let xml = dataset_xml();
    let packed = compress(xml.as_bytes());
    println!(
        "dataset codec: {} -> {} bytes ({:.1}x)",
        xml.len(),
        packed.len(),
        xml.len() as f64 / packed.len() as f64
    );
    let mut group = c.benchmark_group("dataset_codec");
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.sample_size(20);
    group.bench_function("compress", |b| b.iter(|| compress(xml.as_bytes()).len()));
    group.bench_function("decompress", |b| {
        b.iter(|| decompress(&packed).unwrap().len())
    });
    group.finish();
}

fn bench_tcp_flows(c: &mut Criterion) {
    // 20 flows of 500 messages each.
    let flows: Vec<Vec<etw_netsim::tcp::TcpSegment>> = (0..20u32)
        .map(|f| {
            let msgs: Vec<Message> = (0..500)
                .map(|i| Message::OfferFiles {
                    files: vec![FileEntry {
                        file_id: FileId::of_identity(i as u64),
                        client_id: ClientId(f),
                        port: 4662,
                        tags: TagList(vec![
                            Tag::str(special::FILENAME, "some shared file.mp3"),
                            Tag::u32(special::FILESIZE, 4_000_000),
                        ]),
                    }],
                })
                .collect();
            segmentize(f, 2, 1_000, 4661, f * 99, &encode_stream(&msgs), 1460)
        })
        .collect();
    let total_segments: usize = flows.iter().map(Vec::len).sum();

    let mut group = c.benchmark_group("tcp_flows");
    group.throughput(Throughput::Elements(total_segments as u64));
    group.sample_size(20);
    group.bench_function("reassemble_and_decode", |b| {
        b.iter(|| {
            let mut reasm = FlowReassembler::new();
            let mut decoded = 0u64;
            for segs in &flows {
                for seg in segs {
                    if let Some(FlowOutcome::Complete(bytes)) = reasm.push(seg) {
                        let mut d = StreamDecoder::new();
                        decoded += d.push(&bytes).len() as u64;
                    }
                }
            }
            assert_eq!(decoded, 20 * 500);
            decoded
        })
    });
    group.finish();
}

/// Distinct-count ablation: the paper's "counting the number of distinct
/// fileID observed" challenge. The anonymiser gets the count for free
/// but pays O(distinct) memory; a HyperLogLog sketch answers in 16 KB.
fn bench_distinct_counting(c: &mut Criterion) {
    use etw_analysis::cardinality::{hash_bytes, HyperLogLog};
    use std::collections::HashSet;

    let ids: Vec<FileId> = (0..300_000u64)
        .map(|i| FileId::of_identity(i % 120_000))
        .collect();

    let mut group = c.benchmark_group("distinct_fileids");
    group.throughput(Throughput::Elements(ids.len() as u64));
    group.sample_size(10);
    group.bench_function("hashset_exact", |b| {
        b.iter(|| {
            let set: HashSet<&FileId> = ids.iter().collect();
            set.len()
        })
    });
    group.bench_function("hyperloglog_p14", |b| {
        b.iter(|| {
            let mut hll = HyperLogLog::new(14);
            for id in &ids {
                hll.insert_hash(hash_bytes(id.as_bytes()));
            }
            hll.estimate() as u64
        })
    });
    group.bench_function("order_of_appearance_store", |b| {
        use etw_anonymize::fileid::{BucketedArrays, ByteSelector, FileIdAnonymizer};
        b.iter(|| {
            let mut store = BucketedArrays::new(ByteSelector::ALTERNATIVE);
            for id in &ids {
                store.anonymize(id);
            }
            store.distinct()
        })
    });
    group.finish();

    // Accuracy/memory table.
    let mut hll = HyperLogLog::new(14);
    for id in &ids {
        hll.insert_hash(hash_bytes(id.as_bytes()));
    }
    let exact = ids.iter().collect::<HashSet<_>>().len();
    println!(
        "
distinct counting: exact {} | HLL(p=14) {:.0} ({:.2} % err, {} bytes)",
        exact,
        hll.estimate(),
        100.0 * (hll.estimate() - exact as f64).abs() / exact as f64,
        hll.memory_bytes()
    );
}

criterion_group!(
    benches,
    bench_compression,
    bench_tcp_flows,
    bench_distinct_counting
);
criterion_main!(benches);
