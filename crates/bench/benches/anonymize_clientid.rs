//! Ablation A1 — clientID anonymiser data structures (paper §2.4).
//!
//! The paper claims classical structures (hashtables, trees) are "too
//! slow and/or too space consuming" for billions of lookups, and uses a
//! direct-index array instead. This bench reproduces the comparison on
//! a realistic stream: mostly repeat lookups (every message carries a
//! clientID) with a steady trickle of first sightings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use etw_anonymize::clientid::{
    BTreeAnonymizer, ClientIdAnonymizer, DirectArrayAnonymizer, HashMapAnonymizer,
};
use etw_edonkey::ids::ClientId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stream with the capture's access pattern: heavy repetition over a
/// growing population.
fn stream(n_ops: usize, space_bits: u32, seed: u64) -> Vec<ClientId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let space = 1u32 << space_bits;
    (0..n_ops)
        .map(|_| {
            // 90% of messages come from recently active clients.
            if rng.gen_bool(0.9) {
                ClientId(rng.gen_range(0..space / 64))
            } else {
                ClientId(rng.gen_range(0..space))
            }
        })
        .collect()
}

fn bench_clientid(c: &mut Criterion) {
    let ops = 200_000usize;
    let bits = 20u32;
    let ids = stream(ops, bits, 42);

    let mut group = c.benchmark_group("anonymize_clientid");
    group.throughput(Throughput::Elements(ops as u64));

    group.bench_function(BenchmarkId::new("direct_array", ops), |b| {
        b.iter(|| {
            let mut a = DirectArrayAnonymizer::new(bits);
            let mut acc = 0u64;
            for &id in &ids {
                acc = acc.wrapping_add(a.anonymize(id) as u64);
            }
            acc
        })
    });

    group.bench_function(BenchmarkId::new("hashmap", ops), |b| {
        b.iter(|| {
            let mut a = HashMapAnonymizer::new();
            let mut acc = 0u64;
            for &id in &ids {
                acc = acc.wrapping_add(a.anonymize(id) as u64);
            }
            acc
        })
    });

    group.bench_function(BenchmarkId::new("btreemap", ops), |b| {
        b.iter(|| {
            let mut a = BTreeAnonymizer::new();
            let mut acc = 0u64;
            for &id in &ids {
                acc = acc.wrapping_add(a.anonymize(id) as u64);
            }
            acc
        })
    });

    group.finish();

    // Lookup-only phase (the dominant operation once the population
    // saturates: "an overwhelming number of searches … must be
    // performed").
    let mut direct = DirectArrayAnonymizer::new(bits);
    let mut hash = HashMapAnonymizer::new();
    let mut btree = BTreeAnonymizer::new();
    for &id in &ids {
        direct.anonymize(id);
        hash.anonymize(id);
        btree.anonymize(id);
    }
    let mut group = c.benchmark_group("clientid_lookup_only");
    group.throughput(Throughput::Elements(ops as u64));
    group.bench_function("direct_array", |b| {
        b.iter(|| ids.iter().filter_map(|&id| direct.lookup(id)).count())
    });
    group.bench_function("hashmap", |b| {
        b.iter(|| ids.iter().filter_map(|&id| hash.lookup(id)).count())
    });
    group.bench_function("btreemap", |b| {
        b.iter(|| ids.iter().filter_map(|&id| btree.lookup(id)).count())
    });
    group.finish();
}

criterion_group!(benches, bench_clientid);
criterion_main!(benches);
