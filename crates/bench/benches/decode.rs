//! Ablation A3 — decoder throughput (paper §2.3).
//!
//! The whole capture chain must keep up with the link in real time; the
//! paper's server averaged ≈1 600 eDonkey UDP messages/second with peaks
//! far above. This bench measures (a) full two-step decoding over a
//! realistic message mix, (b) the structural-validation early-reject on
//! garbage, and (c) the wire path (ethernet→IP→UDP) on top.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use etw_core::wirepath::{encapsulate, Direction, WireDecoder};
use etw_edonkey::decoder::{validate, Decoder};
use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::{FileEntry, Message, Source};
use etw_edonkey::search::SearchExpr;
use etw_edonkey::tags::{special, Tag, TagList};
use etw_netsim::clock::VirtualTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A realistic message mix (mostly source searches, some metadata
/// searches, announcements, management — per the four families).
fn message_mix(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let msg = match rng.gen_range(0..10) {
                0..=4 => Message::GetSources {
                    file_ids: vec![FileId::of_identity(i as u64 % 5000)],
                },
                5 => Message::SearchRequest {
                    expr: SearchExpr::and(
                        SearchExpr::keyword("blue"),
                        SearchExpr::keyword("album"),
                    ),
                },
                6 => Message::FoundSources {
                    file_id: FileId::of_identity(i as u64 % 5000),
                    sources: (0..rng.gen_range(1..20))
                        .map(|k| Source {
                            client_id: ClientId(0x0100_0000 + k),
                            port: 4662,
                        })
                        .collect(),
                },
                7..=8 => Message::OfferFiles {
                    files: (0..rng.gen_range(1..12))
                        .map(|k| FileEntry {
                            file_id: FileId::of_identity((i * 31 + k) as u64 % 9000),
                            client_id: ClientId(i as u32 % 0xffff),
                            port: 4662,
                            tags: TagList(vec![
                                Tag::str(special::FILENAME, "some file name here.mp3"),
                                Tag::u32(special::FILESIZE, 4_000_000),
                            ]),
                        })
                        .collect(),
                },
                _ => Message::StatusRequest {
                    challenge: rng.gen(),
                },
            };
            msg.encode()
        })
        .collect()
}

fn garbage_mix(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(2..100);
            let mut v = vec![0u8; len];
            rng.fill(&mut v[..]);
            v[0] = 0xE3; // eDonkey marker so it reaches validation
            v
        })
        .collect()
}

fn bench_decode(c: &mut Criterion) {
    let n = 50_000usize;
    let msgs = message_mix(n, 3);
    let garbage = garbage_mix(n, 4);

    let mut group = c.benchmark_group("decode");
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("two_step_valid_mix", |b| {
        b.iter(|| {
            let mut d = Decoder::new();
            for m in &msgs {
                let _ = d.push(m);
            }
            d.stats().decoded
        })
    });

    group.bench_function("validation_only_valid_mix", |b| {
        b.iter(|| msgs.iter().filter(|m| validate(m).is_ok()).count())
    });

    group.bench_function("two_step_garbage", |b| {
        b.iter(|| {
            let mut d = Decoder::new();
            for m in &garbage {
                let _ = d.push(m);
            }
            d.stats().structurally_invalid
        })
    });

    group.bench_function("validation_only_garbage", |b| {
        b.iter(|| garbage.iter().filter(|m| validate(m).is_err()).count())
    });
    group.finish();

    // The full wire path: frames in, messages out.
    let frames: Vec<Vec<u8>> = msgs
        .iter()
        .enumerate()
        .flat_map(|(i, m)| {
            encapsulate(
                m.clone(),
                ClientId(i as u32 % 0xffff),
                4672,
                Direction::ToServer,
                i as u16,
                1500,
            )
            .into_iter()
            .map(|f| f.to_bytes())
        })
        .collect();
    let mut group = c.benchmark_group("wire_path");
    group.throughput(Throughput::Elements(frames.len() as u64));
    group.sample_size(20);
    group.bench_function("frames_to_messages", |b| {
        b.iter(|| {
            let mut wire = WireDecoder::new();
            let mut decoder = Decoder::new();
            let mut n = 0u64;
            for f in &frames {
                if let etw_core::wirepath::Recovered::Udp { payload, .. } =
                    wire.push(VirtualTime::ZERO, f)
                {
                    if let etw_edonkey::decoder::DecodeOutcome::Ok(_) = decoder.push(&payload) {
                        n += 1;
                    }
                }
            }
            n
        })
    });
    group.finish();
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
