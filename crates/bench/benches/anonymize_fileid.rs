//! Ablation A2 — fileID anonymiser structures (paper §2.4, Fig. 3).
//!
//! Three comparisons from the paper's own reasoning:
//!
//! 1. a single sorted array ("insertion has a prohibitive cost") vs the
//!    65 536 bucketed arrays vs a hashmap;
//! 2. the bucketed arrays under *clean* MD4-uniform traffic vs traffic
//!    with forged-ID pollution — under the FIRST_TWO selector, the
//!    polluted buckets blow up and insertion cost explodes with them;
//! 3. the pollution-resistant ALTERNATIVE byte selector on the same
//!    polluted traffic.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use etw_anonymize::fileid::{
    BucketedArrays, ByteSelector, FileIdAnonymizer, HashMapFileAnonymizer, SingleSortedArray,
};
use etw_edonkey::ids::FileId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Clean stream: uniform MD4 IDs with repetition.
fn clean_stream(n_ops: usize, distinct: u64, seed: u64) -> Vec<FileId> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_ops)
        .map(|_| FileId::of_identity(rng.gen_range(0..distinct)))
        .collect()
}

/// Polluted stream: the paper's observed mix — a majority of forged IDs
/// with constant prefixes landing in buckets 0/256.
fn polluted_stream(n_ops: usize, distinct: u64, seed: u64) -> Vec<FileId> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_ops)
        .map(|_| {
            if rng.gen_bool(0.55) {
                let prefix = if rng.gen_bool(0.5) {
                    [0x00, 0x00]
                } else {
                    [0x00, 0x01]
                };
                FileId::forged(rng.gen_range(0..distinct), prefix)
            } else {
                FileId::of_identity(rng.gen_range(0..distinct))
            }
        })
        .collect()
}

fn run<A: FileIdAnonymizer>(mut a: A, ids: &[FileId]) -> u64 {
    let mut acc = 0u64;
    for id in ids {
        acc = acc.wrapping_add(a.anonymize(id));
    }
    acc
}

fn bench_structures(c: &mut Criterion) {
    let ops = 100_000usize;
    let distinct = 40_000u64;
    let clean = clean_stream(ops, distinct, 7);

    let mut group = c.benchmark_group("fileid_structures_clean");
    group.throughput(Throughput::Elements(ops as u64));
    group.sample_size(20);
    group.bench_function("bucketed_arrays", |b| {
        b.iter(|| run(BucketedArrays::new(ByteSelector::ALTERNATIVE), &clean))
    });
    group.bench_function("single_sorted_array", |b| {
        b.iter(|| run(SingleSortedArray::new(), &clean))
    });
    group.bench_function("hashmap", |b| {
        b.iter(|| run(HashMapFileAnonymizer::new(), &clean))
    });
    group.finish();
}

fn bench_pollution(c: &mut Criterion) {
    let ops = 100_000usize;
    let distinct = 40_000u64;
    let clean = clean_stream(ops, distinct, 7);
    let polluted = polluted_stream(ops, distinct, 8);

    let mut group = c.benchmark_group("fileid_selector_vs_pollution");
    group.throughput(Throughput::Elements(ops as u64));
    group.sample_size(20);
    group.bench_function("first_two_bytes/clean", |b| {
        b.iter(|| run(BucketedArrays::new(ByteSelector::FIRST_TWO), &clean))
    });
    group.bench_function("first_two_bytes/polluted", |b| {
        b.iter(|| run(BucketedArrays::new(ByteSelector::FIRST_TWO), &polluted))
    });
    group.bench_function("alternative_bytes/polluted", |b| {
        b.iter(|| run(BucketedArrays::new(ByteSelector::ALTERNATIVE), &polluted))
    });
    group.finish();
}

criterion_group!(benches, bench_structures, bench_pollution);
criterion_main!(benches);
