//! The query-answering engine: one incoming client message → the server's
//! answer messages (paper §2.1's four families).

use crate::index::{tokenize, ServerIndex};
use etw_edonkey::ids::ClientId;
use etw_edonkey::messages::{FileEntry, Message, ServerAddr};
use etw_edonkey::search::{BoolOp, NumCmp, SearchExpr};
use etw_edonkey::tags::{special, Tag, TagList, TagName};
use std::collections::HashSet;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Server name (appears in ServerDescResponse).
    pub name: String,
    /// Server description.
    pub description: String,
    /// Other servers advertised in ServerList answers.
    pub peer_servers: Vec<ServerAddr>,
    /// Maximum results in one SearchResponse.
    pub max_search_results: usize,
    /// Maximum sources in one FoundSources.
    pub max_sources: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            name: "TenWeeksServer".to_owned(),
            description: "simulated eDonkey directory server".to_owned(),
            peer_servers: (1..=8)
                .map(|i| ServerAddr {
                    ip: 0x5000_0000 + i,
                    port: 4661 + (i % 4) as u16,
                })
                .collect(),
            max_search_results: 30,
            max_sources: 50,
        }
    }
}

/// Per-opcode counters (server side of the T1 summary).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries handled.
    pub queries: u64,
    /// Answers produced.
    pub answers: u64,
    /// Search requests seen.
    pub searches: u64,
    /// Source requests seen (per fileID asked).
    pub source_asks: u64,
    /// Files received in announcements.
    pub published_files: u64,
}

/// The directory server.
pub struct ServerEngine {
    index: ServerIndex,
    config: EngineConfig,
    stats: EngineStats,
}

impl Default for ServerEngine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl ServerEngine {
    /// Builds a server with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        ServerEngine {
            index: ServerIndex::default(),
            config,
            stats: EngineStats::default(),
        }
    }

    /// Read access to the index (analyses and tests).
    pub fn index(&self) -> &ServerIndex {
        &self.index
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Handles one client query, returning the answers the server sends
    /// back (zero, one, or several messages).
    pub fn handle(&mut self, client: ClientId, msg: &Message) -> Vec<Message> {
        self.stats.queries += 1;
        self.index.touch_client(client);
        let answers = match msg {
            Message::StatusRequest { challenge } => vec![Message::StatusResponse {
                challenge: *challenge,
                users: self.index.client_count(),
                files: self.index.file_count(),
            }],
            Message::ServerDescRequest => vec![Message::ServerDescResponse {
                name: self.config.name.clone(),
                description: self.config.description.clone(),
            }],
            Message::GetServerList => vec![Message::ServerList {
                servers: self.config.peer_servers.clone(),
            }],
            Message::SearchRequest { expr } => {
                self.stats.searches += 1;
                let results = self.search(expr);
                vec![Message::SearchResponse { results }]
            }
            Message::GetSources { file_ids } => {
                // One FoundSources answer per asked fileID, as the real
                // server does for UDP source queries.
                self.stats.source_asks += file_ids.len() as u64;
                file_ids
                    .iter()
                    .map(|id| Message::FoundSources {
                        file_id: *id,
                        sources: self.index.sources_for(id, self.config.max_sources),
                    })
                    .collect()
            }
            Message::OfferFiles { files } => {
                self.stats.published_files += files.len() as u64;
                for f in files {
                    let name = f.tags.filename().unwrap_or("");
                    let size = f.tags.filesize().unwrap_or(0);
                    let ftype = f.tags.filetype().unwrap_or("");
                    // The announcing client is the source, with its own
                    // id/port (entries carry them redundantly).
                    self.index
                        .publish(client, f.port, f.file_id, name, size, ftype);
                }
                Vec::new()
            }
            // Answers arriving at the server (should not happen in a
            // well-formed dialog) are ignored.
            _ => Vec::new(),
        };
        self.stats.answers += answers.len() as u64;
        answers
    }

    /// Evaluates a search expression against the index: first the
    /// keyword structure produces a bounded candidate set (pure
    /// constraint queries are refused, as on real servers, since they
    /// would need a full index scan), then each candidate is checked
    /// against the complete expression semantics.
    fn search(&self, expr: &SearchExpr) -> Vec<FileEntry> {
        let Some(candidates) = self.eval_candidates(expr) else {
            return Vec::new();
        };
        let mut slots: Vec<u32> = candidates
            .into_iter()
            .filter(|&slot| matches_positive(self.index.file(slot), expr))
            .collect();
        slots.sort_unstable();
        slots.truncate(self.config.max_search_results);
        slots
            .into_iter()
            .map(|slot| {
                let f = self.index.file(slot);
                // The answer lists one provider per result (real answers
                // carry the source's id/port in the entry header) plus
                // the metadata tags including the source count.
                let (client_id, port) = f
                    .sources
                    .iter()
                    .min_by_key(|(c, _)| **c)
                    .map(|(c, p)| (*c, *p))
                    .unwrap_or((ClientId(0), 0));
                FileEntry {
                    file_id: f.id,
                    client_id,
                    port,
                    tags: TagList(vec![
                        Tag::str(special::FILENAME, f.name.clone()),
                        Tag::u32(special::FILESIZE, f.size),
                        Tag::str(special::FILETYPE, f.filetype.clone()),
                        Tag::u32(special::SOURCES, f.sources.len() as u32),
                    ]),
                }
            })
            .collect()
    }

    /// Keyword-driven candidate sets. `None` means "unconstrained by
    /// keywords" (a pure metadata node): usable only when ANDed with a
    /// keyword side; at the top level it is refused.
    fn eval_candidates(&self, expr: &SearchExpr) -> Option<HashSet<u32>> {
        match expr {
            SearchExpr::Keyword(kw) => {
                // Multi-word keywords (rare) must all match.
                let mut toks = tokenize(kw).into_iter();
                let first = toks.next()?;
                let mut set: HashSet<u32> = self
                    .index
                    .files_with_keyword(&first)
                    .iter()
                    .copied()
                    .collect();
                for t in toks {
                    let other: HashSet<u32> =
                        self.index.files_with_keyword(&t).iter().copied().collect();
                    set.retain(|s| other.contains(s));
                }
                Some(set)
            }
            SearchExpr::Bool { op, left, right } => {
                let l = self.eval_candidates(left);
                let r = self.eval_candidates(right);
                match op {
                    BoolOp::And => match (l, r) {
                        (Some(a), Some(b)) => Some(a.intersection(&b).copied().collect()),
                        (Some(a), None) | (None, Some(a)) => Some(a),
                        (None, None) => None,
                    },
                    // An OR with an unconstrained side is itself
                    // unconstrained.
                    BoolOp::Or => match (l, r) {
                        (Some(a), Some(b)) => Some(a.union(&b).copied().collect()),
                        _ => None,
                    },
                    // AND-NOT is bounded by its left side only.
                    BoolOp::AndNot => l,
                }
            }
            SearchExpr::MetaStr { .. } | SearchExpr::MetaNum { .. } => None,
        }
    }
}

/// Does `f` positively match `expr` (used for AND-NOT right side)?
fn matches_positive(f: &crate::index::IndexedFile, expr: &SearchExpr) -> bool {
    match expr {
        SearchExpr::Keyword(kw) => {
            let toks = tokenize(&f.name);
            tokenize(kw).iter().all(|t| toks.contains(t))
        }
        SearchExpr::MetaStr { name, value } => match name {
            TagName::Special(special::FILETYPE) => f.filetype.eq_ignore_ascii_case(value),
            _ => false,
        },
        SearchExpr::MetaNum { name, cmp, value } => match name {
            TagName::Special(special::FILESIZE) => match cmp {
                NumCmp::Min => f.size >= *value,
                NumCmp::Max => f.size <= *value,
            },
            _ => false,
        },
        SearchExpr::Bool { op, left, right } => match op {
            BoolOp::And => matches_positive(f, left) && matches_positive(f, right),
            BoolOp::Or => matches_positive(f, left) || matches_positive(f, right),
            BoolOp::AndNot => matches_positive(f, left) && !matches_positive(f, right),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etw_edonkey::ids::FileId;

    fn engine_with_files() -> ServerEngine {
        let mut e = ServerEngine::default();
        let publish = |e: &mut ServerEngine, c: u32, n: u8, name: &str, size: u32, t: &str| {
            let entry = FileEntry {
                file_id: FileId([n; 16]),
                client_id: ClientId(c),
                port: 4662,
                tags: TagList(vec![
                    Tag::str(special::FILENAME, name),
                    Tag::u32(special::FILESIZE, size),
                    Tag::str(special::FILETYPE, t),
                ]),
            };
            e.handle(ClientId(c), &Message::OfferFiles { files: vec![entry] });
        };
        publish(&mut e, 1, 1, "blue moon live.mp3", 4_000_000, "Audio");
        publish(&mut e, 2, 1, "blue moon live.mp3", 4_000_000, "Audio");
        publish(&mut e, 3, 2, "blue sky.avi", 700_000_000, "Video");
        publish(&mut e, 4, 3, "red moon.mp3", 3_000_000, "Audio");
        e
    }

    fn search(e: &mut ServerEngine, expr: SearchExpr) -> Vec<FileEntry> {
        match e
            .handle(ClientId(99), &Message::SearchRequest { expr })
            .pop()
        {
            Some(Message::SearchResponse { results }) => results,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn status_reports_counts() {
        let mut e = engine_with_files();
        let answers = e.handle(ClientId(9), &Message::StatusRequest { challenge: 5 });
        match &answers[..] {
            [Message::StatusResponse {
                challenge,
                users,
                files,
            }] => {
                assert_eq!(*challenge, 5);
                assert_eq!(*files, 3);
                assert!(*users >= 4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn keyword_search_finds_files() {
        let mut e = engine_with_files();
        let r = search(&mut e, SearchExpr::keyword("blue"));
        assert_eq!(r.len(), 2);
        let r = search(&mut e, SearchExpr::keyword("moon"));
        assert_eq!(r.len(), 2);
        let r = search(&mut e, SearchExpr::keyword("nothing"));
        assert!(r.is_empty());
    }

    #[test]
    fn and_or_not_semantics() {
        let mut e = engine_with_files();
        let r = search(
            &mut e,
            SearchExpr::and(SearchExpr::keyword("blue"), SearchExpr::keyword("moon")),
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].file_id, FileId([1; 16]));

        let r = search(
            &mut e,
            SearchExpr::or(SearchExpr::keyword("sky"), SearchExpr::keyword("red")),
        );
        assert_eq!(r.len(), 2);

        let r = search(
            &mut e,
            SearchExpr::Bool {
                op: BoolOp::AndNot,
                left: Box::new(SearchExpr::keyword("moon")),
                right: Box::new(SearchExpr::keyword("red")),
            },
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].file_id, FileId([1; 16]));
    }

    #[test]
    fn size_constraint_filters() {
        let mut e = engine_with_files();
        let r = search(
            &mut e,
            SearchExpr::and(
                SearchExpr::keyword("blue"),
                SearchExpr::MetaNum {
                    name: TagName::Special(special::FILESIZE),
                    cmp: NumCmp::Min,
                    value: 100_000_000,
                },
            ),
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].file_id, FileId([2; 16]));
    }

    #[test]
    fn filetype_constraint_filters() {
        let mut e = engine_with_files();
        let r = search(
            &mut e,
            SearchExpr::and(
                SearchExpr::keyword("blue"),
                SearchExpr::MetaStr {
                    name: TagName::Special(special::FILETYPE),
                    value: "Audio".into(),
                },
            ),
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].file_id, FileId([1; 16]));
    }

    #[test]
    fn results_carry_source_counts() {
        use etw_edonkey::tags::TagValue;
        let mut e = engine_with_files();
        let r = search(&mut e, SearchExpr::keyword("live"));
        assert_eq!(r.len(), 1);
        match r[0].tags.get(special::SOURCES) {
            Some(TagValue::U32(n)) => assert_eq!(*n, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn get_sources_answers_per_file() {
        let mut e = engine_with_files();
        let answers = e.handle(
            ClientId(9),
            &Message::GetSources {
                file_ids: vec![FileId([1; 16]), FileId([0xEE; 16])],
            },
        );
        assert_eq!(answers.len(), 2);
        match &answers[0] {
            Message::FoundSources { sources, .. } => assert_eq!(sources.len(), 2),
            other => panic!("{other:?}"),
        }
        match &answers[1] {
            Message::FoundSources { sources, .. } => assert!(sources.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn management_answers() {
        let mut e = ServerEngine::default();
        assert!(matches!(
            e.handle(ClientId(1), &Message::ServerDescRequest)[..],
            [Message::ServerDescResponse { .. }]
        ));
        match &e.handle(ClientId(1), &Message::GetServerList)[..] {
            [Message::ServerList { servers }] => assert_eq!(servers.len(), 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn result_cap_respected() {
        let mut e = ServerEngine::new(EngineConfig {
            max_search_results: 3,
            ..EngineConfig::default()
        });
        for i in 0..10u8 {
            let entry = FileEntry {
                file_id: FileId([i; 16]),
                client_id: ClientId(1),
                port: 4662,
                tags: TagList(vec![
                    Tag::str(special::FILENAME, format!("common name {i}.mp3")),
                    Tag::u32(special::FILESIZE, 1000),
                    Tag::str(special::FILETYPE, "Audio"),
                ]),
            };
            e.handle(ClientId(1), &Message::OfferFiles { files: vec![entry] });
        }
        let r = match e
            .handle(
                ClientId(2),
                &Message::SearchRequest {
                    expr: SearchExpr::keyword("common"),
                },
            )
            .pop()
        {
            Some(Message::SearchResponse { results }) => results,
            other => panic!("{other:?}"),
        };
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn stats_accumulate() {
        let mut e = engine_with_files();
        let before = e.stats();
        assert_eq!(before.published_files, 4);
        e.handle(ClientId(9), &Message::StatusRequest { challenge: 0 });
        e.handle(
            ClientId(9),
            &Message::GetSources {
                file_ids: vec![FileId([1; 16])],
            },
        );
        let s = e.stats();
        assert_eq!(s.queries, before.queries + 2);
        assert_eq!(s.source_asks, 1);
    }

    #[test]
    fn answers_directed_at_server_are_ignored() {
        let mut e = ServerEngine::default();
        let out = e.handle(
            ClientId(1),
            &Message::StatusResponse {
                challenge: 0,
                users: 0,
                files: 0,
            },
        );
        assert!(out.is_empty());
    }
}
