//! The directory server's index (paper §2.1).
//!
//! > "These servers index files and users, and their main role is to
//! > answer to searches for files (based on metadata like filename, size
//! > or filetype for instance), and searches for providers (called
//! > sources) of given files."
//!
//! [`ServerIndex`] maintains exactly those two tables: a file table
//! (fileID → metadata + known sources) and an inverted keyword index over
//! file names for metadata search.

use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::Source;
use std::collections::{HashMap, HashSet};

/// One indexed file.
#[derive(Clone, Debug)]
pub struct IndexedFile {
    /// File identifier.
    pub id: FileId,
    /// Name from the first announcement (servers keep one canonical
    /// name; later announces with other names are common but ignored
    /// here).
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Filetype tag value.
    pub filetype: String,
    /// Known providers (clientID → announced port).
    pub sources: HashMap<ClientId, u16>,
}

/// The server's in-memory index.
pub struct ServerIndex {
    files: Vec<IndexedFile>,
    by_id: HashMap<FileId, u32>,
    /// Inverted index: lowercase keyword → file slots.
    keywords: HashMap<String, Vec<u32>>,
    /// Clients that have announced or queried (the "users" the status
    /// answer reports).
    clients_seen: HashSet<ClientId>,
    /// Cap on sources remembered per file (real servers bound this).
    max_sources_per_file: usize,
}

impl Default for ServerIndex {
    fn default() -> Self {
        Self::new(500)
    }
}

impl ServerIndex {
    /// Creates an index remembering at most `max_sources_per_file`
    /// providers per file.
    pub fn new(max_sources_per_file: usize) -> Self {
        ServerIndex {
            files: Vec::new(),
            by_id: HashMap::new(),
            keywords: HashMap::new(),
            clients_seen: HashSet::new(),
            max_sources_per_file,
        }
    }

    /// Number of distinct files indexed.
    pub fn file_count(&self) -> u32 {
        self.files.len() as u32
    }

    /// Number of distinct clients seen.
    pub fn client_count(&self) -> u32 {
        self.clients_seen.len() as u32
    }

    /// Records that a client interacted with the server.
    pub fn touch_client(&mut self, client: ClientId) {
        self.clients_seen.insert(client);
    }

    /// Indexes one announced file from `client`.
    pub fn publish(
        &mut self,
        client: ClientId,
        port: u16,
        id: FileId,
        name: &str,
        size: u32,
        filetype: &str,
    ) {
        self.touch_client(client);
        let slot = match self.by_id.get(&id) {
            Some(&slot) => slot,
            None => {
                let slot = self.files.len() as u32;
                self.files.push(IndexedFile {
                    id,
                    name: name.to_owned(),
                    size,
                    filetype: filetype.to_owned(),
                    sources: HashMap::new(),
                });
                self.by_id.insert(id, slot);
                for kw in tokenize(name) {
                    self.keywords.entry(kw).or_default().push(slot);
                }
                slot
            }
        };
        let file = &mut self.files[slot as usize];
        if file.sources.len() < self.max_sources_per_file || file.sources.contains_key(&client) {
            file.sources.insert(client, port);
        }
    }

    /// Files whose name contains keyword `kw` (exact token match,
    /// lowercase).
    pub fn files_with_keyword(&self, kw: &str) -> &[u32] {
        self.keywords
            .get(&kw.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// File by slot.
    pub fn file(&self, slot: u32) -> &IndexedFile {
        &self.files[slot as usize]
    }

    /// File slot by ID.
    pub fn slot_of(&self, id: &FileId) -> Option<u32> {
        self.by_id.get(id).copied()
    }

    /// Up to `max` sources for `id` (arbitrary but deterministic order:
    /// sorted by clientID, as stable output makes answers reproducible).
    pub fn sources_for(&self, id: &FileId, max: usize) -> Vec<Source> {
        let Some(&slot) = self.by_id.get(id) else {
            return Vec::new();
        };
        let file = &self.files[slot as usize];
        let mut srcs: Vec<Source> = file
            .sources
            .iter()
            .map(|(&client_id, &port)| Source { client_id, port })
            .collect();
        srcs.sort_by_key(|s| s.client_id);
        srcs.truncate(max);
        srcs
    }
}

/// Splits a filename into lowercase keyword tokens (alphanumeric runs),
/// the same tokenisation clients use when building search queries.
pub fn tokenize(name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in name.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u8) -> FileId {
        FileId([n; 16])
    }

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(
            tokenize("Live Concert (2004) vol2.avi"),
            vec!["live", "concert", "2004", "vol2", "avi"]
        );
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("---"), Vec::<String>::new());
    }

    #[test]
    fn publish_indexes_file_and_keywords() {
        let mut idx = ServerIndex::default();
        idx.publish(
            ClientId(1),
            4662,
            id(1),
            "blue album.mp3",
            5_000_000,
            "Audio",
        );
        assert_eq!(idx.file_count(), 1);
        assert_eq!(idx.client_count(), 1);
        assert_eq!(idx.files_with_keyword("blue").len(), 1);
        assert_eq!(idx.files_with_keyword("album").len(), 1);
        assert_eq!(idx.files_with_keyword("ALBUM").len(), 1);
        assert!(idx.files_with_keyword("missing").is_empty());
    }

    #[test]
    fn multiple_providers_accumulate() {
        let mut idx = ServerIndex::default();
        for c in 1..=5u32 {
            idx.publish(ClientId(c), 4662, id(9), "x y.mp3", 1000, "Audio");
        }
        let sources = idx.sources_for(&id(9), 100);
        assert_eq!(sources.len(), 5);
        assert_eq!(idx.file_count(), 1);
        assert_eq!(idx.client_count(), 5);
        // Sorted by clientID.
        for w in sources.windows(2) {
            assert!(w[0].client_id < w[1].client_id);
        }
    }

    #[test]
    fn duplicate_announce_idempotent() {
        let mut idx = ServerIndex::default();
        idx.publish(ClientId(1), 4662, id(2), "a b.mp3", 10, "Audio");
        idx.publish(ClientId(1), 4662, id(2), "a b.mp3", 10, "Audio");
        assert_eq!(idx.sources_for(&id(2), 10).len(), 1);
        // Keyword postings are not duplicated either.
        assert_eq!(idx.files_with_keyword("a").len(), 1);
    }

    #[test]
    fn sources_capped() {
        let mut idx = ServerIndex::new(3);
        for c in 1..=10u32 {
            idx.publish(ClientId(c), 4662, id(7), "pop song.mp3", 10, "Audio");
        }
        assert_eq!(idx.sources_for(&id(7), 100).len(), 3);
        // Existing provider can refresh its port though.
        idx.publish(ClientId(1), 5000, id(7), "pop song.mp3", 10, "Audio");
        let srcs = idx.sources_for(&id(7), 100);
        assert!(srcs
            .iter()
            .any(|s| s.client_id == ClientId(1) && s.port == 5000));
    }

    #[test]
    fn sources_for_unknown_file_empty() {
        let idx = ServerIndex::default();
        assert!(idx.sources_for(&id(1), 10).is_empty());
    }

    #[test]
    fn max_answer_truncates() {
        let mut idx = ServerIndex::default();
        for c in 1..=50u32 {
            idx.publish(ClientId(c), 4662, id(3), "f.mp3", 1, "Audio");
        }
        assert_eq!(idx.sources_for(&id(3), 7).len(), 7);
    }

    #[test]
    fn canonical_name_is_first_announced() {
        let mut idx = ServerIndex::default();
        idx.publish(ClientId(1), 1, id(4), "first name.mp3", 1, "Audio");
        idx.publish(ClientId(2), 1, id(4), "other name.mp3", 1, "Audio");
        let slot = idx.slot_of(&id(4)).unwrap();
        assert_eq!(idx.file(slot).name, "first name.mp3");
        // Keywords of the second name are not indexed.
        assert!(idx.files_with_keyword("other").is_empty());
    }
}
