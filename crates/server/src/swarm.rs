//! The client-swarm harness: thousands of concurrent eDonkey client
//! sessions over loopback, driven against the real serving socket.
//!
//! The paper measured a *live* server under *real* client load; the
//! closest a reproduction gets on one host is a swarm of UDP sockets —
//! one per simulated client — speaking the genuine wire protocol to
//! [`crate::net::ServerNet`] over loopback, with the capture tap
//! sniffing the server's own traffic. Nothing here is simulated: the
//! datagrams cross the kernel, the backpressure is real, and the
//! capture loss is measured rather than injected.
//!
//! Design points that make the soak's *exact* conservation gate hold:
//!
//! * **Stop-and-wait sessions.** Each session has at most one request
//!   outstanding; answers are awaited with a deadline and bounded
//!   retries, so client-side accounting (sent / answered / timed out)
//!   tiles exactly.
//! * **A global in-flight token cap.** The kernel silently drops
//!   datagrams when the server's receive buffer overflows, which would
//!   break `client sent == server received + impairment drops`. The
//!   swarm therefore bounds the bytes in flight: a request charges
//!   `1 + len/1500` tokens, released when its transaction completes.
//!   The cap is sized so worst-case in-flight truesize stays under the
//!   unclamped minimum `SO_RCVBUF`.
//! * **Sender-boundary impairment.** The to-server
//!   [`SocketImpairment`] runs *before* `sendto`, so every ledger
//!   increment corresponds to a datagram that verifiably did or did not
//!   enter loopback.
//! * **Noise sessions.** A configurable fraction of sessions send
//!   garbage — random bytes, marked-but-corrupt bodies, truncations,
//!   oversized frames — exercising the server's hostile-ingress ledgers
//!   under load, exactly as the paper's capture machine saw arbitrary
//!   traffic on the server port.
//! * **Sentinel sessions.** The first `special` sessions carry the
//!   anonymisation canary's client/file identifiers in real traffic
//!   (OfferFiles / GetSources), so the captured dataset can be scanned
//!   for sentinel leaks downstream.

use crate::engine::ServerEngine;
use crate::net::{NetConfig, PacketTap, ServerNet};
use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::{opcodes, FileEntry, Message, PROTO_EDONKEY};
use etw_edonkey::search::SearchExpr;
use etw_edonkey::tags::{special, Tag, TagList};
use etw_faults::sock::{SockDatagram, SocketImpairment};
use etw_faults::{FaultSpec, LinkDirection};
use etw_telemetry::{Counter, Gauge, Registry};
use etw_trace::{wall_now_ns, StageId, StageProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Peer-address → client-identity map, registered by the swarm before
/// any traffic flows. The live-capture consumer uses it to label frames
/// the way the paper's capture point knew its clients.
pub type Roster = Arc<parking_lot::Mutex<HashMap<SocketAddr, ClientId>>>;

/// Swarm configuration.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Concurrent client sessions (one UDP socket each).
    pub sessions: usize,
    /// Seed for all swarm randomness (scripts, think times, noise).
    pub seed: u64,
    /// How long new requests keep being initiated, in µs.
    pub duration_us: u64,
    /// Global in-flight token cap (one token ≈ 1500 wire bytes).
    pub inflight_cap: usize,
    /// Sessions-per-mille that send hostile garbage instead of protocol.
    pub noise_per_mille: u32,
    /// Answer deadline per request, in µs.
    pub timeout_us: u64,
    /// Retries after a timeout before giving up.
    pub retries: u32,
    /// Minimum think time between a session's requests, in µs.
    pub think_min_us: u64,
    /// Maximum think time between a session's requests, in µs.
    pub think_max_us: u64,
    /// Burst window start, relative to swarm start, in µs.
    pub burst_start_us: u64,
    /// Burst window length, in µs (0 = no burst). Inside the window
    /// think times shrink by `burst_think_div`.
    pub burst_len_us: u64,
    /// Think-time divisor during the burst window.
    pub burst_think_div: u64,
    /// Sentinel sessions: `(client id, file id)` pairs carried verbatim
    /// in real traffic by the first `special.len()` sessions.
    pub special: Vec<(ClientId, FileId)>,
    /// To-server impairment applied at the sender boundary.
    pub fault: Option<FaultSpec>,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            sessions: 256,
            seed: 0xED_0017,
            duration_us: 2_000_000,
            inflight_cap: 96,
            noise_per_mille: 60,
            timeout_us: 250_000,
            retries: 2,
            think_min_us: 2_000,
            think_max_us: 40_000,
            burst_start_us: 500_000,
            burst_len_us: 600_000,
            burst_think_div: 8,
            special: Vec::new(),
            fault: None,
        }
    }
}

/// What one swarm run did, from the clients' point of view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwarmReport {
    /// Sessions driven.
    pub sessions: usize,
    /// Request datagrams offered to the wire path (including retries).
    pub sent: u64,
    /// Answer datagrams received (including late ones).
    pub answers: u64,
    /// Answers that arrived after their transaction was closed.
    pub late: u64,
    /// Deadline expiries with the answer still missing.
    pub timeouts: u64,
    /// Retransmissions issued.
    pub retries: u64,
    /// Transactions abandoned after the retry budget.
    pub gave_up: u64,
    /// Hostile datagrams sent by noise sessions.
    pub noise: u64,
    /// `sendto` failures on client sockets.
    pub send_errors: u64,
    /// Completed transactions.
    pub requests: u64,
    /// Wall time the run phase took, in µs.
    pub duration_us: u64,
}

/// The `swarm.*` ledger handles.
struct SwarmLedgers {
    sent: Counter,
    answers: Counter,
    late: Counter,
    timeouts: Counter,
    retries: Counter,
    gave_up: Counter,
    noise: Counter,
    send_errors: Counter,
    requests: Counter,
    inflight: Gauge,
    inflight_hwm: Gauge,
}

impl SwarmLedgers {
    fn new(registry: &Registry) -> SwarmLedgers {
        SwarmLedgers {
            sent: registry.counter("swarm.sent_total"),
            answers: registry.counter("swarm.answers_total"),
            late: registry.counter("swarm.late_answers_total"),
            timeouts: registry.counter("swarm.timeouts_total"),
            retries: registry.counter("swarm.retries_total"),
            gave_up: registry.counter("swarm.gave_up_total"),
            noise: registry.counter("swarm.noise_sent_total"),
            send_errors: registry.counter("swarm.send_errors_total"),
            requests: registry.counter("swarm.requests_total"),
            inflight: registry.gauge("swarm.inflight_tokens"),
            inflight_hwm: registry.gauge("swarm.inflight_tokens_hwm"),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SessState {
    Idle,
    Waiting,
}

/// One simulated client: its socket, identity, script state.
struct Session {
    socket: UdpSocket,
    cid: ClientId,
    rng: StdRng,
    noise: bool,
    special_file: Option<FileId>,
    published: bool,
    state: SessState,
    /// Encoded payload of the current request, kept for retransmission.
    pending: Vec<u8>,
    expect: u32,
    got: u32,
    deadline_us: u64,
    retries_left: u32,
    tokens_held: usize,
    next_at_us: u64,
}

/// The swarm driver: builds the sessions, runs the load phase, and
/// drains stragglers after the server has quiesced.
pub struct Swarm {
    cfg: SwarmConfig,
    server: SocketAddr,
    sessions: Vec<Session>,
    file_pool: Vec<FileId>,
    led: SwarmLedgers,
    profile: StageProfile,
    imp: Option<SocketImpairment<usize>>,
    emit: Vec<SockDatagram<usize>>,
    recv_buf: Box<[u8]>,
    tokens_in_use: usize,
    burst_now: bool,
    last_sweep_us: u64,
    run_us: u64,
}

/// Tokens a payload charges against the in-flight cap: one per started
/// 1500-byte MTU's worth, so oversized noise cannot overrun the
/// server's receive buffer even at the cap.
fn tokens_for(len: usize) -> usize {
    1 + len / 1500
}

/// Words shared by filenames and search keywords, so swarm searches
/// actually hit the index the swarm populated.
const VOCAB: [&str; 12] = [
    "sunrise", "acoustic", "live", "1997", "ocean", "midnight", "jazz", "reactor", "tape", "echo",
    "delta", "harbor",
];

impl Swarm {
    /// Binds one non-blocking socket per session, registers every
    /// session in `roster`, and seeds the deterministic scripts.
    pub fn new(
        cfg: SwarmConfig,
        server: SocketAddr,
        roster: &Roster,
        registry: &Registry,
    ) -> io::Result<Swarm> {
        let mut pool_rng = StdRng::seed_from_u64(cfg.seed ^ 0x706f_6f6c); // "pool"
        let n_files = 48;
        let mut file_pool = Vec::with_capacity(n_files + cfg.special.len());
        for _ in 0..n_files {
            let mut id = [0u8; 16];
            pool_rng.fill(&mut id[..]);
            file_pool.push(FileId(id));
        }
        for (_, fid) in &cfg.special {
            file_pool.push(*fid);
        }

        let imp = cfg
            .fault
            .clone()
            .map(|spec| SocketImpairment::new(spec, registry));
        let mut sessions = Vec::with_capacity(cfg.sessions);
        {
            let mut map = roster.lock();
            for i in 0..cfg.sessions {
                let socket = UdpSocket::bind("127.0.0.1:0")?;
                socket.set_nonblocking(true)?;
                let special_file = cfg.special.get(i).map(|(_, f)| *f);
                let cid = match cfg.special.get(i) {
                    Some((c, _)) => *c,
                    // Low-ID space (< 2^24), clear of the sentinels.
                    None => ClientId(0x00A0_0000 + i as u32),
                };
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x5e55 + i as u64 * 0x9E37));
                let noise =
                    special_file.is_none() && rng.gen_range(0..1000u32) < cfg.noise_per_mille;
                map.insert(socket.local_addr()?, cid);
                sessions.push(Session {
                    socket,
                    cid,
                    rng,
                    noise,
                    special_file,
                    published: false,
                    state: SessState::Idle,
                    pending: Vec::with_capacity(256),
                    expect: 0,
                    got: 0,
                    deadline_us: 0,
                    retries_left: 0,
                    tokens_held: 0,
                    next_at_us: 0,
                });
            }
        }
        Ok(Swarm {
            cfg,
            server,
            sessions,
            file_pool,
            led: SwarmLedgers::new(registry),
            profile: StageProfile::new(registry, StageId::Swarm),
            imp,
            emit: Vec::new(),
            recv_buf: vec![0u8; 65536].into_boxed_slice(),
            tokens_in_use: 0,
            burst_now: false,
            last_sweep_us: 0,
            run_us: 0,
        })
    }

    /// Runs the load phase (`duration_us` of request initiation), then
    /// quiesces: waits for every outstanding transaction to resolve and
    /// flushes impairment-held datagrams so the to-server ledger closes.
    pub fn run(&mut self) {
        let start_us = wall_now_ns() / 1_000;
        let t_end = start_us + self.cfg.duration_us;
        // Stagger session starts across the first think window.
        for s in &mut self.sessions {
            s.next_at_us = start_us + s.rng.gen_range(0..self.cfg.think_max_us.max(1));
        }
        loop {
            let now_us = wall_now_ns() / 1_000;
            let mut timer = self.profile.begin();
            self.burst_now = self.cfg.burst_len_us > 0
                && now_us >= start_us + self.cfg.burst_start_us
                && now_us < start_us + self.cfg.burst_start_us + self.cfg.burst_len_us;
            let mut events = self.pump_delayed(now_us);
            events += self.poll_waiting(now_us);
            if now_us < t_end {
                events += self.initiate(now_us);
            }
            if events > 0 {
                self.profile.note_service(&mut timer, events);
            }
            self.maybe_sweep(now_us);
            if now_us >= t_end && self.all_idle() {
                break;
            }
            if events == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        // Flush datagrams the delay fault is still holding, so
        // `faults.sock.to_server` conserves exactly.
        if let Some(imp) = self.imp.as_mut() {
            imp.drain_due(u64::MAX, &mut self.emit);
        }
        self.send_emitted();
        self.led.inflight.set(self.tokens_in_use as i64);
        self.run_us = (wall_now_ns() / 1_000).saturating_sub(start_us);
    }

    /// One last sweep of every client socket, to be called after the
    /// server has fully quiesced: answers that were still crossing
    /// loopback when [`Swarm::run`] returned are counted here, closing
    /// the `answers sent == answers received` identity.
    pub fn final_drain(&mut self) {
        let now_us = wall_now_ns() / 1_000;
        let n = self.sessions.len();
        for idx in 0..n {
            self.drain_socket(idx, false, now_us);
        }
    }

    /// The run's client-side accounting.
    pub fn report(&self) -> SwarmReport {
        SwarmReport {
            sessions: self.sessions.len(),
            sent: self.led.sent.get(),
            answers: self.led.answers.get(),
            late: self.led.late.get(),
            timeouts: self.led.timeouts.get(),
            retries: self.led.retries.get(),
            gave_up: self.led.gave_up.get(),
            noise: self.led.noise.get(),
            send_errors: self.led.send_errors.get(),
            requests: self.led.requests.get(),
            duration_us: self.run_us,
        }
    }

    fn all_idle(&self) -> bool {
        self.sessions.iter().all(|s| s.state == SessState::Idle)
            && self.imp.as_ref().is_none_or(|i| i.held_len() == 0)
    }

    /// Sends everything the impairment layer emitted. Each emitted
    /// datagram is routed by its session index (`ctx`).
    fn send_emitted(&mut self) -> u64 {
        let Swarm {
            sessions,
            emit,
            server,
            led,
            ..
        } = self;
        let mut sent = 0u64;
        for d in emit.drain(..) {
            sent += 1;
            if sessions[d.ctx].socket.send_to(&d.bytes, *server).is_err() {
                led.send_errors.inc();
            }
        }
        sent
    }

    /// Releases impairment-delayed datagrams whose deadline passed.
    fn pump_delayed(&mut self, now_us: u64) -> u64 {
        let due = matches!(
            self.imp.as_ref().and_then(|i| i.next_due_us()),
            Some(d) if d <= now_us
        );
        if !due {
            return 0;
        }
        if let Some(imp) = self.imp.as_mut() {
            imp.drain_due(now_us, &mut self.emit);
        }
        self.send_emitted()
    }

    /// Polls every waiting session: receive answers, enforce deadlines,
    /// retransmit or give up. Returns the number of events handled.
    fn poll_waiting(&mut self, now_us: u64) -> u64 {
        let mut events = 0u64;
        let n = self.sessions.len();
        for idx in 0..n {
            if self.sessions[idx].state != SessState::Waiting {
                continue;
            }
            events += self.drain_socket(idx, true, now_us);
            let s = &self.sessions[idx];
            if s.state != SessState::Waiting || now_us < s.deadline_us {
                continue;
            }
            // Deadline expired.
            if s.expect == 0 {
                // Fire-and-forget (announcements, noise): the deadline
                // is only a token-release timer, not a timeout.
                self.complete(idx, now_us);
                events += 1;
                continue;
            }
            self.led.timeouts.inc();
            if self.sessions[idx].retries_left > 0 {
                self.sessions[idx].retries_left -= 1;
                self.led.retries.inc();
                self.resend(idx, now_us);
                events += 1;
            } else {
                self.led.gave_up.inc();
                self.complete(idx, now_us);
                events += 1;
            }
        }
        events
    }

    /// Drains one session's socket. `credit` counts arrivals toward the
    /// current transaction; otherwise they are late answers.
    fn drain_socket(&mut self, idx: usize, credit: bool, now_us: u64) -> u64 {
        let mut events = 0u64;
        loop {
            let res = {
                let Swarm {
                    sessions, recv_buf, ..
                } = self;
                sessions[idx].socket.recv_from(recv_buf)
            };
            match res {
                Ok((_n, _from)) => {
                    events += 1;
                    self.led.answers.inc();
                    let s = &mut self.sessions[idx];
                    if credit && s.state == SessState::Waiting {
                        s.got += 1;
                        if s.got >= s.expect {
                            self.complete(idx, now_us);
                        }
                    } else {
                        self.led.late.inc();
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        events
    }

    /// Closes the current transaction, releases its tokens, schedules
    /// the next think (shortened during the burst window).
    fn complete(&mut self, idx: usize, now_us: u64) {
        let div = if self.burst_now {
            self.cfg.burst_think_div.max(1)
        } else {
            1
        };
        let s = &mut self.sessions[idx];
        let lo = self.cfg.think_min_us / div;
        let hi = (self.cfg.think_max_us / div).max(lo + 1);
        let think = s.rng.gen_range(lo..hi);
        s.state = SessState::Idle;
        s.next_at_us = now_us + think;
        self.tokens_in_use = self.tokens_in_use.saturating_sub(s.tokens_held);
        s.tokens_held = 0;
        self.led.requests.inc();
    }

    /// Starts new transactions on idle sessions whose think time has
    /// elapsed, respecting the global token cap.
    fn initiate(&mut self, now_us: u64) -> u64 {
        let mut events = 0u64;
        let n = self.sessions.len();
        for idx in 0..n {
            let s = &self.sessions[idx];
            if s.state != SessState::Idle || now_us < s.next_at_us {
                continue;
            }
            // Sweep up stale answers before a fresh request, so they
            // are not miscredited to it.
            events += self.drain_socket(idx, false, now_us);
            if !self.start_transaction(idx, now_us) {
                // Token cap reached: try again next tick.
                break;
            }
            events += 1;
        }
        events
    }

    /// Builds and sends one request for session `idx`. Returns false if
    /// the token cap refused it.
    fn start_transaction(&mut self, idx: usize, now_us: u64) -> bool {
        let (payload_len, is_noise, expect) = {
            let pool = &self.file_pool;
            let s = &mut self.sessions[idx];
            build_request(s, pool);
            (s.pending.len(), s.noise, s.expect)
        };
        let need = tokens_for(payload_len);
        if self.tokens_in_use + need > self.cfg.inflight_cap {
            return false;
        }
        self.tokens_in_use += need;
        if self.tokens_in_use as i64 > self.led.inflight_hwm.get() {
            self.led.inflight_hwm.set(self.tokens_in_use as i64);
        }
        let (retries, hold_us) = if expect == 0 {
            // Token-release timer only: nothing to wait for.
            (0, 20_000)
        } else {
            (self.cfg.retries, self.cfg.timeout_us)
        };
        {
            let s = &mut self.sessions[idx];
            s.tokens_held = need;
            s.state = SessState::Waiting;
            s.got = 0;
            s.retries_left = retries;
            s.deadline_us = now_us + hold_us;
        }
        if is_noise {
            self.led.noise.inc();
        }
        self.offer(idx, now_us);
        true
    }

    /// Puts session `idx`'s pending payload on the wire (through
    /// impairment when installed). Counted as one offered datagram.
    fn offer(&mut self, idx: usize, now_us: u64) {
        self.led.sent.inc();
        let Swarm {
            sessions,
            emit,
            imp,
            server,
            led,
            ..
        } = self;
        match imp.as_mut() {
            Some(imp) => {
                imp.admit(
                    idx,
                    LinkDirection::ToServer,
                    &sessions[idx].pending,
                    now_us,
                    emit,
                );
                for d in emit.drain(..) {
                    if sessions[d.ctx].socket.send_to(&d.bytes, *server).is_err() {
                        led.send_errors.inc();
                    }
                }
            }
            None => {
                let s = &sessions[idx];
                if s.socket.send_to(&s.pending, *server).is_err() {
                    led.send_errors.inc();
                }
            }
        }
    }

    /// Retransmits the pending payload unchanged.
    fn resend(&mut self, idx: usize, now_us: u64) {
        self.offer(idx, now_us);
        let s = &mut self.sessions[idx];
        s.deadline_us = now_us + self.cfg.timeout_us;
    }

    fn maybe_sweep(&mut self, now_us: u64) {
        if now_us.saturating_sub(self.last_sweep_us) < 500_000 {
            return;
        }
        self.last_sweep_us = now_us;
        self.led.inflight.set(self.tokens_in_use as i64);
        self.profile.refresh_util();
    }
}

/// Builds the next request for a session into `s.pending` and sets
/// `s.expect`. Honest sessions publish first, then mix source queries
/// (the paper's dominant traffic), keyword searches, and management
/// requests; noise sessions emit hostile bytes.
fn build_request(s: &mut Session, pool: &[FileId]) {
    if s.noise {
        build_noise(s);
        return;
    }
    if !s.published {
        s.published = true;
        let msg = build_offer(s, pool);
        msg.encode_into(&mut s.pending);
        s.expect = 0;
        return;
    }
    let roll = s.rng.gen_range(0..100u32);
    let msg = if let Some(fid) = s.special_file.filter(|_| roll < 50) {
        // Sentinel sessions keep their canary fileID on the wire.
        Message::GetSources {
            file_ids: vec![fid],
        }
    } else if roll < 50 {
        let k = s.rng.gen_range(1..=3usize);
        let mut ids = Vec::with_capacity(k);
        for _ in 0..k {
            ids.push(pool[s.rng.gen_range(0..pool.len())]);
        }
        Message::GetSources { file_ids: ids }
    } else if roll < 75 {
        Message::SearchRequest {
            expr: SearchExpr::keyword(VOCAB[s.rng.gen_range(0..VOCAB.len())]),
        }
    } else if roll < 90 {
        Message::StatusRequest {
            challenge: s.rng.gen::<u32>(),
        }
    } else if roll < 95 {
        Message::GetServerList
    } else {
        Message::ServerDescRequest
    };
    s.expect = match &msg {
        Message::GetSources { file_ids } => file_ids.len() as u32,
        _ => 1,
    };
    msg.encode_into(&mut s.pending);
}

/// The session's one-time announcement: 1–3 files from the shared pool
/// (sentinel sessions always include their canary file), named from the
/// shared vocabulary so swarm searches hit.
fn build_offer(s: &mut Session, pool: &[FileId]) -> Message {
    let mut files = Vec::new();
    let k = s.rng.gen_range(1..=3usize);
    for i in 0..k {
        let fid = match (i, s.special_file) {
            (0, Some(f)) => f,
            _ => pool[s.rng.gen_range(0..pool.len())],
        };
        let a = VOCAB[s.rng.gen_range(0..VOCAB.len())];
        let b = VOCAB[s.rng.gen_range(0..VOCAB.len())];
        files.push(FileEntry {
            file_id: fid,
            client_id: s.cid,
            port: 4662,
            // etwlint: allow(no-alloc-hot-loop): offer construction — once per session at publish, not per packet
            tags: TagList(vec![
                // etwlint: allow(no-alloc-hot-loop): as above
                Tag::str(
                    special::FILENAME,
                    // etwlint: allow(no-alloc-hot-loop): as above
                    format!("{a} {b} take{}.mp3", s.cid.0 & 0xFF),
                ),
                Tag::u32(
                    special::FILESIZE,
                    s.rng.gen_range(1_000_000..900_000_000u32),
                ),
                Tag::str(special::FILETYPE, "Audio"),
            ]),
        });
    }
    Message::OfferFiles { files }
}

/// Hostile payloads: random garbage, marked-but-corrupt, truncations,
/// oversized frames, wrong protocol markers — the arbitrary traffic a
/// real server port attracts.
fn build_noise(s: &mut Session) {
    s.expect = 0;
    s.pending.clear();
    match s.rng.gen_range(0..5u32) {
        0 => {
            // Pure garbage.
            let len = s.rng.gen_range(0..64usize);
            s.pending.resize(len, 0);
            s.rng.fill(&mut s.pending[..]);
        }
        1 => {
            // Valid marker + opcode, noise body.
            let ops = [
                opcodes::SEARCH_REQ,
                opcodes::GET_SOURCES,
                opcodes::STATUS_REQ,
                opcodes::OFFER_FILES,
            ];
            s.pending.push(PROTO_EDONKEY);
            s.pending.push(ops[s.rng.gen_range(0..ops.len())]);
            let len = s.rng.gen_range(0..48usize);
            let start = s.pending.len();
            s.pending.resize(start + len, 0);
            s.rng.fill(&mut s.pending[start..]);
        }
        2 => {
            // Truncated valid message.
            let msg = Message::StatusRequest {
                challenge: s.rng.gen::<u32>(),
            };
            msg.encode_into(&mut s.pending);
            let keep = s.rng.gen_range(1..s.pending.len().max(2));
            s.pending.truncate(keep);
        }
        3 => {
            // Oversized marked frame (rejected before decode).
            let len = s.rng.gen_range(4097..5000usize);
            s.pending.push(PROTO_EDONKEY);
            s.pending.push(opcodes::SEARCH_REQ);
            s.pending.resize(len, 0xA5);
        }
        _ => {
            // Wrong protocol marker.
            s.pending.push(0x00);
            s.pending.push(s.rng.gen::<u8>());
        }
    }
}

/// A full loopback-soak configuration: server, swarm, and the egress
/// impairment applied to the server's answers.
#[derive(Debug, Clone, Default)]
pub struct SoakConfig {
    /// The client swarm.
    pub swarm: SwarmConfig,
    /// The serving loop.
    pub net: NetConfig,
    /// From-server impairment on the server's answers.
    pub server_fault: Option<FaultSpec>,
}

/// Everything a soak run produced, for gates and reports.
#[derive(Debug)]
pub struct SoakOutcome {
    /// Client-side accounting.
    pub report: SwarmReport,
    /// Where the server bound.
    pub server_addr: SocketAddr,
    /// Engine counters after the run.
    pub engine: crate::engine::EngineStats,
    /// Decoder accounting after the run.
    pub decoder: etw_edonkey::decoder::DecoderStats,
    /// The serving loop's I/O error, if it died (a gate failure).
    pub server_error: Option<String>,
}

/// Runs a complete loopback soak: binds the server on an ephemeral
/// port, spawns its event loop on a thread, drives the swarm from the
/// calling thread, then shuts down in the order that lets every ledger
/// close exactly (swarm quiesce → grace → server drain-and-exit →
/// final client drain).
pub fn run_loopback_soak(
    cfg: SoakConfig,
    registry: &Registry,
    roster: &Roster,
    tap: Option<Box<dyn PacketTap>>,
) -> Result<SoakOutcome, String> {
    let mut net = ServerNet::bind("127.0.0.1:0", ServerEngine::default(), cfg.net, registry)
        .map_err(|e| format!("server bind failed: {e}"))?;
    if let Some(spec) = cfg.server_fault {
        net = net.with_impairment(SocketImpairment::new(spec, registry));
    }
    if let Some(t) = tap {
        net = net.with_tap(t);
    }
    let server_addr = net.local_addr();

    let mut swarm = Swarm::new(cfg.swarm, server_addr, roster, registry)
        .map_err(|e| format!("swarm setup failed: {e}"))?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let server_stop = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name("etw-served".into())
        .spawn(move || {
            let r = net.run(&server_stop);
            (net, r)
        })
        .map_err(|e| format!("server thread spawn failed: {e}"))?;

    swarm.run();
    // Grace: let the last datagrams cross loopback before asking the
    // server to drain-and-exit.
    std::thread::sleep(Duration::from_millis(50));
    // ordering: relaxed — one-shot latch; the serving loop re-checks it
    // every idle iteration, so a late observation only delays exit.
    shutdown.store(true, Ordering::Relaxed);
    let (net, run_result) = match handle.join() {
        Ok(x) => x,
        Err(_) => return Err("server thread panicked".into()),
    };
    // The server is silent now: anything still buffered on client
    // sockets is the tail of `answers_sent`, picked up here.
    swarm.final_drain();

    Ok(SoakOutcome {
        report: swarm.report(),
        server_addr,
        engine: net.engine().stats(),
        decoder: net.decoder_stats(),
        server_error: run_result.err().map(|e| e.to_string()),
    })
}

/// The soak's exact-conservation gate, evaluated over the metrics
/// snapshot: client sent == server received + impairment drops, server
/// received == answered + shed + malformed, answers sent == answers
/// received. Empty result = everything conserves.
pub fn soak_gate_failures(
    snap: &etw_telemetry::Snapshot,
    to_server_impaired: bool,
    from_server_impaired: bool,
) -> Vec<String> {
    use etw_faults::sock::SockLedger;
    let mut failures = crate::net::NetLedger::from_snapshot(snap).conservation_failures();
    let sent = snap.counter("swarm.sent_total");
    let cli_send_errors = snap.counter("swarm.send_errors_total");
    let recv = snap.counter("server.net.recv_total");
    if to_server_impaired {
        let lg = SockLedger::from_snapshot(snap, LinkDirection::ToServer);
        if lg.offered != sent {
            failures.push(format!(
                "to-server impairment saw {} datagrams but the swarm offered {sent}",
                lg.offered
            ));
        }
        if !lg.conserves() {
            failures.push(format!(
                "to-server impairment ledger does not conserve: {lg:?}"
            ));
        }
        if recv != lg.delivered - cli_send_errors {
            failures.push(format!(
                "loopback lost datagrams: server received {recv}, clients delivered {} ({} send errors)",
                lg.delivered, cli_send_errors
            ));
        }
    } else if recv != sent - cli_send_errors {
        failures.push(format!(
            "loopback lost datagrams: server received {recv}, clients sent {sent} ({cli_send_errors} send errors)"
        ));
    }
    if from_server_impaired {
        let lg = SockLedger::from_snapshot(snap, LinkDirection::FromServer);
        if !lg.conserves() {
            failures.push(format!(
                "from-server impairment ledger does not conserve: {lg:?}"
            ));
        }
    }
    let answers_sent = snap.counter("server.net.answers_sent_total");
    let answers_recv = snap.counter("swarm.answers_total");
    if answers_recv != answers_sent {
        failures.push(format!(
            "answer path lost datagrams: server sent {answers_sent}, clients received {answers_recv}"
        ));
    }
    failures
}
