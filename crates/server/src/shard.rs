//! Per-shard directory-server index for the parallel traffic source.
//!
//! [`ServerIndex`](crate::index::ServerIndex) answers decoded wire
//! messages; this module is its sharded, operation-driven counterpart.
//! Files are partitioned across shards by fileID, each shard owning the
//! *whole* record (metadata, keyword postings, source list) of its files,
//! so announcements and source queries route to exactly one shard while
//! keyword searches fan out to all shards and merge.
//!
//! Two invariants make the merge byte-identical to a single serial index:
//!
//! * every file carries a [`SlotKey`] — `(global event sequence, entry
//!   index within the announcement)` of its **first** announcement. That
//!   pair is exactly the serial index's slot-assignment order, so sorting
//!   merged search hits by key reproduces the serial result order no
//!   matter how files are distributed;
//! * each shard receives its operations in global sequence order (the
//!   merger routes them FIFO), so per-file source lists fill in the same
//!   first-N-arrival order as the serial index's capacity rule, and local
//!   slots are assigned in ascending key order — which lets the search
//!   intersect sorted postings and stop after `max_results` hits.
//!
//! Names are never re-tokenised here: announcements arrive with interned
//! keyword token IDs, and searches intersect posting lists of those IDs.

use etw_edonkey::ids::FileId;
use std::collections::HashMap;

/// Global ordering key of a file: (event sequence of the first
/// announcement, entry index within that announcement).
pub type SlotKey = (u64, u16);

/// One search result produced by a shard, ready for the global merge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchHit {
    /// Global ordering key (merge + truncation order).
    pub key: SlotKey,
    /// Catalog index backing the file's canonical metadata (the first
    /// announcement's, as serial indexes keep one canonical name).
    pub meta_idx: u32,
    /// Announced file ID.
    pub file_id: FileId,
    /// Provider with the smallest clientID (the entry header's source).
    pub provider: u32,
    /// That provider's announced port.
    pub provider_port: u16,
    /// Live source count (the SOURCES tag value).
    pub n_sources: u32,
}

struct ShardFile {
    id: FileId,
    key: SlotKey,
    meta_idx: u32,
    size: u32,
    /// Providers in arrival order (clientID raw, port); capped like the
    /// serial index, with port refresh allowed for known providers.
    sources: Vec<(u32, u16)>,
}

/// One shard of the partitioned directory index.
pub struct ShardIndex {
    files: Vec<ShardFile>,
    by_id: HashMap<FileId, u32>,
    /// Posting lists per interned token, in ascending slot (= key) order.
    postings: Vec<Vec<u32>>,
    max_sources_per_file: usize,
}

impl ShardIndex {
    /// Creates a shard knowing `n_tokens` interned keywords and keeping
    /// at most `max_sources_per_file` providers per file.
    pub fn new(n_tokens: usize, max_sources_per_file: usize) -> Self {
        ShardIndex {
            files: Vec::new(),
            by_id: HashMap::new(),
            postings: vec![Vec::new(); n_tokens],
            max_sources_per_file,
        }
    }

    /// Distinct files indexed on this shard.
    pub fn file_count(&self) -> u32 {
        self.files.len() as u32
    }

    /// Indexes one announced file entry. `tokens` are the interned
    /// keywords of the announced name; they index the file only on its
    /// first announcement (canonical-name rule).
    #[allow(clippy::too_many_arguments)]
    pub fn publish(
        &mut self,
        key: SlotKey,
        id: FileId,
        meta_idx: u32,
        size: u32,
        tokens: &[u32],
        client: u32,
        port: u16,
    ) {
        let slot = match self.by_id.get(&id) {
            Some(&slot) => slot,
            None => {
                let slot = self.files.len() as u32;
                self.files.push(ShardFile {
                    id,
                    key,
                    meta_idx,
                    size,
                    sources: Vec::new(),
                });
                self.by_id.insert(id, slot);
                for &tok in tokens {
                    let posting = &mut self.postings[tok as usize];
                    // A name with a repeated keyword must not double-post
                    // the slot; the newest slot can only ever be last.
                    if posting.last() != Some(&slot) {
                        posting.push(slot);
                    }
                }
                slot
            }
        };
        let file = &mut self.files[slot as usize];
        if let Some(s) = file.sources.iter_mut().find(|(c, _)| *c == client) {
            s.1 = port;
        } else if file.sources.len() < self.max_sources_per_file {
            file.sources.push((client, port));
        }
    }

    /// Intersects the posting lists of `tokens` (all must match), applies
    /// the optional minimum-size constraint, and appends up to
    /// `max_results` hits in ascending key order.
    pub fn search(
        &self,
        tokens: &[u32],
        size_min: Option<u32>,
        max_results: usize,
        out: &mut Vec<SearchHit>,
    ) {
        let Some(&first_tok) = tokens.first() else {
            return;
        };
        let lead = &self.postings[first_tok as usize];
        let mut cursors: Vec<&[u32]> = tokens[1..]
            .iter()
            .map(|&t| self.postings[t as usize].as_slice())
            .collect();
        let mut found = 0usize;
        'cand: for &slot in lead {
            for c in cursors.iter_mut() {
                // Postings are ascending; advance each cursor monotonically.
                let mut i = 0;
                while i < c.len() && c[i] < slot {
                    i += 1;
                }
                *c = &c[i..];
                if c.first() != Some(&slot) {
                    continue 'cand;
                }
            }
            let f = &self.files[slot as usize];
            if let Some(min) = size_min {
                if f.size < min {
                    continue;
                }
            }
            out.push(self.hit(f));
            found += 1;
            if found >= max_results {
                break;
            }
        }
    }

    fn hit(&self, f: &ShardFile) -> SearchHit {
        let (provider, provider_port) = f
            .sources
            .iter()
            .min_by_key(|(c, _)| *c)
            .copied()
            .unwrap_or((0, 0));
        SearchHit {
            key: f.key,
            meta_idx: f.meta_idx,
            file_id: f.id,
            provider,
            provider_port,
            n_sources: f.sources.len() as u32,
        }
    }

    /// Up to `max` sources for `id`, sorted by clientID (the serial
    /// index's stable answer order). Empty when the file is unknown.
    pub fn sources_for(&self, id: &FileId, max: usize, out: &mut Vec<(u32, u16)>) {
        out.clear();
        if let Some(&slot) = self.by_id.get(id) {
            out.extend_from_slice(&self.files[slot as usize].sources);
            out.sort_unstable_by_key(|&(c, _)| c);
            out.truncate(max);
        }
    }
}

/// Routes a fileID to its owning shard. Byte 2 is used because forged
/// pollution IDs share their first two prefix bytes — byte 2 is the first
/// position that varies across all ID families.
pub fn shard_of(id: &FileId, n_shards: usize) -> usize {
    id.as_bytes()[2] as usize % n_shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(n: u8) -> FileId {
        FileId([n; 16])
    }

    fn shard() -> ShardIndex {
        ShardIndex::new(8, 500)
    }

    #[test]
    fn publish_then_search_returns_key_ordered_hits() {
        let mut s = shard();
        s.publish((10, 0), fid(1), 100, 50, &[0, 1], 7, 4662);
        s.publish((10, 1), fid(2), 101, 90, &[0, 2], 8, 4663);
        s.publish((12, 0), fid(3), 102, 10, &[0], 9, 4664);
        let mut out = Vec::new();
        s.search(&[0], None, 10, &mut out);
        assert_eq!(
            out.iter().map(|h| h.key).collect::<Vec<_>>(),
            vec![(10, 0), (10, 1), (12, 0)]
        );
        out.clear();
        s.search(&[0, 1], None, 10, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].file_id, fid(1));
    }

    #[test]
    fn search_honours_size_floor_and_result_cap() {
        let mut s = shard();
        for i in 0..20u8 {
            s.publish(
                (i as u64, 0),
                fid(i + 1),
                i as u32,
                i as u32 * 10,
                &[3],
                1,
                1,
            );
        }
        let mut out = Vec::new();
        s.search(&[3], Some(100), 4, &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|h| h.key.0 >= 10));
        // First hits in key order, not best-match order.
        assert_eq!(out[0].key, (10, 0));
    }

    #[test]
    fn repeated_keyword_posts_slot_once() {
        let mut s = shard();
        s.publish((1, 0), fid(1), 0, 10, &[5, 6, 5], 1, 1);
        let mut out = Vec::new();
        s.search(&[5], None, 10, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn canonical_metadata_is_first_announcement() {
        let mut s = shard();
        s.publish((3, 0), fid(4), 42, 10, &[1], 1, 1111);
        s.publish((9, 0), fid(4), 77, 99, &[2], 2, 2222);
        let mut out = Vec::new();
        s.search(&[1], None, 10, &mut out);
        assert_eq!(out.len(), 1, "first-announce keywords index the file");
        assert_eq!(out[0].meta_idx, 42);
        assert_eq!(out[0].key, (3, 0));
        assert_eq!(out[0].n_sources, 2);
        out.clear();
        s.search(&[2], None, 10, &mut out);
        assert!(out.is_empty(), "later names must not be indexed");
    }

    #[test]
    fn source_cap_first_n_with_port_refresh() {
        let mut s = ShardIndex::new(4, 3);
        for c in 1..=10u32 {
            s.publish((c as u64, 0), fid(7), 0, 1, &[0], c, 4000);
        }
        let mut out = Vec::new();
        s.sources_for(&fid(7), 100, &mut out);
        assert_eq!(out, vec![(1, 4000), (2, 4000), (3, 4000)]);
        // A capped-out provider can still refresh its port.
        s.publish((11, 0), fid(7), 0, 1, &[0], 2, 5555);
        s.sources_for(&fid(7), 100, &mut out);
        assert_eq!(out[1], (2, 5555));
        // Truncation after sorting.
        s.sources_for(&fid(7), 2, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn provider_is_min_client_id() {
        let mut s = shard();
        s.publish((1, 0), fid(2), 0, 1, &[0], 50, 9);
        s.publish((2, 0), fid(2), 0, 1, &[0], 3, 8);
        let mut out = Vec::new();
        s.search(&[0], None, 10, &mut out);
        assert_eq!((out[0].provider, out[0].provider_port), (3, 8));
        assert_eq!(out[0].n_sources, 2);
    }

    #[test]
    fn sources_for_unknown_file_is_empty() {
        let s = shard();
        let mut out = vec![(1, 1)];
        s.sources_for(&fid(9), 5, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn shard_routing_uses_third_byte() {
        let mut id = [0u8; 16];
        id[2] = 7;
        assert_eq!(shard_of(&FileId(id), 4), 3);
        assert_eq!(shard_of(&FileId(id), 1), 0);
    }
}
