//! The real-socket serving loop: the eDonkey UDP protocol on an actual
//! `std::net::UdpSocket`, run as a non-blocking readiness-style event
//! loop.
//!
//! Structurally this is the mio `UdpSocket` + Poll/Token idiom with a
//! single token: the socket is non-blocking, "readiness" is discovered
//! by attempting the read and treating `WouldBlock` as "not ready", and
//! one thread multiplexes ingress, processing, delayed egress and
//! housekeeping. With vendored-only dependencies there is no epoll
//! binding, so readiness is polled — on a loopback soak the socket is
//! essentially always readable and the loop runs hot; when idle it backs
//! off with a short sleep.
//!
//! Robustness machinery, in the order a datagram meets it:
//!
//! 1. **Hostile ingress** — every datagram is untrusted. Oversized
//!    frames (> [`MAX_DATAGRAM`]) are counted and never decoded;
//!    everything else goes through the two-step decoder, whose outcomes
//!    land in the `server.net.malformed.*` ledgers. Nothing panics.
//! 2. **Bounded ingress queue** — arrivals beyond `queue_cap` are shed
//!    with accounting (`server.shed.queue_total`), never buffered
//!    unboundedly: the paper's capture machine had the same rule (keep
//!    up or account the loss, §2.2).
//! 3. **Degraded mode** — when the queue crosses `high_water` the
//!    server keeps answering source queries (cheap, the paper's
//!    dominant traffic) but sheds keyword searches (expensive index
//!    scans) until the queue falls back under `low_water`.
//! 4. **Per-client policy** — a sliding-window request counter per peer
//!    address; flooding clients are put in a penalty box and their
//!    traffic shed (`server.shed.backoff_total`) until the penalty
//!    expires. Idle clients are evicted on a periodic sweep.
//! 5. **Egress impairment** — an optional [`SocketImpairment`] sits
//!    between the answer encoder and `sendto`, so answers can be
//!    dropped/duplicated/truncated/delayed with exact ledger accounting
//!    for the soak's conservation gate.
//!
//! Conservation (the ci.sh `swarm` stage gates this exactly):
//!
//! ```text
//! server.net.recv_total == server.net.answered_total
//!                        + server.shed_total
//!                        + server.net.malformed_total
//! ```
//!
//! Every received datagram lands in exactly one of those three buckets;
//! `answered_total` counts request datagrams the engine fully handled
//! (including announcements, which produce zero reply datagrams).
//!
//! The optional [`PacketTap`] sees every datagram that actually crossed
//! the wire — ingress before any policy decision (a sniffer does not
//! care that the server later shed the frame), egress after impairment
//! (a sniffer sees what really went out). The capture stack hangs off
//! this tap and feeds the unchanged decode→anonymise pipeline.

use crate::engine::ServerEngine;
use etw_edonkey::datagram::{DatagramBuf, MAX_DATAGRAM, RECV_BUF};
use etw_edonkey::decoder::{DecodeOutcome, Decoder};
use etw_edonkey::ids::ClientId;
use etw_edonkey::messages::Message;
use etw_faults::sock::{SockDatagram, SocketImpairment};
use etw_faults::LinkDirection;
use etw_telemetry::{Counter, Gauge, Registry, Snapshot};
use etw_trace::{wall_now_ns, StageId, StageProfile};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Observer of datagrams actually crossing the server's socket — the
/// capture tap. Must never block: a sniffer that blocks the server
/// would invert the paper's problem (the *capture* must keep up with
/// the server, not throttle it).
pub trait PacketTap: Send {
    /// One datagram on the wire. `now_us` is `wall_now_ns() / 1000`,
    /// the same clock axis every component of a soak shares.
    fn packet(&mut self, dir: LinkDirection, peer: SocketAddr, payload: &[u8], now_us: u64);
}

/// Serving-loop configuration. Defaults are sized for a loopback soak
/// on a small host; a real deployment would scale `queue_cap` and the
/// client policy with expected load.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Largest accepted datagram; bigger ones count as malformed.
    pub max_datagram: usize,
    /// Bounded ingress queue capacity; arrivals beyond it are shed.
    pub queue_cap: usize,
    /// Queue depth at which degraded mode engages.
    pub high_water: usize,
    /// Queue depth at which degraded mode releases.
    pub low_water: usize,
    /// Max datagrams pulled from the socket per loop tick.
    pub recv_burst: usize,
    /// Max queued datagrams processed per loop tick.
    pub proc_budget: usize,
    /// Sliding window for the per-client request counter, in µs.
    pub client_window_us: u64,
    /// Requests allowed per window before the penalty box.
    pub client_window_max: u32,
    /// Penalty-box duration, in µs.
    pub client_penalty_us: u64,
    /// Idle time after which a client's state is evicted, in µs.
    pub client_idle_evict_us: u64,
    /// Sweep interval for eviction / gauge refresh, in µs.
    pub sweep_every_us: u64,
    /// Sleep when a tick found nothing to do, in µs.
    pub idle_sleep_us: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_datagram: MAX_DATAGRAM,
            queue_cap: 1024,
            high_water: 768,
            low_water: 256,
            recv_burst: 64,
            proc_budget: 128,
            client_window_us: 100_000,
            client_window_max: 200,
            client_penalty_us: 250_000,
            client_idle_evict_us: 10_000_000,
            sweep_every_us: 1_000_000,
            idle_sleep_us: 200,
        }
    }
}

/// The `server.net.*` / `server.shed_total` ledger handles.
struct Ledgers {
    recv: Counter,
    recv_bytes: Counter,
    malformed: Counter,
    malformed_structural: Counter,
    malformed_decode: Counter,
    malformed_not_edonkey: Counter,
    malformed_oversize: Counter,
    answered: Counter,
    answers_sent: Counter,
    send_errors: Counter,
    shed: Counter,
    shed_queue: Counter,
    shed_degraded: Counter,
    shed_backoff: Counter,
    degraded: Gauge,
    degraded_entered: Counter,
    queue_depth: Gauge,
    queue_depth_hwm: Gauge,
    clients: Gauge,
    penalized: Counter,
}

impl Ledgers {
    fn new(registry: &Registry) -> Ledgers {
        Ledgers {
            recv: registry.counter("server.net.recv_total"),
            recv_bytes: registry.counter("server.net.recv_bytes_total"),
            malformed: registry.counter("server.net.malformed_total"),
            malformed_structural: registry.counter("server.net.malformed.structural_total"),
            malformed_decode: registry.counter("server.net.malformed.decode_total"),
            malformed_not_edonkey: registry.counter("server.net.malformed.not_edonkey_total"),
            malformed_oversize: registry.counter("server.net.malformed.oversize_total"),
            answered: registry.counter("server.net.answered_total"),
            answers_sent: registry.counter("server.net.answers_sent_total"),
            send_errors: registry.counter("server.net.send_errors_total"),
            shed: registry.counter("server.shed_total"),
            shed_queue: registry.counter("server.shed.queue_total"),
            shed_degraded: registry.counter("server.shed.degraded_total"),
            shed_backoff: registry.counter("server.shed.backoff_total"),
            degraded: registry.gauge("server.net.degraded"),
            degraded_entered: registry.counter("server.net.degraded_entered_total"),
            queue_depth: registry.gauge("server.net.queue_depth"),
            queue_depth_hwm: registry.gauge("server.net.queue_depth_hwm"),
            clients: registry.gauge("server.net.clients"),
            penalized: registry.counter("server.net.penalized_total"),
        }
    }
}

/// Read-back of the serving ledgers from a metrics [`Snapshot`], for
/// gates and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetLedger {
    /// Datagrams received from the socket.
    pub recv: u64,
    /// Bytes received.
    pub recv_bytes: u64,
    /// Datagrams rejected as malformed (all classes).
    pub malformed: u64,
    /// …rejected by structural validation.
    pub malformed_structural: u64,
    /// …passed validation, failed effective decoding.
    pub malformed_decode: u64,
    /// …not eDonkey traffic at all.
    pub malformed_not_edonkey: u64,
    /// …larger than the acceptance ceiling.
    pub malformed_oversize: u64,
    /// Request datagrams the engine fully handled.
    pub answered: u64,
    /// Answer datagrams that reached `sendto` successfully.
    pub answers_sent: u64,
    /// Answer datagrams `sendto` refused.
    pub send_errors: u64,
    /// Datagrams shed (all classes).
    pub shed: u64,
    /// …shed because the ingress queue was full.
    pub shed_queue: u64,
    /// …keyword searches shed in degraded mode.
    pub shed_degraded: u64,
    /// …shed because the peer was in the penalty box.
    pub shed_backoff: u64,
    /// Times degraded mode engaged.
    pub degraded_entered: u64,
    /// Peers put in the penalty box.
    pub penalized: u64,
}

impl NetLedger {
    /// Reads the ledgers out of a snapshot.
    pub fn from_snapshot(snap: &Snapshot) -> NetLedger {
        NetLedger {
            recv: snap.counter("server.net.recv_total"),
            recv_bytes: snap.counter("server.net.recv_bytes_total"),
            malformed: snap.counter("server.net.malformed_total"),
            malformed_structural: snap.counter("server.net.malformed.structural_total"),
            malformed_decode: snap.counter("server.net.malformed.decode_total"),
            malformed_not_edonkey: snap.counter("server.net.malformed.not_edonkey_total"),
            malformed_oversize: snap.counter("server.net.malformed.oversize_total"),
            answered: snap.counter("server.net.answered_total"),
            answers_sent: snap.counter("server.net.answers_sent_total"),
            send_errors: snap.counter("server.net.send_errors_total"),
            shed: snap.counter("server.shed_total"),
            shed_queue: snap.counter("server.shed.queue_total"),
            shed_degraded: snap.counter("server.shed.degraded_total"),
            shed_backoff: snap.counter("server.shed.backoff_total"),
            degraded_entered: snap.counter("server.net.degraded_entered_total"),
            penalized: snap.counter("server.net.penalized_total"),
        }
    }

    /// The exact-conservation identities, as human-readable failures
    /// (empty = everything conserves).
    pub fn conservation_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        if self.recv != self.answered + self.shed + self.malformed {
            failures.push(format!(
                "ingress does not conserve: recv {} != answered {} + shed {} + malformed {}",
                self.recv, self.answered, self.shed, self.malformed
            ));
        }
        if self.shed != self.shed_queue + self.shed_degraded + self.shed_backoff {
            failures.push(format!(
                "shed detail does not tile: {} != queue {} + degraded {} + backoff {}",
                self.shed, self.shed_queue, self.shed_degraded, self.shed_backoff
            ));
        }
        let detail = self.malformed_structural
            + self.malformed_decode
            + self.malformed_not_edonkey
            + self.malformed_oversize;
        if self.malformed != detail {
            failures.push(format!(
                "malformed detail does not tile: {} != {detail}",
                self.malformed
            ));
        }
        failures
    }
}

/// Per-peer bookkeeping: rate window, penalty box, identity.
struct ClientState {
    cid: ClientId,
    last_seen_us: u64,
    window_start_us: u64,
    in_window: u32,
    penalty_until_us: u64,
}

/// One queued ingress datagram.
struct Ingress {
    peer: SocketAddr,
    bytes: Vec<u8>,
}

/// The serving loop: one UDP socket, one engine, bounded queues, exact
/// ledgers. Built with [`ServerNet::bind`], driven by
/// [`ServerNet::run`].
pub struct ServerNet {
    socket: UdpSocket,
    local: SocketAddr,
    engine: ServerEngine,
    cfg: NetConfig,
    decoder: Decoder,
    led: Ledgers,
    profile: StageProfile,
    clients: HashMap<SocketAddr, ClientState>,
    next_cid: u32,
    queue: VecDeque<Ingress>,
    pool: Vec<Vec<u8>>,
    degraded: bool,
    impair: Option<SocketImpairment<SocketAddr>>,
    tap: Option<Box<dyn PacketTap>>,
    emit: Vec<SockDatagram<SocketAddr>>,
    encode_buf: DatagramBuf,
    recv_buf: Box<[u8]>,
    last_sweep_us: u64,
}

impl ServerNet {
    /// Binds the serving socket (non-blocking, enlarged receive buffer)
    /// and wires the ledgers into `registry`.
    pub fn bind(
        addr: &str,
        engine: ServerEngine,
        cfg: NetConfig,
        registry: &Registry,
    ) -> io::Result<ServerNet> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        let local = socket.local_addr()?;
        bump_rcvbuf(&socket, 4 << 20);
        Ok(ServerNet {
            socket,
            local,
            engine,
            cfg,
            decoder: Decoder::new(),
            led: Ledgers::new(registry),
            profile: StageProfile::new(registry, StageId::Net),
            clients: HashMap::new(),
            next_cid: 1,
            queue: VecDeque::new(),
            pool: Vec::new(),
            degraded: false,
            impair: None,
            tap: None,
            emit: Vec::new(),
            encode_buf: DatagramBuf::new(),
            recv_buf: vec![0u8; RECV_BUF].into_boxed_slice(),
            last_sweep_us: 0,
        })
    }

    /// Installs egress (from-server) impairment.
    pub fn with_impairment(mut self, impair: SocketImpairment<SocketAddr>) -> Self {
        self.impair = Some(impair);
        self
    }

    /// Installs the capture tap.
    pub fn with_tap(mut self, tap: Box<dyn PacketTap>) -> Self {
        self.tap = Some(tap);
        self
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Engine counters (after a run).
    pub fn engine(&self) -> &ServerEngine {
        &self.engine
    }

    /// Decoder accounting (after a run).
    pub fn decoder_stats(&self) -> etw_edonkey::decoder::DecoderStats {
        self.decoder.stats()
    }

    /// Runs the event loop until `shutdown` is set *and* a full tick
    /// found nothing to do — so every datagram the kernel delivered
    /// before shutdown is classified and the ledgers close exactly.
    pub fn run(&mut self, shutdown: &AtomicBool) -> io::Result<()> {
        loop {
            let now_us = wall_now_ns() / 1_000;
            let got = self.pump_ingress(now_us)?;
            let did = self.process_some(now_us);
            let sent = self.pump_delayed(now_us);
            self.maybe_sweep(now_us);
            if !got && !did && !sent && self.queue.is_empty() {
                // ordering: relaxed — the flag is a latch set once by the
                // controller; the next iteration observing it late only
                // delays shutdown by one idle sleep.
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(Duration::from_micros(self.cfg.idle_sleep_us));
            }
        }
        // Flush delayed answers so the egress ledger closes too.
        if let Some(imp) = self.impair.as_mut() {
            imp.drain_due(u64::MAX, &mut self.emit);
        }
        let now_us = wall_now_ns() / 1_000;
        for d in self.emit.drain(..) {
            send_raw(
                &self.socket,
                &self.led,
                &mut self.tap,
                d.ctx,
                &d.bytes,
                now_us,
            );
        }
        self.led.queue_depth.set(self.queue.len() as i64);
        Ok(())
    }

    /// Pulls up to `recv_burst` datagrams off the socket. Returns
    /// whether anything arrived.
    fn pump_ingress(&mut self, now_us: u64) -> io::Result<bool> {
        let mut any = false;
        for _ in 0..self.cfg.recv_burst {
            match self.socket.recv_from(&mut self.recv_buf) {
                Ok((n, peer)) => {
                    any = true;
                    self.led.recv.inc();
                    self.led.recv_bytes.add(n as u64);
                    if let Some(tap) = self.tap.as_mut() {
                        tap.packet(LinkDirection::ToServer, peer, &self.recv_buf[..n], now_us);
                    }
                    if self.queue.len() >= self.cfg.queue_cap {
                        self.led.shed_queue.inc();
                        self.led.shed.inc();
                    } else {
                        let mut bytes = self.pool.pop().unwrap_or_default();
                        bytes.clear();
                        bytes.extend_from_slice(&self.recv_buf[..n]);
                        self.queue.push_back(Ingress { peer, bytes });
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        let depth = self.queue.len() as i64;
        self.led.queue_depth.set(depth);
        if depth > self.led.queue_depth_hwm.get() {
            self.led.queue_depth_hwm.set(depth);
        }
        if !self.degraded && self.queue.len() >= self.cfg.high_water {
            self.degraded = true;
            self.led.degraded.set(1);
            self.led.degraded_entered.inc();
        }
        Ok(any)
    }

    /// Processes up to `proc_budget` queued datagrams. Returns whether
    /// anything was processed.
    fn process_some(&mut self, now_us: u64) -> bool {
        let mut did = false;
        for _ in 0..self.cfg.proc_budget {
            let Some(item) = self.queue.pop_front() else {
                break;
            };
            did = true;
            self.process_one(item, now_us);
        }
        if self.degraded && self.queue.len() <= self.cfg.low_water {
            self.degraded = false;
            self.led.degraded.set(0);
        }
        self.led.queue_depth.set(self.queue.len() as i64);
        did
    }

    /// Classifies and answers one datagram; exactly one ledger bucket
    /// is incremented per call.
    fn process_one(&mut self, item: Ingress, now_us: u64) {
        let mut t = self.profile.begin();
        let Ingress { peer, bytes } = item;

        // Per-client policy first: a penalty-boxed flooder costs us one
        // hash lookup, not a decode.
        let next_cid = &mut self.next_cid;
        let state = self.clients.entry(peer).or_insert_with(|| {
            let cid = ClientId(*next_cid);
            *next_cid += 1;
            ClientState {
                cid,
                last_seen_us: now_us,
                window_start_us: now_us,
                in_window: 0,
                penalty_until_us: 0,
            }
        });
        state.last_seen_us = now_us;
        if now_us.saturating_sub(state.window_start_us) > self.cfg.client_window_us {
            state.window_start_us = now_us;
            state.in_window = 0;
        }
        state.in_window += 1;
        if state.in_window > self.cfg.client_window_max && now_us >= state.penalty_until_us {
            state.penalty_until_us = now_us + self.cfg.client_penalty_us;
            self.led.penalized.inc();
        }
        if now_us < state.penalty_until_us {
            self.led.shed_backoff.inc();
            self.led.shed.inc();
            self.recycle(bytes);
            self.profile.note_service(&mut t, 1);
            return;
        }
        let cid = state.cid;

        if bytes.len() > self.cfg.max_datagram {
            self.led.malformed_oversize.inc();
            self.led.malformed.inc();
            self.recycle(bytes);
            self.profile.note_service(&mut t, 1);
            return;
        }

        match self.decoder.push(&bytes) {
            DecodeOutcome::Ok(msg) => {
                if self.degraded && matches!(msg, Message::SearchRequest { .. }) {
                    self.led.shed_degraded.inc();
                    self.led.shed.inc();
                } else {
                    let answers = self.engine.handle(cid, &msg);
                    self.led.answered.inc();
                    for answer in &answers {
                        self.send_answer(peer, answer, now_us);
                    }
                }
            }
            DecodeOutcome::StructurallyInvalid(_) => {
                self.led.malformed_structural.inc();
                self.led.malformed.inc();
            }
            DecodeOutcome::DecodeFailed(_) => {
                self.led.malformed_decode.inc();
                self.led.malformed.inc();
            }
            DecodeOutcome::NotEdonkey => {
                self.led.malformed_not_edonkey.inc();
                self.led.malformed.inc();
            }
        }
        self.recycle(bytes);
        self.profile.note_service(&mut t, 1);
    }

    /// Encodes one answer and puts it on the wire (through impairment
    /// when installed).
    fn send_answer(&mut self, peer: SocketAddr, answer: &Message, now_us: u64) {
        let wire = wire_encode(&mut self.encode_buf, answer);
        match self.impair.as_mut() {
            Some(imp) => {
                imp.admit(
                    peer,
                    LinkDirection::FromServer,
                    wire,
                    now_us,
                    &mut self.emit,
                );
                for d in self.emit.drain(..) {
                    send_raw(
                        &self.socket,
                        &self.led,
                        &mut self.tap,
                        d.ctx,
                        &d.bytes,
                        now_us,
                    );
                }
            }
            None => send_raw(&self.socket, &self.led, &mut self.tap, peer, wire, now_us),
        }
    }

    /// Releases impairment-delayed answers whose deadline passed.
    fn pump_delayed(&mut self, now_us: u64) -> bool {
        let Some(imp) = self.impair.as_mut() else {
            return false;
        };
        if imp.next_due_us().is_none_or(|due| due > now_us) {
            return false;
        }
        imp.drain_due(now_us, &mut self.emit);
        let mut sent = false;
        for d in self.emit.drain(..) {
            sent = true;
            send_raw(
                &self.socket,
                &self.led,
                &mut self.tap,
                d.ctx,
                &d.bytes,
                now_us,
            );
        }
        sent
    }

    /// Periodic housekeeping: evict idle clients, refresh gauges.
    fn maybe_sweep(&mut self, now_us: u64) {
        if now_us.saturating_sub(self.last_sweep_us) < self.cfg.sweep_every_us {
            return;
        }
        self.last_sweep_us = now_us;
        let evict = self.cfg.client_idle_evict_us;
        self.clients
            .retain(|_, s| now_us.saturating_sub(s.last_seen_us) < evict);
        self.led.clients.set(self.clients.len() as i64);
        self.profile.refresh_util();
    }

    /// Returns a drained payload buffer to the pool (bounded by the
    /// queue capacity, so the pool cannot grow without limit).
    fn recycle(&mut self, bytes: Vec<u8>) {
        if self.pool.len() < self.cfg.queue_cap {
            self.pool.push(bytes);
        }
    }
}

/// The single deliberate encode boundary between protocol values and
/// the wire. eDonkey answers *are* protocol messages: FoundSources
/// carries client identifiers by protocol design, so the serving side
/// cannot anonymise its own answers — what the taint pass proves
/// instead is that nothing else in the process (anonymiser tables,
/// checkpoint orders, dataset records) has any dataflow path to the
/// socket: the wire is reachable only through this encoder. The
/// anonymisation boundary for the *published dataset* stays where it
/// always was, in etw-anonymize (DESIGN.md §16).
// etwlint: sanitize(raw-id): protocol answers legitimately carry raw ids; this fn is the single audited wire-encode chokepoint
fn wire_encode<'a>(buf: &'a mut DatagramBuf, msg: &Message) -> &'a [u8] {
    buf.encode(msg)
}

/// The only raw socket write on the serving side. `WouldBlock` from a
/// full send buffer is counted as a send error (UDP: the datagram is
/// gone either way); the tap only sees datagrams `sendto` accepted.
// etwlint: sink(net): bytes leave the process on the wire here
fn send_raw(
    socket: &UdpSocket,
    led: &Ledgers,
    tap: &mut Option<Box<dyn PacketTap>>,
    peer: SocketAddr,
    bytes: &[u8],
    now_us: u64,
) {
    match socket.send_to(bytes, peer) {
        Ok(_) => {
            led.answers_sent.inc();
            if let Some(t) = tap.as_mut() {
                t.packet(LinkDirection::FromServer, peer, bytes, now_us);
            }
        }
        Err(_) => led.send_errors.inc(),
    }
}

/// Best-effort receive-buffer enlargement, so a loopback burst of
/// thousands of small datagrams is absorbed by the kernel queue instead
/// of silently dropped (which would break exact conservation).
/// `std::net` exposes no API for this; the raw `setsockopt` is three
/// constants deep and the result is deliberately ignored — the kernel
/// clamps to `net.core.rmem_max` and the swarm's in-flight cap is sized
/// for the unclamped minimum anyway.
#[cfg(target_os = "linux")]
fn bump_rcvbuf(socket: &UdpSocket, bytes: i32) {
    use std::os::fd::AsRawFd;
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const std::ffi::c_void,
            len: u32,
        ) -> i32;
    }
    let v: i32 = bytes;
    // SAFETY: passes a valid 4-byte buffer for the documented
    // SOL_SOCKET/SO_RCVBUF option on a live fd; the kernel copies it.
    unsafe {
        setsockopt(
            socket.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            (&v as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        );
    }
}

#[cfg(not(target_os = "linux"))]
fn bump_rcvbuf(_socket: &UdpSocket, _bytes: i32) {}
