//! # etw-server — the eDonkey directory server simulator
//!
//! The paper captured traffic *at* a directory server; the server itself
//! is therefore a substrate this reproduction must provide. It "indexes
//! files and users" and answers file searches (by metadata) and source
//! searches (by fileID) — paper §2.1.
//!
//! * [`index`] — the file/source tables and the inverted keyword index;
//! * [`engine`] — query handling: one client message in, the server's
//!   answer messages out.
//!
//! ## Example
//!
//! ```
//! use etw_edonkey::{ClientId, FileId, Message, SearchExpr};
//! use etw_edonkey::messages::FileEntry;
//! use etw_edonkey::tags::{special, Tag, TagList};
//! use etw_server::engine::ServerEngine;
//!
//! let mut server = ServerEngine::default();
//! // A client announces a file…
//! let entry = FileEntry {
//!     file_id: FileId([1; 16]),
//!     client_id: ClientId(42),
//!     port: 4662,
//!     tags: TagList(vec![
//!         Tag::str(special::FILENAME, "sunrise acoustic.mp3"),
//!         Tag::u32(special::FILESIZE, 4_200_000),
//!         Tag::str(special::FILETYPE, "Audio"),
//!     ]),
//! };
//! server.handle(ClientId(42), &Message::OfferFiles { files: vec![entry] });
//! // …and another finds it by keyword.
//! let answers = server.handle(ClientId(7), &Message::SearchRequest {
//!     expr: SearchExpr::keyword("sunrise"),
//! });
//! match &answers[..] {
//!     [Message::SearchResponse { results }] => assert_eq!(results.len(), 1),
//!     _ => unreachable!(),
//! }
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod index;
pub mod net;
pub mod shard;
pub mod swarm;

pub use engine::{EngineConfig, EngineStats, ServerEngine};
pub use index::{IndexedFile, ServerIndex};
pub use net::{NetConfig, NetLedger, PacketTap, ServerNet};
pub use shard::{shard_of, SearchHit, ShardIndex, SlotKey};
pub use swarm::{run_loopback_soak, Roster, SoakConfig, SoakOutcome, SwarmConfig, SwarmReport};
