//! Integration tests for the real-socket serving loop: hostile
//! ingress, per-client backoff, degraded mode, and a small loopback
//! soak whose ledgers must conserve exactly.

use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::{opcodes, Message, PROTO_EDONKEY};
use etw_faults::{DirectedRates, FaultSpec};
use etw_server::engine::ServerEngine;
use etw_server::net::{NetConfig, NetLedger, ServerNet};
use etw_server::swarm::{run_loopback_soak, soak_gate_failures, Roster, SoakConfig, SwarmConfig};
use etw_telemetry::Registry;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Spawns a server loop on a thread; returns (addr, shutdown, handle).
fn spawn_server(
    cfg: NetConfig,
    registry: &Registry,
) -> (
    std::net::SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<ServerNet>,
) {
    let mut net = ServerNet::bind("127.0.0.1:0", ServerEngine::default(), cfg, registry)
        .expect("bind server");
    let addr = net.local_addr();
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&shutdown);
    let handle = std::thread::spawn(move || {
        net.run(&stop).expect("serving loop failed");
        net
    });
    (addr, shutdown, handle)
}

#[test]
fn hostile_ingress_is_classified_and_conserves() {
    let registry = Registry::new();
    let (addr, shutdown, handle) = spawn_server(NetConfig::default(), &registry);
    let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    client
        .set_read_timeout(Some(Duration::from_millis(500)))
        .expect("timeout");

    // A valid request: must be answered.
    let req = Message::StatusRequest { challenge: 99 };
    client.send_to(&req.encode(), addr).expect("send valid");
    let mut buf = [0u8; 4096];
    let (n, _) = client.recv_from(&mut buf).expect("answer arrives");
    let mut dec = etw_edonkey::decoder::Decoder::new();
    match dec.push(&buf[..n]) {
        etw_edonkey::decoder::DecodeOutcome::Ok(Message::StatusResponse { challenge, .. }) => {
            assert_eq!(challenge, 99)
        }
        other => panic!("expected StatusResponse, got {other:?}"),
    }

    // Garbage of every class.
    client.send_to(&[0xAB, 0xCD, 0xEF], addr).expect("garbage");
    client
        .send_to(&[PROTO_EDONKEY, opcodes::SEARCH_REQ, 0xFF], addr)
        .expect("marked garbage");
    let oversized = vec![0xE3u8; 5000];
    client.send_to(&oversized, addr).expect("oversized");
    client.send_to(&[], addr).expect("empty");

    std::thread::sleep(Duration::from_millis(200));
    // ordering: relaxed — one-shot shutdown latch, re-checked every idle loop
    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("no panic");

    let snap = registry.snapshot();
    let led = NetLedger::from_snapshot(&snap);
    assert_eq!(led.conservation_failures(), Vec::<String>::new());
    assert_eq!(led.recv, 5);
    assert_eq!(led.answered, 1);
    assert_eq!(led.malformed, 4);
    assert_eq!(led.malformed_oversize, 1);
    assert!(led.malformed_structural >= 1);
    assert_eq!(led.answers_sent, 1);
}

#[test]
fn flooding_peer_lands_in_penalty_box() {
    let registry = Registry::new();
    let cfg = NetConfig {
        client_window_max: 10,
        client_window_us: 10_000_000,
        client_penalty_us: 10_000_000,
        ..NetConfig::default()
    };
    let (addr, shutdown, handle) = spawn_server(cfg, &registry);
    let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    let req = Message::GetServerList.encode();
    for _ in 0..50 {
        client.send_to(&req, addr).expect("send");
        // Pace so nothing overruns the receive buffer.
        std::thread::sleep(Duration::from_micros(300));
    }
    std::thread::sleep(Duration::from_millis(300));
    // ordering: relaxed — one-shot shutdown latch, re-checked every idle loop
    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("no panic");

    let snap = registry.snapshot();
    let led = NetLedger::from_snapshot(&snap);
    assert_eq!(led.conservation_failures(), Vec::<String>::new());
    assert_eq!(led.recv, 50);
    assert_eq!(led.penalized, 1, "one peer penalized once");
    assert!(led.shed_backoff > 0, "flood traffic shed: {led:?}");
    assert!(led.answered <= 11);
}

#[test]
fn degraded_mode_sheds_searches_but_answers_source_queries() {
    // A deliberately tiny server: queue of 8, degraded at 4, one
    // datagram processed per tick — so a burst forces degraded mode
    // deterministically.
    let registry = Registry::new();
    let cfg = NetConfig {
        queue_cap: 64,
        high_water: 4,
        low_water: 1,
        recv_burst: 64,
        proc_budget: 2,
        idle_sleep_us: 50,
        ..NetConfig::default()
    };
    let (addr, shutdown, handle) = spawn_server(cfg, &registry);
    let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    let search = Message::SearchRequest {
        expr: etw_edonkey::search::SearchExpr::keyword("anything"),
    }
    .encode();
    let sources = Message::GetSources {
        file_ids: vec![FileId([7; 16])],
    }
    .encode();
    for _ in 0..30 {
        client.send_to(&search, addr).expect("send search");
        client.send_to(&sources, addr).expect("send sources");
    }
    std::thread::sleep(Duration::from_millis(400));
    // ordering: relaxed — one-shot shutdown latch, re-checked every idle loop
    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("no panic");

    let snap = registry.snapshot();
    let led = NetLedger::from_snapshot(&snap);
    assert_eq!(led.conservation_failures(), Vec::<String>::new());
    assert_eq!(led.recv, 60);
    assert!(
        snap.counter("server.net.degraded_entered_total") >= 1,
        "the burst must have tripped degraded mode"
    );
    assert!(led.shed_degraded > 0, "searches shed in degraded mode");
    // Source queries kept flowing: every processed GetSources answered.
    assert!(led.answers_sent > 0);
}

#[test]
fn small_impaired_soak_conserves_exactly() {
    let registry = Registry::new();
    let rate = |p| DirectedRates {
        to_server: p,
        from_server: p,
    };
    let fault = FaultSpec {
        seed: 0xBEEF,
        drop: rate(0.05),
        duplicate: rate(0.03),
        truncate: rate(0.04),
        delay: rate(0.05),
        delay_max_us: 30_000,
        ..FaultSpec::default()
    };
    let cfg = SoakConfig {
        swarm: SwarmConfig {
            sessions: 64,
            duration_us: 400_000,
            noise_per_mille: 100,
            timeout_us: 120_000,
            think_min_us: 1_000,
            think_max_us: 10_000,
            burst_start_us: 100_000,
            burst_len_us: 150_000,
            special: vec![(ClientId(0x00CB_714D), FileId([0xC4; 16]))],
            fault: Some(fault.clone()),
            ..SwarmConfig::default()
        },
        net: NetConfig::default(),
        server_fault: Some(FaultSpec {
            seed: 0xF00D,
            ..fault
        }),
    };
    let roster: Roster = Roster::default();
    let outcome = run_loopback_soak(cfg, &registry, &roster, None).expect("soak runs");
    assert!(outcome.server_error.is_none(), "{:?}", outcome.server_error);
    assert!(
        outcome.report.sent > 100,
        "swarm did real work: {:?}",
        outcome.report
    );
    assert!(outcome.report.answers > 0);
    assert_eq!(roster.lock().len(), 64);

    let snap = registry.snapshot();
    let failures = soak_gate_failures(&snap, true, true);
    assert_eq!(failures, Vec::<String>::new());
    // Impairment really dropped things, and the gate still closed.
    assert!(
        snap.counter("faults.sock.to_server.dropped_total") > 0,
        "the drop fault must have fired"
    );
    assert!(
        snap.counter("server.net.malformed_total") > 0,
        "noise was seen"
    );
}
