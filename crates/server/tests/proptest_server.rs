//! Property tests for the directory server: answers must be sound
//! (every result actually satisfies the query) and consistent with the
//! published state.

use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::{FileEntry, Message};
use etw_edonkey::search::{NumCmp, SearchExpr};
use etw_edonkey::tags::{special, Tag, TagList, TagName};
use etw_server::engine::{EngineConfig, ServerEngine};
use etw_server::index::tokenize;
use proptest::prelude::*;

/// A published file description.
#[derive(Clone, Debug)]
struct Pub {
    id: u8,
    client: u32,
    words: Vec<String>,
    size: u32,
    audio: bool,
}

fn arb_pub() -> impl Strategy<Value = Pub> {
    (
        any::<u8>(),
        1u32..500,
        prop::collection::vec(
            prop_oneof![
                Just("alpha"),
                Just("beta"),
                Just("gamma"),
                Just("delta"),
                Just("omega")
            ],
            1..4,
        ),
        1u32..2_000_000_000,
        any::<bool>(),
    )
        .prop_map(|(id, client, words, size, audio)| Pub {
            id,
            client,
            words: words.into_iter().map(str::to_owned).collect(),
            size,
            audio,
        })
}

fn publish_all(pubs: &[Pub]) -> ServerEngine {
    let mut server = ServerEngine::new(EngineConfig {
        max_search_results: 1_000, // effectively uncapped for soundness checks
        ..EngineConfig::default()
    });
    for p in pubs {
        let name = format!(
            "{}.{}",
            p.words.join(" "),
            if p.audio { "mp3" } else { "avi" }
        );
        let entry = FileEntry {
            file_id: FileId([p.id; 16]),
            client_id: ClientId(p.client),
            port: 4662,
            tags: TagList(vec![
                Tag::str(special::FILENAME, name),
                Tag::u32(special::FILESIZE, p.size),
                Tag::str(special::FILETYPE, if p.audio { "Audio" } else { "Video" }),
            ]),
        };
        server.handle(
            ClientId(p.client),
            &Message::OfferFiles { files: vec![entry] },
        );
    }
    server
}

fn search(server: &mut ServerEngine, expr: SearchExpr) -> Vec<FileEntry> {
    match server
        .handle(ClientId(0xFFFF), &Message::SearchRequest { expr })
        .pop()
    {
        Some(Message::SearchResponse { results }) => results,
        other => panic!("{other:?}"),
    }
}

proptest! {
    /// Soundness + completeness of single-keyword search: the result set
    /// is exactly the set of indexed files whose *canonical* name (first
    /// announcement wins) contains the keyword token.
    #[test]
    fn keyword_search_exact(pubs in prop::collection::vec(arb_pub(), 0..40),
                            kw in prop_oneof![Just("alpha"), Just("omega"), Just("missing")]) {
        let mut server = publish_all(&pubs);
        let results = search(&mut server, SearchExpr::keyword(kw));
        // Expected: distinct file ids whose canonical (first-announced)
        // name contains the token.
        let mut seen = std::collections::HashSet::new();
        let mut expected = std::collections::HashSet::new();
        for p in &pubs {
            if seen.insert(p.id) && p.words.iter().any(|w| w == kw) {
                expected.insert(FileId([p.id; 16]));
            }
        }
        let got: std::collections::HashSet<FileId> =
            results.iter().map(|r| r.file_id).collect();
        prop_assert_eq!(got, expected);
    }

    /// Every result of an AND query matches BOTH keywords.
    #[test]
    fn and_results_sound(pubs in prop::collection::vec(arb_pub(), 0..40)) {
        let mut server = publish_all(&pubs);
        let results = search(
            &mut server,
            SearchExpr::and(SearchExpr::keyword("alpha"), SearchExpr::keyword("beta")),
        );
        for r in &results {
            let name = r.tags.filename().unwrap();
            let toks = tokenize(name);
            prop_assert!(toks.iter().any(|t| t == "alpha"), "{name}");
            prop_assert!(toks.iter().any(|t| t == "beta"), "{name}");
        }
    }

    /// Size constraints are honoured exactly.
    #[test]
    fn size_constraint_sound(pubs in prop::collection::vec(arb_pub(), 1..40),
                             bound in 1u32..2_000_000_000) {
        let mut server = publish_all(&pubs);
        let results = search(
            &mut server,
            SearchExpr::and(
                SearchExpr::keyword("alpha"),
                SearchExpr::MetaNum {
                    name: TagName::Special(special::FILESIZE),
                    cmp: NumCmp::Min,
                    value: bound,
                },
            ),
        );
        for r in &results {
            prop_assert!(r.tags.filesize().unwrap() >= bound);
        }
    }

    /// Source lists contain exactly the distinct announcing clients
    /// (up to the answer cap) and the status counters add up.
    #[test]
    fn sources_match_publishers(pubs in prop::collection::vec(arb_pub(), 1..60)) {
        let mut server = publish_all(&pubs);
        // Pick the first published id.
        let target = pubs[0].id;
        let expected: std::collections::HashSet<u32> = pubs
            .iter()
            .filter(|p| p.id == target)
            .map(|p| p.client)
            .collect();
        let answers = server.handle(
            ClientId(0xFFFF),
            &Message::GetSources { file_ids: vec![FileId([target; 16])] },
        );
        match &answers[..] {
            [Message::FoundSources { sources, .. }] => {
                let got: std::collections::HashSet<u32> =
                    sources.iter().map(|s| s.client_id.raw()).collect();
                if expected.len() <= 50 {
                    prop_assert_eq!(got, expected);
                } else {
                    prop_assert_eq!(got.len(), 50);
                    prop_assert!(got.is_subset(&expected));
                }
            }
            other => prop_assert!(false, "{:?}", other),
        }
        // Status counters: distinct files and at least the publishing
        // clients.
        let distinct_files: std::collections::HashSet<u8> =
            pubs.iter().map(|p| p.id).collect();
        match server
            .handle(ClientId(0xFFFF), &Message::StatusRequest { challenge: 0 })
            .pop()
        {
            Some(Message::StatusResponse { files, users, .. }) => {
                prop_assert_eq!(files as usize, distinct_files.len());
                let distinct_clients: std::collections::HashSet<u32> =
                    pubs.iter().map(|p| p.client).collect();
                // +1 for the querying client 0xFFFF itself.
                prop_assert!(users as usize >= distinct_clients.len());
            }
            other => prop_assert!(false, "{:?}", other),
        }
    }

    /// AND-NOT never returns a file matching the negated keyword.
    #[test]
    fn andnot_excludes(pubs in prop::collection::vec(arb_pub(), 0..40)) {
        let mut server = publish_all(&pubs);
        let results = search(
            &mut server,
            SearchExpr::Bool {
                op: etw_edonkey::search::BoolOp::AndNot,
                left: Box::new(SearchExpr::keyword("alpha")),
                right: Box::new(SearchExpr::keyword("beta")),
            },
        );
        for r in &results {
            let toks = tokenize(r.tags.filename().unwrap());
            prop_assert!(toks.iter().any(|t| t == "alpha"));
            prop_assert!(!toks.iter().any(|t| t == "beta"));
        }
    }
}
