//! The live ops surface: a tiny dependency-free blocking HTTP listener
//! serving the campaign's vitals.
//!
//! Two endpoints, both read-only:
//!
//! * `/health.json` — the current metric snapshot as JSON (counters,
//!   gauges, histogram summaries).
//! * `/metrics` — the same snapshot in the Prometheus text exposition,
//!   reusing [`etw_telemetry::Snapshot::render_prometheus`].
//!
//! The listener is deliberately primitive: one thread, sequential
//! blocking accepts, a bounded read with a timeout per connection. A
//! malformed request gets a `400`, an unknown path a `404`, and a
//! client that drops mid-request costs nothing but the read timeout —
//! the serve loop never dies with its connection. Request parsing is
//! pure ([`respond`]) so tests cover routing without sockets.

use etw_telemetry::{Registry, Snapshot};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// Where the ops endpoints get their snapshots. Implemented by
/// [`RegistryOps`] for a live registry; tests implement it with canned
/// strings.
pub trait OpsSource: Send + Sync {
    /// The `/health.json` body.
    fn health_json(&self) -> String;
    /// The `/metrics` body (Prometheus text exposition).
    fn metrics_text(&self) -> String;
}

/// An [`OpsSource`] reading a live [`Registry`].
pub struct RegistryOps {
    registry: Registry,
}

impl RegistryOps {
    /// Serves snapshots of `registry`.
    pub fn new(registry: Registry) -> RegistryOps {
        RegistryOps { registry }
    }
}

impl OpsSource for RegistryOps {
    fn health_json(&self) -> String {
        snapshot_health_json(&self.registry.snapshot())
    }

    fn metrics_text(&self) -> String {
        self.registry.snapshot().render_prometheus()
    }
}

/// Renders a snapshot as the `/health.json` document: counters and
/// gauges verbatim, histograms summarised (count, sum, mean, p50, p99,
/// min, max).
pub fn snapshot_health_json(snap: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        let comma = if i == 0 { "" } else { "," };
        let _ = write!(out, "{comma}\"{}\":{v}", json_escape(name));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        let comma = if i == 0 { "" } else { "," };
        let _ = write!(out, "{comma}\"{}\":{v}", json_escape(name));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        let comma = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{comma}\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{},\"min\":{},\"max\":{}}}",
            json_escape(name),
            h.count,
            h.sum,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.99),
            h.min,
            h.max
        );
    }
    out.push_str("}}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builds the full HTTP response for one request head (everything up
/// to the blank line). Pure, so tests exercise the routing and error
/// paths without a socket. Returns `(status, response_bytes)`.
// etwlint: sink(ops-http): body is served to any HTTP client
pub fn respond(request_head: &str, src: &dyn OpsSource) -> (u16, Vec<u8>) {
    let mut parts = request_head.lines().next().unwrap_or("").split_whitespace();
    let (method, path, version) = (parts.next(), parts.next(), parts.next());
    let (Some(method), Some(path), Some(version)) = (method, path, version) else {
        return error_response(400, "malformed request line");
    };
    if !version.starts_with("HTTP/") {
        return error_response(400, "not an HTTP request");
    }
    if method != "GET" {
        return error_response(405, "only GET is supported");
    }
    match path {
        "/health.json" => ok_response("application/json", src.health_json().into_bytes()),
        "/metrics" => ok_response("text/plain; version=0.0.4", src.metrics_text().into_bytes()),
        "/" => ok_response(
            "text/plain",
            b"etw ops surface: GET /health.json | GET /metrics\n".to_vec(),
        ),
        _ => error_response(404, "unknown path (try /health.json or /metrics)"),
    }
}

fn ok_response(content_type: &str, body: Vec<u8>) -> (u16, Vec<u8>) {
    let mut out = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(&body);
    (200, out)
}

fn error_response(status: u16, reason: &str) -> (u16, Vec<u8>) {
    let text = match status {
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let body = format!("{status} {text}: {reason}\n");
    (
        status,
        format!(
            "HTTP/1.1 {status} {text}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .into_bytes(),
    )
}

/// Upper bound on a request head; anything longer is rejected as
/// malformed rather than buffered.
const MAX_REQUEST_BYTES: usize = 4096;

/// Per-connection read deadline, so a client that connects and goes
/// silent cannot wedge the (single-threaded) serve loop.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// A running ops listener; dropping it leaks the thread, call
/// [`OpsServer::shutdown`] for an orderly stop.
pub struct OpsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl OpsServer {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        // ordering: Relaxed — an advisory flag; the wake-up handshake is
        // the loopback connection below, not a memory ordering.
        self.stop.store(true, Relaxed);
        // Unblock the accept call with one last local connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9100`, port 0 for an ephemeral port)
/// and serves [`OpsSource`] snapshots until [`OpsServer::shutdown`].
// etwlint: sink(ops-http): spawns the listener that serves responses
pub fn serve(addr: &str, src: Arc<dyn OpsSource>) -> std::io::Result<OpsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            // ordering: Relaxed — see shutdown: the flag is advisory and
            // carries no data; a stale read just serves one extra request.
            if stop_flag.load(Relaxed) {
                break;
            }
            if let Ok(stream) = conn {
                // A broken connection only fails this iteration.
                let _ = handle_connection(stream, src.as_ref());
            }
        }
    });
    Ok(OpsServer {
        addr: local,
        stop,
        thread: Some(thread),
    })
}

fn handle_connection(mut stream: TcpStream, src: &dyn OpsSource) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut buf = [0u8; MAX_REQUEST_BYTES];
    let mut filled = 0usize;
    // Read until the header terminator, the buffer limit, EOF, or the
    // timeout — whichever comes first. A client that drops mid-request
    // simply ends the read; whatever arrived is parsed (and likely
    // answered 400).
    loop {
        if filled == buf.len() {
            break;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                if buf[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break, // timeout or reset: answer what we have
        }
    }
    let head = String::from_utf8_lossy(&buf[..filled]);
    let (_, response) = respond(&head, src);
    stream.write_all(&response)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Canned;
    impl OpsSource for Canned {
        fn health_json(&self) -> String {
            "{\"counters\":{}}".to_owned()
        }
        fn metrics_text(&self) -> String {
            "etw_up 1\n".to_owned()
        }
    }

    #[test]
    fn routes_and_rejects() {
        let (s, body) = respond("GET /health.json HTTP/1.1\r\n\r\n", &Canned);
        assert_eq!(s, 200);
        assert!(String::from_utf8_lossy(&body).contains("application/json"));
        let (s, _) = respond("GET /metrics HTTP/1.1\r\n", &Canned);
        assert_eq!(s, 200);
        let (s, _) = respond("GET / HTTP/1.1\r\n", &Canned);
        assert_eq!(s, 200);
        let (s, _) = respond("GET /nope HTTP/1.1\r\n", &Canned);
        assert_eq!(s, 404);
        let (s, _) = respond("POST /metrics HTTP/1.1\r\n", &Canned);
        assert_eq!(s, 405);
        let (s, _) = respond("garbage", &Canned);
        assert_eq!(s, 400);
        let (s, _) = respond("", &Canned);
        assert_eq!(s, 400);
        let (s, _) = respond("GET /metrics SMTP", &Canned);
        assert_eq!(s, 400);
    }

    #[test]
    fn health_json_shape() {
        let registry = Registry::new();
        registry.counter("a.b").add(3);
        registry.gauge("g").set(-4);
        registry.histogram("h").record(100);
        let json = snapshot_health_json(&registry.snapshot());
        assert!(json.contains("\"a.b\":3"));
        assert!(json.contains("\"g\":-4"));
        assert!(json.contains("\"count\":1"));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
