//! The `.etwtrace` dump format: a compact binary container for a
//! merged flight-recorder dump, plus the pretty-printer behind
//! `etwtool trace-dump`.
//!
//! Layout (all little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "ETWTRACE"
//! 8       4     version (currently 1)
//! 12      4     event count N
//! 16      32×N  events: virtual_us, end_wall_ns, dur_ns, packed (u64 LE each)
//! ```

use crate::SpanEvent;
use std::io::Write;
use std::path::Path;

/// File magic, first eight bytes of every dump.
pub const MAGIC: &[u8; 8] = b"ETWTRACE";

/// Current format version.
pub const VERSION: u32 = 1;

/// Bytes per serialised event.
pub const EVENT_BYTES: usize = 32;

/// Why a dump failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceFileError {
    /// Shorter than the fixed header.
    TooShort,
    /// The first eight bytes are not [`MAGIC`].
    BadMagic,
    /// A version this reader does not understand.
    BadVersion(u32),
    /// The body length disagrees with the header's event count.
    Truncated {
        /// Events the header promised.
        expected: u32,
        /// Whole events actually present.
        got: u32,
    },
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::TooShort => write!(f, "shorter than the 16-byte header"),
            TraceFileError::BadMagic => write!(f, "missing ETWTRACE magic"),
            TraceFileError::BadVersion(v) => write!(f, "unsupported version {v}"),
            TraceFileError::Truncated { expected, got } => {
                write!(f, "header promises {expected} events but body holds {got}")
            }
        }
    }
}

impl std::error::Error for TraceFileError {}

/// Serialises a dump to bytes.
pub fn to_bytes(events: &[SpanEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + events.len() * EVENT_BYTES);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(events.len() as u32).to_le_bytes());
    for ev in events {
        out.extend_from_slice(&ev.virtual_us.to_le_bytes());
        out.extend_from_slice(&ev.end_wall_ns.to_le_bytes());
        out.extend_from_slice(&ev.dur_ns.to_le_bytes());
        out.extend_from_slice(&ev.packed.to_le_bytes());
    }
    out
}

/// Parses a dump from bytes.
pub fn from_bytes(bytes: &[u8]) -> Result<Vec<SpanEvent>, TraceFileError> {
    if bytes.len() < 16 {
        return Err(TraceFileError::TooShort);
    }
    if &bytes[..8] != MAGIC {
        return Err(TraceFileError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(TraceFileError::BadVersion(version));
    }
    let expected = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let body = &bytes[16..];
    let got = (body.len() / EVENT_BYTES) as u32;
    if got < expected || !body.len().is_multiple_of(EVENT_BYTES) {
        return Err(TraceFileError::Truncated { expected, got });
    }
    let word =
        |chunk: &[u8], i: usize| u64::from_le_bytes(chunk[i * 8..(i + 1) * 8].try_into().unwrap());
    Ok(body
        .chunks_exact(EVENT_BYTES)
        .take(expected as usize)
        .map(|c| SpanEvent {
            virtual_us: word(c, 0),
            end_wall_ns: word(c, 1),
            dur_ns: word(c, 2),
            packed: word(c, 3),
        })
        .collect())
}

/// Writes a dump to `path` (create/truncate).
// etwlint: sink(trace): flight-recorder dump written to disk
pub fn write_file(path: &Path, events: &[SpanEvent]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&to_bytes(events))?;
    f.flush()
}

/// Reads and parses a dump from `path`.
pub fn read_file(path: &Path) -> Result<Vec<SpanEvent>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))
}

/// Renders a dump as the `etwtool trace-dump` table: one line per
/// event, wall-ordered, with both clocks and the decoded stage, kind,
/// worker and argument.
pub fn render_dump(events: &[SpanEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>14} {:>14} {:>11} {:<10} {:<10} {:>6} {:>10}",
        "wall_ns", "virtual_us", "dur_ns", "stage", "kind", "worker", "arg"
    );
    for ev in events {
        let _ = writeln!(
            out,
            "{:>14} {:>14} {:>11} {:<10} {:<10} {:>6} {:>10}",
            ev.end_wall_ns,
            ev.virtual_us,
            ev.dur_ns,
            ev.stage().map_or("?", |s| s.name()),
            ev.kind().map_or("?", |k| k.name()),
            ev.worker(),
            ev.arg()
        );
    }
    let _ = writeln!(out, "{} event(s)", events.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanKind, StageId};

    fn sample() -> Vec<SpanEvent> {
        vec![
            SpanEvent::new(StageId::Decode, SpanKind::Service, 1, 42, 1_000, 500, 120),
            SpanEvent::new(StageId::Shard, SpanKind::Crash, 2, 4017, 2_000, 900, 0),
        ]
    }

    #[test]
    fn round_trips_through_bytes() {
        let events = sample();
        let bytes = to_bytes(&events);
        assert_eq!(bytes.len(), 16 + 2 * EVENT_BYTES);
        assert_eq!(from_bytes(&bytes).unwrap(), events);
    }

    #[test]
    fn empty_dump_round_trips() {
        let bytes = to_bytes(&[]);
        assert_eq!(from_bytes(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn rejects_corrupt_inputs() {
        assert_eq!(from_bytes(b"short"), Err(TraceFileError::TooShort));
        let mut bad = to_bytes(&sample());
        bad[0] = b'X';
        assert_eq!(from_bytes(&bad), Err(TraceFileError::BadMagic));
        let mut bad = to_bytes(&sample());
        bad[8] = 9;
        assert_eq!(from_bytes(&bad), Err(TraceFileError::BadVersion(9)));
        let good = to_bytes(&sample());
        let torn = &good[..good.len() - 8];
        assert!(matches!(
            from_bytes(torn),
            Err(TraceFileError::Truncated {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn file_round_trip_and_render() {
        let dir = std::env::temp_dir().join("etwtrace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight_test.etwtrace");
        let events = sample();
        write_file(&path, &events).unwrap();
        assert_eq!(read_file(&path).unwrap(), events);
        let text = render_dump(&events);
        assert!(text.contains("decode"));
        assert!(text.contains("CRASH"));
        assert!(text.contains("4017"));
        assert!(text.contains("2 event(s)"));
        std::fs::remove_file(&path).ok();
    }
}
