//! Stage-level tracing for the capture machine.
//!
//! The telemetry crate answers *how much* (counters, histograms); this
//! crate answers *where time goes* while a campaign runs, which is what
//! the paper's unattended ten-week capture depended on. Three layers:
//!
//! * [`StageProfile`] — per-stage queue-wait vs service-time split,
//!   `busy_ns`/`idle_ns` accumulation and a derived utilisation gauge,
//!   all landing in the existing [`etw_telemetry`] registry under
//!   `stage.<name>.latency_ns`, `stage.<name>.queue_wait_ns`,
//!   `stage.<name>.busy_ns_total` / `idle_ns_total` and
//!   `stage.<name>.util_permille`. A pipeline thread drives it with the
//!   same zero-disabled-cost idiom as [`etw_telemetry::Histogram`]:
//!   timers are `None` when the registry is disabled, so the untraced
//!   hot path pays one branch per update.
//! * [`ring`] — the flight recorder: one bounded single-writer
//!   [`ring::SpanRing`] per worker, seqlock slots, zero allocation in
//!   steady state. The supervisor merges every ring with
//!   [`ring::FlightRecorder::dump`] at a crash, restart, shed or
//!   checkpoint cut, without stopping the writers.
//! * [`file`] + [`ops`] — the operator surfaces: the compact
//!   `.etwtrace` binary dump (`etwtool trace-dump` pretty-prints it)
//!   and a dependency-free blocking HTTP listener serving
//!   `/health.json` and `/metrics`.
//!
//! Every span event carries both clocks: the item's **virtual**
//! microsecond timestamp and the **wall** nanosecond the span ended
//! (monotonic, relative to the process's trace epoch). This crate is
//! the one place outside `etw-telemetry` allowed to read the wall
//! clock — it owns the wall/virtual boundary for tracing, and the
//! etwlint `no-wall-clock` exemption list says so.

#![warn(missing_docs)]

use etw_telemetry::{Counter, Gauge, Histogram, Registry};
use std::sync::OnceLock;
use std::time::Instant;

pub mod file;
pub mod ops;
pub mod ring;

/// Monotonic trace epoch: every wall timestamp in a span event is
/// nanoseconds since the first clock read in this process, so merged
/// dumps from different worker threads order correctly.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Current wall time in nanoseconds since the trace epoch.
#[inline]
pub fn wall_now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// The pipeline stages a span can belong to, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum StageId {
    /// The producer routing frames into the decode pool.
    Producer = 0,
    /// A supervised decode worker.
    Decode = 1,
    /// The sequence-reorder buffer on the sink thread.
    Reorder = 2,
    /// The serial anonymise step (1-shard tail).
    Anonymize = 3,
    /// An anonymiser shard worker.
    Shard = 4,
    /// The assembler remapping shard results into final records.
    Assemble = 5,
    /// The batch formatter (zero-alloc XML encoder).
    Format = 6,
    /// The dataset writer.
    Write = 7,
    /// The worker supervisor (crash/restart/backoff decisions).
    Supervisor = 8,
    /// A checkpoint cut.
    Checkpoint = 9,
    /// The real-socket serving loop (ingress classify + answer).
    Net = 10,
    /// The client-swarm load harness driving the serving loop.
    Swarm = 11,
}

impl StageId {
    /// Every stage, in pipeline order.
    pub const ALL: [StageId; 12] = [
        StageId::Producer,
        StageId::Decode,
        StageId::Reorder,
        StageId::Anonymize,
        StageId::Shard,
        StageId::Assemble,
        StageId::Format,
        StageId::Write,
        StageId::Supervisor,
        StageId::Checkpoint,
        StageId::Net,
        StageId::Swarm,
    ];

    /// The short name used in metric names (`stage.<name>.*`) and dumps.
    pub fn name(self) -> &'static str {
        match self {
            StageId::Producer => "producer",
            StageId::Decode => "decode",
            StageId::Reorder => "reorder",
            StageId::Anonymize => "anonymize",
            StageId::Shard => "shard",
            StageId::Assemble => "assemble",
            StageId::Format => "format",
            StageId::Write => "write",
            StageId::Supervisor => "supervisor",
            StageId::Checkpoint => "checkpoint",
            StageId::Net => "net",
            StageId::Swarm => "swarm",
        }
    }

    /// Inverse of the `repr(u8)` discriminant, for decoding dumps.
    pub fn from_u8(v: u8) -> Option<StageId> {
        StageId::ALL.into_iter().find(|s| *s as u8 == v)
    }
}

/// What a span event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// A completed unit of stage work (`dur_ns` is the service time).
    Service = 0,
    /// Time spent blocked waiting for input (`dur_ns` is the wait).
    Wait = 1,
    /// An injected worker crash observed by the supervisor.
    Crash = 2,
    /// A supervisor restart of a crashed worker.
    Restart = 3,
    /// A frame shed by the producer under overload.
    Shed = 4,
    /// A checkpoint cut.
    Checkpoint = 5,
    /// A worker degraded permanently (restart budget exhausted).
    Degraded = 6,
}

impl SpanKind {
    /// The label used by the pretty-printer.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Service => "service",
            SpanKind::Wait => "wait",
            SpanKind::Crash => "CRASH",
            SpanKind::Restart => "restart",
            SpanKind::Shed => "shed",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Degraded => "DEGRADED",
        }
    }

    /// Inverse of the `repr(u8)` discriminant, for decoding dumps.
    pub fn from_u8(v: u8) -> Option<SpanKind> {
        [
            SpanKind::Service,
            SpanKind::Wait,
            SpanKind::Crash,
            SpanKind::Restart,
            SpanKind::Shed,
            SpanKind::Checkpoint,
            SpanKind::Degraded,
        ]
        .into_iter()
        .find(|k| *k as u8 == v)
    }
}

/// One completed span or point event: 32 bytes, fixed layout, the unit
/// the flight recorder stores and the `.etwtrace` format serialises.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SpanEvent {
    /// Virtual time of the item the stage was handling, in µs.
    pub virtual_us: u64,
    /// Wall time the span ended, in ns since the trace epoch.
    pub end_wall_ns: u64,
    /// Span duration in ns (0 for point events like a crash).
    pub dur_ns: u64,
    /// `stage | kind << 8 | worker << 16 | arg << 32` — see
    /// [`SpanEvent::pack`].
    pub packed: u64,
}

impl SpanEvent {
    /// Builds the packed word from its fields. `worker` identifies the
    /// thread within the stage; `arg` is stage-specific (items in the
    /// batch, frame ordinal at a crash, queue depth at a shed).
    pub fn pack(stage: StageId, kind: SpanKind, worker: u16, arg: u32) -> u64 {
        stage as u64 | (kind as u64) << 8 | (worker as u64) << 16 | (arg as u64) << 32
    }

    /// A fully-populated event.
    pub fn new(
        stage: StageId,
        kind: SpanKind,
        worker: u16,
        arg: u32,
        virtual_us: u64,
        end_wall_ns: u64,
        dur_ns: u64,
    ) -> SpanEvent {
        SpanEvent {
            virtual_us,
            end_wall_ns,
            dur_ns,
            packed: SpanEvent::pack(stage, kind, worker, arg),
        }
    }

    /// The stage this event belongs to, if the packed word is valid.
    pub fn stage(&self) -> Option<StageId> {
        StageId::from_u8((self.packed & 0xff) as u8)
    }

    /// The event kind, if the packed word is valid.
    pub fn kind(&self) -> Option<SpanKind> {
        SpanKind::from_u8((self.packed >> 8 & 0xff) as u8)
    }

    /// The worker index within the stage.
    pub fn worker(&self) -> u16 {
        (self.packed >> 16 & 0xffff) as u16
    }

    /// The stage-specific argument.
    pub fn arg(&self) -> u32 {
        (self.packed >> 32) as u32
    }
}

/// A pending wall-clock measurement from [`StageProfile::begin`];
/// `None` when the profile is disabled, so the hot path never reads the
/// clock for a dropped measurement.
#[derive(Debug)]
pub struct StageTimer(Option<Instant>);

impl StageTimer {
    /// A timer that records nothing (what a disabled profile returns).
    pub fn noop() -> StageTimer {
        StageTimer(None)
    }
}

/// Per-stage wall-time accounting: the queue-wait vs service-time
/// split, cumulative busy/idle nanoseconds and the derived utilisation
/// gauge. One profile per stage thread; all handles are lock-free.
///
/// The driving pattern, once per loop iteration:
///
/// ```
/// # use etw_telemetry::Registry;
/// # use etw_trace::{StageId, StageProfile};
/// # let registry = Registry::new();
/// let profile = StageProfile::new(&registry, StageId::Format);
/// let mut t = profile.begin();       // before blocking on input
/// /* item = rx.recv() */
/// profile.note_wait(&mut t);         // wait ends, service begins
/// /* process(item) */
/// profile.note_service(&mut t, 1);   // service ends; next wait begins
/// # let snap = registry.snapshot();
/// # assert_eq!(snap.histogram("stage.format.latency_ns").unwrap().count, 1);
/// ```
#[derive(Clone, Debug)]
pub struct StageProfile {
    latency_ns: Histogram,
    queue_wait_ns: Histogram,
    busy_ns: Counter,
    idle_ns: Counter,
    util: Gauge,
}

impl StageProfile {
    /// Registers the stage's metrics (`stage.<name>.latency_ns`,
    /// `.queue_wait_ns`, `.busy_ns_total`, `.idle_ns_total`,
    /// `.util_permille`). All handles are no-ops for a disabled
    /// registry.
    pub fn new(registry: &Registry, stage: StageId) -> StageProfile {
        let name = stage.name();
        StageProfile {
            latency_ns: registry.histogram(&format!("stage.{name}.latency_ns")),
            queue_wait_ns: registry.histogram(&format!("stage.{name}.queue_wait_ns")),
            busy_ns: registry.counter(&format!("stage.{name}.busy_ns_total")),
            idle_ns: registry.counter(&format!("stage.{name}.idle_ns_total")),
            util: registry.gauge(&format!("stage.{name}.util_permille")),
        }
    }

    /// A profile that records nothing.
    pub fn noop() -> StageProfile {
        StageProfile {
            latency_ns: Histogram::noop(),
            queue_wait_ns: Histogram::noop(),
            busy_ns: Counter::noop(),
            idle_ns: Counter::noop(),
            util: Gauge::noop(),
        }
    }

    /// Whether measurements land anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.latency_ns.is_enabled()
    }

    /// Starts a measurement; reads the clock only when enabled.
    #[inline]
    pub fn begin(&self) -> StageTimer {
        if self.is_enabled() {
            StageTimer(Some(Instant::now()))
        } else {
            StageTimer(None)
        }
    }

    /// Ends a queue-wait: the elapsed time lands in
    /// `queue_wait_ns` + `idle_ns_total`, and the timer restarts for
    /// the service measurement. Returns the waited nanoseconds.
    #[inline]
    pub fn note_wait(&self, t: &mut StageTimer) -> u64 {
        self.note(t, &self.queue_wait_ns, &self.idle_ns)
    }

    /// Ends a service span: the elapsed time lands in `latency_ns` +
    /// `busy_ns_total`, the utilisation gauge is refreshed, and the
    /// timer restarts for the next wait. Returns the service
    /// nanoseconds. `_items` documents the batch size at the call site;
    /// item counts are tracked by the stage's own `*_total` counters.
    #[inline]
    pub fn note_service(&self, t: &mut StageTimer, _items: u64) -> u64 {
        let ns = self.note(t, &self.latency_ns, &self.busy_ns);
        if ns > 0 {
            self.refresh_util();
        }
        ns
    }

    #[inline]
    fn note(&self, t: &mut StageTimer, hist: &Histogram, total: &Counter) -> u64 {
        let Some(started) = t.0 else { return 0 };
        let now = Instant::now();
        let ns = now.duration_since(started).as_nanos() as u64;
        hist.record(ns);
        total.add(ns);
        t.0 = Some(now);
        ns
    }

    /// Recomputes `util_permille` = busy / (busy + idle) × 1000 from
    /// the cumulative counters.
    pub fn refresh_util(&self) {
        let busy = self.busy_ns.get();
        let idle = self.idle_ns.get();
        if let Some(permille) = busy.saturating_mul(1000).checked_div(busy + idle) {
            self.util.set(permille as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_event_packs_and_unpacks() {
        let ev = SpanEvent::new(
            StageId::Shard,
            SpanKind::Crash,
            2,
            4017,
            123_456,
            789,
            40_000,
        );
        assert_eq!(ev.stage(), Some(StageId::Shard));
        assert_eq!(ev.kind(), Some(SpanKind::Crash));
        assert_eq!(ev.worker(), 2);
        assert_eq!(ev.arg(), 4017);
        assert_eq!(ev.virtual_us, 123_456);
        assert_eq!(ev.dur_ns, 40_000);
    }

    #[test]
    fn stage_ids_round_trip() {
        for s in StageId::ALL {
            assert_eq!(StageId::from_u8(s as u8), Some(s));
            assert!(!s.name().is_empty());
        }
        assert_eq!(StageId::from_u8(200), None);
        for k in [
            SpanKind::Service,
            SpanKind::Wait,
            SpanKind::Crash,
            SpanKind::Restart,
            SpanKind::Shed,
            SpanKind::Checkpoint,
            SpanKind::Degraded,
        ] {
            assert_eq!(SpanKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(SpanKind::from_u8(200), None);
    }

    #[test]
    fn profile_records_wait_service_split() {
        let registry = Registry::new();
        let profile = StageProfile::new(&registry, StageId::Decode);
        assert!(profile.is_enabled());
        let mut t = profile.begin();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let waited = profile.note_wait(&mut t);
        assert!(waited >= 1_000_000, "slept 1ms, waited {waited}ns");
        let served = profile.note_service(&mut t, 10);
        let snap = registry.snapshot();
        assert_eq!(
            snap.histogram("stage.decode.queue_wait_ns").unwrap().count,
            1
        );
        assert_eq!(snap.histogram("stage.decode.latency_ns").unwrap().count, 1);
        assert_eq!(snap.counter("stage.decode.idle_ns_total"), waited);
        assert_eq!(snap.counter("stage.decode.busy_ns_total"), served);
        let util = snap.gauge("stage.decode.util_permille");
        assert!((0..=1000).contains(&util), "permille out of range: {util}");
    }

    #[test]
    fn disabled_profile_is_inert() {
        let profile = StageProfile::new(&Registry::disabled(), StageId::Write);
        assert!(!profile.is_enabled());
        let mut t = profile.begin();
        assert_eq!(profile.note_wait(&mut t), 0);
        assert_eq!(profile.note_service(&mut t, 5), 0);
        let noop = StageProfile::noop();
        assert!(!noop.is_enabled());
        let mut t = StageTimer::noop();
        assert_eq!(noop.note_service(&mut t, 1), 0);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let a = wall_now_ns();
        let b = wall_now_ns();
        assert!(b >= a);
    }
}
