//! The flight recorder: bounded, lock-free span rings.
//!
//! Each worker thread owns one [`SpanRing`] — a fixed-size ring of
//! seqlock slots holding the worker's last N [`SpanEvent`]s. Writes are
//! single-writer and wait-free: mark the slot's sequence word odd,
//! store the four payload words, mark it even. A reader (the
//! supervisor's dump) never blocks a writer: it reads the sequence
//! word, copies the payload, re-reads the sequence word, and discards
//! the slot if the two reads disagree or the first was odd — a torn or
//! in-flight slot is *skipped*, never surfaced.
//!
//! The write path allocates nothing and the ring never grows: memory is
//! bounded at construction to `slots × 40` bytes per worker (four
//! payload words plus the sequence word). The stepwise API
//! ([`SpanRing::begin_write`] / [`SpanRing::write_payload`] /
//! [`SpanRing::commit_write`]) exists so the `etw-interleave` model can
//! drive the protocol one atomic step at a time and prove the dump cut
//! observes no torn or lost span on any schedule.

use crate::SpanEvent;
use std::sync::atomic::{
    AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};
use std::sync::Arc;

/// Words of payload per slot ([`SpanEvent`] is four `u64`s).
const PAYLOAD_WORDS: usize = 4;

struct Slot {
    /// Seqlock word: `2g+1` while generation `g` is being written,
    /// `2g+2` once it is stable, 0 when never written.
    seq: AtomicU64,
    words: [AtomicU64; PAYLOAD_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A write in progress, returned by [`SpanRing::begin_write`] and
/// consumed by [`SpanRing::commit_write`]. Holding one does not block
/// readers; an uncommitted ticket just leaves its slot marked odd, and
/// dumps skip it.
#[derive(Debug)]
pub struct WriteTicket {
    index: usize,
    generation: u64,
}

/// A bounded single-writer span ring with seqlock slots.
///
/// One producer thread calls [`SpanRing::record`] (or the stepwise
/// triple); any number of reader threads may call
/// [`SpanRing::snapshot`] concurrently. Two threads must never write
/// the same ring — give each worker its own via [`FlightRecorder`].
#[derive(Debug)]
pub struct SpanRing {
    slots: Box<[Slot]>,
    /// Next generation to write (generation g lands in slot g % len).
    head: AtomicU64,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // ordering: relaxed — debug display only; no payload is read.
        let seq = self.seq.load(Relaxed);
        f.debug_struct("Slot").field("seq", &seq).finish()
    }
}

impl SpanRing {
    /// A ring keeping the last `slots` events (minimum 1).
    pub fn new(slots: usize) -> SpanRing {
        let n = slots.max(1);
        SpanRing {
            slots: (0..n).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (committed generations).
    pub fn recorded(&self) -> u64 {
        // ordering: acquire — pairs with the release store in
        // commit_write so a reader that sees generation g also sees
        // slot g-1's committed payload.
        self.head.load(Acquire)
    }

    /// Records one event: the whole seqlock write protocol in one call.
    /// Wait-free, allocation-free; overwrites the oldest event once the
    /// ring is full.
    #[inline]
    pub fn record(&self, ev: SpanEvent) {
        let ticket = self.begin_write();
        self.write_payload(&ticket, ev);
        self.commit_write(ticket);
    }

    /// Step 1 of the write protocol: claims the next slot and marks its
    /// sequence word odd, so concurrent dumps skip it. Public for the
    /// interleave model; production code uses [`SpanRing::record`].
    pub fn begin_write(&self) -> WriteTicket {
        // ordering: relaxed — single writer; the head value is only
        // advanced by this thread, and publication happens via the
        // slot's seq word and the release store in commit_write.
        let generation = self.head.load(Relaxed);
        let index = (generation % self.slots.len() as u64) as usize;
        // ordering: release — readers that observe the odd value must
        // also observe it before any payload stores that follow.
        self.slots[index].seq.store(2 * generation + 1, Release);
        WriteTicket { index, generation }
    }

    /// Step 2: stores the payload words into the claimed slot.
    // etwlint: sink(trace): event payload stored in the dumpable ring
    pub fn write_payload(&self, ticket: &WriteTicket, ev: SpanEvent) {
        let slot = &self.slots[ticket.index];
        let words = [ev.virtual_us, ev.end_wall_ns, ev.dur_ns, ev.packed];
        for (w, v) in slot.words.iter().zip(words) {
            // ordering: relaxed — the words are published by the release
            // store of the even sequence value in commit_write; until
            // then readers reject the slot as odd.
            w.store(v, Relaxed);
        }
    }

    /// Step 3: marks the slot even (stable) and advances the head.
    pub fn commit_write(&self, ticket: WriteTicket) {
        let slot = &self.slots[ticket.index];
        // ordering: release — publishes the payload stores above to any
        // reader that acquires this even sequence value.
        slot.seq.store(2 * ticket.generation + 2, Release);
        // ordering: release — publishes the committed generation count.
        self.head.store(ticket.generation + 1, Release);
    }

    /// Copies every stable event out of the ring, oldest first. Slots
    /// that are mid-write (odd sequence) or that change under the copy
    /// (torn) are skipped — the dump only ever contains events that
    /// were fully committed.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let mut out: Vec<(u64, SpanEvent)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            // ordering: acquire — pairs with commit_write's release so
            // the payload reads below see the stores of generation
            // (s1-2)/2 when s1 is even.
            let s1 = slot.seq.load(Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or a write is in flight
            }
            // ordering: relaxed — bracketed by the two acquire loads of
            // the sequence word; a torn read is rejected by s1 != s2.
            let word = |k: usize| slot.words[k].load(Relaxed);
            let ev = SpanEvent {
                virtual_us: word(0),
                end_wall_ns: word(1),
                dur_ns: word(2),
                packed: word(3),
            };
            // ordering: acquire — orders the payload reads above before
            // this re-check, completing the seqlock read protocol.
            let s2 = slot.seq.load(Acquire);
            if s1 != s2 {
                continue; // overwritten while copying
            }
            out.push(((s1 - 2) / 2, ev));
        }
        out.sort_by_key(|(generation, _)| *generation);
        out.into_iter().map(|(_, ev)| ev).collect()
    }
}

/// The merged flight recorder: one [`SpanRing`] per worker thread, plus
/// the merge that a supervisor dumps on a crash, restart, shed or
/// checkpoint cut. Memory is bounded at construction and never grows.
#[derive(Debug)]
pub struct FlightRecorder {
    rings: Vec<Arc<SpanRing>>,
}

impl FlightRecorder {
    /// A recorder with `workers` rings of `slots` events each.
    pub fn new(workers: usize, slots: usize) -> FlightRecorder {
        FlightRecorder {
            rings: (0..workers.max(1))
                .map(|_| Arc::new(SpanRing::new(slots)))
                .collect(),
        }
    }

    /// Number of per-worker rings.
    pub fn workers(&self) -> usize {
        self.rings.len()
    }

    /// The ring owned by worker `i` (clamped into range so a stage can
    /// hand out rings without bounds bookkeeping).
    pub fn ring(&self, i: usize) -> Arc<SpanRing> {
        self.rings[i % self.rings.len()].clone()
    }

    /// Merges every ring's stable events, ordered by wall end time.
    /// Safe to call while writers are still recording; in-flight spans
    /// are skipped, committed ones are never lost.
    pub fn dump(&self) -> Vec<SpanEvent> {
        let mut all: Vec<SpanEvent> = Vec::new();
        for ring in &self.rings {
            all.extend(ring.snapshot());
        }
        all.sort_by_key(|ev| ev.end_wall_ns);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanKind, StageId};

    fn ev(i: u64) -> SpanEvent {
        SpanEvent::new(
            StageId::Decode,
            SpanKind::Service,
            0,
            i as u32,
            i,
            i * 10,
            7,
        )
    }

    #[test]
    fn ring_keeps_the_last_n_in_order() {
        let ring = SpanRing::new(4);
        for i in 0..10u64 {
            ring.record(ev(i));
        }
        assert_eq!(ring.recorded(), 10);
        let snap = ring.snapshot();
        let args: Vec<u32> = snap.iter().map(|e| e.arg()).collect();
        assert_eq!(args, vec![6, 7, 8, 9], "last 4 of 10, oldest first");
    }

    #[test]
    fn partial_ring_returns_only_written_slots() {
        let ring = SpanRing::new(8);
        ring.record(ev(1));
        ring.record(ev(2));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].arg(), 1);
        assert_eq!(snap[1].arg(), 2);
    }

    #[test]
    fn in_flight_write_is_skipped_not_torn() {
        let ring = SpanRing::new(2);
        ring.record(ev(5));
        let ticket = ring.begin_write();
        ring.write_payload(&ticket, ev(6));
        // Not committed: the dump must contain only the committed event.
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].arg(), 5);
        ring.commit_write(ticket);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[1].arg(), 6);
    }

    #[test]
    fn recorder_merges_by_wall_time() {
        let rec = FlightRecorder::new(2, 4);
        rec.ring(0).record(SpanEvent::new(
            StageId::Decode,
            SpanKind::Service,
            0,
            1,
            0,
            30,
            0,
        ));
        rec.ring(1).record(SpanEvent::new(
            StageId::Shard,
            SpanKind::Service,
            1,
            2,
            0,
            10,
            0,
        ));
        rec.ring(0).record(SpanEvent::new(
            StageId::Decode,
            SpanKind::Crash,
            0,
            3,
            0,
            20,
            0,
        ));
        let dump = rec.dump();
        let args: Vec<u32> = dump.iter().map(|e| e.arg()).collect();
        assert_eq!(args, vec![2, 3, 1], "merged ordered by end_wall_ns");
    }

    #[test]
    fn concurrent_writers_and_dumper_lose_nothing_committed() {
        // A stress sibling of the exhaustive interleave model: two
        // writer threads fill their own rings while the main thread
        // dumps continuously; every dumped event must be one that a
        // writer actually committed (no torn payloads).
        let rec = Arc::new(FlightRecorder::new(2, 64));
        let mut handles = Vec::new();
        for w in 0..2u16 {
            let ring = rec.ring(w as usize);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    ring.record(SpanEvent::new(
                        StageId::Decode,
                        SpanKind::Service,
                        w,
                        i as u32,
                        i,
                        crate::wall_now_ns(),
                        i,
                    ));
                }
            }));
        }
        for _ in 0..200 {
            for ev in rec.dump() {
                // A torn event would decode an impossible worker index
                // or mismatch arg/dur (both derived from i).
                assert!(ev.worker() < 2);
                assert_eq!(ev.arg() as u64, ev.dur_ns, "payload words torn");
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        let final_dump = rec.dump();
        assert_eq!(final_dump.len(), 128, "both rings full");
    }
}
