//! End-to-end tests of the ops surface: the `/metrics` endpoint served
//! over a real socket must round-trip through the Prometheus text
//! parser and match the checked-in golden rendering; the listener must
//! survive malformed requests and clients that drop mid-request.

use etw_telemetry::prom::{parse_prometheus, PromKind};
use etw_telemetry::Registry;
use etw_trace::ops::{serve, OpsSource, RegistryOps};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// A small deterministic registry: fixed values, no clocks, so the
/// rendered text is byte-stable across runs and machines.
fn golden_registry() -> Registry {
    let reg = Registry::new();
    reg.counter("stage.decode.frames_total").add(40_960);
    reg.counter("stage.write.bytes_total").add(1_048_576);
    reg.gauge("chan.decode_in.depth").set(12);
    reg.gauge("stage.decode.util_permille").set(875);
    let h = reg.histogram("stage.decode.latency_ns");
    for v in [0u64, 1, 3, 900, 900, 70_000] {
        h.record(v);
    }
    reg
}

fn http_get(addr: std::net::SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    (head.to_string(), body.to_string())
}

#[test]
fn metrics_endpoint_matches_golden_and_round_trips() {
    let reg = golden_registry();
    let server = serve("127.0.0.1:0", Arc::new(RegistryOps::new(reg.clone()))).unwrap();
    let (head, body) = http_get(server.local_addr(), "GET /metrics HTTP/1.1\r\n\r\n");
    server.shutdown();

    assert!(head.starts_with("HTTP/1.1 200 OK"), "head: {head}");
    assert!(head.contains("Content-Type: text/plain; version=0.0.4"));

    // Golden: the body is byte-identical to the checked-in rendering.
    let golden = include_str!("golden/metrics.prom");
    assert_eq!(
        body, golden,
        "update crates/trace/tests/golden/metrics.prom if the format changed intentionally"
    );

    // Round-trip: the served text parses back to the snapshot's values.
    let scrape = parse_prometheus(&body).unwrap();
    let snap = reg.snapshot();
    assert_eq!(
        scrape.value("etw_stage_decode_frames_total"),
        Some(snap.counter("stage.decode.frames_total") as f64)
    );
    assert_eq!(
        scrape.value("etw_stage_decode_util_permille"),
        Some(snap.gauge("stage.decode.util_permille") as f64)
    );
    let hist = snap.histogram("stage.decode.latency_ns").unwrap();
    assert_eq!(
        scrape.value("etw_stage_decode_latency_ns_count"),
        Some(hist.count as f64)
    );
    assert_eq!(
        scrape.value("etw_stage_decode_latency_ns_sum"),
        Some(hist.sum as f64)
    );
    assert_eq!(
        scrape.kind("etw_stage_decode_latency_ns"),
        Some(PromKind::Histogram)
    );
    assert!(scrape.inconsistent_histograms().is_empty());
}

#[test]
fn health_endpoint_serves_json() {
    let reg = golden_registry();
    let server = serve("127.0.0.1:0", Arc::new(RegistryOps::new(reg))).unwrap();
    let (head, body) = http_get(server.local_addr(), "GET /health.json HTTP/1.1\r\n\r\n");
    server.shutdown();
    assert!(head.contains("Content-Type: application/json"));
    assert!(body.contains("\"stage.decode.frames_total\":40960"));
    assert!(body.contains("\"counters\""));
    assert!(body.contains("\"histograms\""));
}

#[test]
fn listener_survives_malformed_requests_and_dropped_connections() {
    let reg = Registry::new();
    reg.counter("up").add(1);
    let server = serve("127.0.0.1:0", Arc::new(RegistryOps::new(reg))).unwrap();
    let addr = server.local_addr();

    // Malformed request line: answered with 400, connection closed.
    let (head, body) = http_get(addr, "complete garbage\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 400"), "head: {head}");
    assert!(body.contains("400"));

    // Unknown path and wrong method get their own statuses.
    let (head, _) = http_get(addr, "GET /nope HTTP/1.1\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 404"));
    let (head, _) = http_get(addr, "POST /metrics HTTP/1.1\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 405"));

    // A client that connects and immediately drops, and one that sends
    // half a request line and drops: neither kills the serve loop.
    drop(TcpStream::connect(addr).unwrap());
    {
        let mut half = TcpStream::connect(addr).unwrap();
        half.write_all(b"GET /met").unwrap();
        // Dropped here, mid-request.
    }

    // The listener is still alive and serving real requests.
    let (head, body) = http_get(addr, "GET /metrics HTTP/1.1\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 200"), "listener died: {head}");
    assert!(body.contains("etw_up 1"));
    server.shutdown();
}

#[test]
fn custom_source_is_served_verbatim() {
    struct Canned;
    impl OpsSource for Canned {
        fn health_json(&self) -> String {
            "{\"ok\":true}".to_string()
        }
        fn metrics_text(&self) -> String {
            "etw_canned 7\n".to_string()
        }
    }
    let server = serve("127.0.0.1:0", Arc::new(Canned)).unwrap();
    let (_, body) = http_get(server.local_addr(), "GET /health.json HTTP/1.1\r\n\r\n");
    assert_eq!(body, "{\"ok\":true}");
    server.shutdown();
}
