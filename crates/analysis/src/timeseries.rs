//! Time-series helpers for Fig. 2 (losses per second over ten weeks,
//! with cumulative inset).

/// A sparse per-second series `(second, value)`; seconds with value 0
/// are omitted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SparseSeries {
    /// Sorted `(second, value)` points.
    pub points: Vec<(u64, u64)>,
}

impl SparseSeries {
    /// Builds from points (sorted internally).
    pub fn new(mut points: Vec<(u64, u64)>) -> Self {
        points.sort_unstable_by_key(|&(s, _)| s);
        SparseSeries { points }
    }

    /// Sum of all values.
    pub fn total(&self) -> u64 {
        self.points.iter().map(|&(_, v)| v).sum()
    }

    /// Cumulative curve (step function at the observed points).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut acc = 0;
        self.points
            .iter()
            .map(|&(s, v)| {
                acc += v;
                (s, acc)
            })
            .collect()
    }

    /// Re-buckets into intervals of `bucket_secs`, returning
    /// `(bucket_start_sec, total)` — used to render a 6-million-point
    /// ten-week series at plotable resolution.
    pub fn bucketed(&self, bucket_secs: u64) -> Vec<(u64, u64)> {
        assert!(bucket_secs > 0);
        let mut out: Vec<(u64, u64)> = Vec::new();
        for &(s, v) in &self.points {
            let b = s / bucket_secs * bucket_secs;
            match out.last_mut() {
                Some((bs, total)) if *bs == b => *total += v,
                _ => out.push((b, v)),
            }
        }
        out
    }

    /// Converts x to weeks for plotting against the paper's axis.
    pub fn in_weeks(&self) -> Vec<(f64, u64)> {
        const WEEK: f64 = 7.0 * 86_400.0;
        self.points
            .iter()
            .map(|&(s, v)| (s as f64 / WEEK, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_totals() {
        let s = SparseSeries::new(vec![(30, 2), (10, 1), (20, 4)]);
        assert_eq!(s.points, vec![(10, 1), (20, 4), (30, 2)]);
        assert_eq!(s.total(), 7);
    }

    #[test]
    fn cumulative_is_monotone() {
        let s = SparseSeries::new(vec![(1, 5), (3, 2), (9, 1)]);
        assert_eq!(s.cumulative(), vec![(1, 5), (3, 7), (9, 8)]);
    }

    #[test]
    fn bucketing_conserves_mass() {
        let s = SparseSeries::new((0..1000u64).map(|i| (i, 1)).collect());
        let b = s.bucketed(100);
        assert_eq!(b.len(), 10);
        assert!(b.iter().all(|&(_, v)| v == 100));
        assert_eq!(b.iter().map(|&(_, v)| v).sum::<u64>(), s.total());
    }

    #[test]
    fn weeks_axis() {
        let s = SparseSeries::new(vec![(7 * 86_400, 3)]);
        let w = s.in_weeks();
        assert!((w[0].0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series() {
        let s = SparseSeries::default();
        assert_eq!(s.total(), 0);
        assert!(s.cumulative().is_empty());
        assert!(s.bucketed(10).is_empty());
    }
}
