//! Plain-text emitters for figures and tables.
//!
//! The repro binary prints each figure as a gnuplot-ready two-column
//! series plus a short caption block, and the T1 summary as an aligned
//! table. Keeping the output format here (rather than in the binary)
//! lets tests pin it.

use crate::histogram::IntHistogram;
use crate::powerlaw::PowerLawFit;

/// Renders a histogram as `x y` lines (the paper's plotted form).
pub fn distribution_series(h: &IntHistogram) -> String {
    let mut out = String::new();
    for (x, y) in h.sorted_points() {
        out.push_str(&format!("{x} {y}\n"));
    }
    out
}

/// Renders `(x, y)` pairs as `x y` lines.
pub fn series_u64(points: &[(u64, u64)]) -> String {
    let mut out = String::new();
    for &(x, y) in points {
        out.push_str(&format!("{x} {y}\n"));
    }
    out
}

/// Renders float-x series.
pub fn series_f64(points: &[(f64, u64)]) -> String {
    let mut out = String::new();
    for &(x, y) in points {
        out.push_str(&format!("{x:.6} {y}\n"));
    }
    out
}

/// One line summarising a power-law fit.
pub fn describe_fit(fit: &Option<PowerLawFit>) -> String {
    match fit {
        Some(f) => format!(
            "power-law fit: alpha={:.3} r2={:.4} ({} log-bins)",
            f.alpha, f.r2, f.n_points
        ),
        None => "power-law fit: not enough points".to_owned(),
    }
}

/// A two-column aligned key/value table (the T1 summary format).
pub struct KvTable {
    rows: Vec<(String, String)>,
}

impl Default for KvTable {
    fn default() -> Self {
        Self::new()
    }
}

impl KvTable {
    /// Empty table.
    pub fn new() -> Self {
        KvTable { rows: Vec::new() }
    }

    /// Adds a row.
    pub fn row(&mut self, key: impl Into<String>, value: impl ToString) -> &mut Self {
        self.rows.push((key.into(), value.to_string()));
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let width = self.rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in &self.rows {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        out
    }
}

/// Formats large counts with thousands separators, as the paper prints
/// them ("8 867 052 380 messages").
pub fn grouped(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(' ');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_series_format() {
        let h: IntHistogram = [1u64, 1, 3].into_iter().collect();
        assert_eq!(distribution_series(&h), "1 2\n3 1\n");
    }

    #[test]
    fn kv_table_alignment() {
        let mut t = KvTable::new();
        t.row("short", 1).row("a much longer key", 22);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // Values start at the same column.
        let col0 = lines[0].find('1').unwrap();
        let col1 = lines[1].find("22").unwrap();
        assert_eq!(col0, col1);
    }

    #[test]
    fn grouped_thousands() {
        assert_eq!(grouped(0), "0");
        assert_eq!(grouped(999), "999");
        assert_eq!(grouped(1_000), "1 000");
        assert_eq!(grouped(8_867_052_380), "8 867 052 380");
    }

    #[test]
    fn fit_description() {
        assert!(describe_fit(&None).contains("not enough"));
        let f = crate::powerlaw::fit_points(
            &(1..20)
                .map(|x| (x as f64, 100.0 * (x as f64).powf(-1.0)))
                .collect::<Vec<_>>(),
        );
        assert!(describe_fit(&f).contains("alpha=1.000"));
    }

    #[test]
    fn series_emitters() {
        assert_eq!(series_u64(&[(1, 2), (3, 4)]), "1 2\n3 4\n");
        assert_eq!(series_f64(&[(0.5, 2)]), "0.500000 2\n");
    }
}
