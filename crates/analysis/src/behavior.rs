//! User-behaviour analyses — the directions the paper opens but leaves
//! out of scope:
//!
//! * §3.2: "One may investigate this further by observing the
//!   correlations between the number of files provided and asked for" —
//!   [`BehaviorStats::provide_ask_correlation`];
//! * §4: "it makes it possible to study and model user behaviors,
//!   communities of interests, how files spread among users" —
//!   [`BehaviorStats::interest_similarity`],
//!   [`BehaviorStats::communities`], [`BehaviorStats::file_spread`];
//! * the dataset's "wide time scale": growth curves of distinct clients
//!   and files over the capture — [`BehaviorStats::client_growth`],
//!   [`BehaviorStats::file_growth`].

use crate::histogram::IntHistogram;
use etw_anonymize::scheme::{AnonMessage, AnonRecord};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A correlation measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Correlation {
    /// Pearson product-moment coefficient.
    pub pearson: f64,
    /// Spearman rank coefficient.
    pub spearman: f64,
    /// Sample size.
    pub n: usize,
}

/// Streaming accumulator for behavioural analyses.
#[derive(Default)]
pub struct BehaviorStats {
    asks_by_client: HashMap<u32, HashSet<u64>>,
    provides_by_client: HashMap<u32, HashSet<u64>>,
    client_first_ts: HashMap<u32, u64>,
    file_first_ts: HashMap<u64, u64>,
    /// Per-file provider arrival times (file spread).
    provider_arrivals: HashMap<u64, Vec<u64>>,
}

impl BehaviorStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one dataset record.
    pub fn observe(&mut self, r: &AnonRecord) {
        self.client_first_ts.entry(r.peer).or_insert(r.ts_us);
        match &r.msg {
            AnonMessage::GetSources { files } => {
                let set = self.asks_by_client.entry(r.peer).or_default();
                for &f in files {
                    set.insert(f);
                    self.file_first_ts.entry(f).or_insert(r.ts_us);
                }
            }
            AnonMessage::OfferFiles { files } => {
                let set = self.provides_by_client.entry(r.peer).or_default();
                for e in files {
                    self.file_first_ts.entry(e.file).or_insert(r.ts_us);
                    if set.insert(e.file) {
                        self.provider_arrivals
                            .entry(e.file)
                            .or_default()
                            .push(r.ts_us);
                    }
                }
            }
            _ => {}
        }
    }

    /// §3.2's open question: across clients active in *both* roles, how
    /// do provided-file and asked-file counts correlate?
    pub fn provide_ask_correlation(&self) -> Option<Correlation> {
        let samples: Vec<(f64, f64)> = self
            .provides_by_client
            .iter()
            .filter_map(|(c, p)| {
                self.asks_by_client
                    .get(c)
                    .map(|a| (p.len() as f64, a.len() as f64))
            })
            .collect();
        correlation(&samples)
    }

    /// Jaccard similarity of two clients' interest (asked-file) sets.
    pub fn interest_similarity(&self, a: u32, b: u32) -> f64 {
        let (Some(sa), Some(sb)) = (self.asks_by_client.get(&a), self.asks_by_client.get(&b))
        else {
            return 0.0;
        };
        let inter = sa.intersection(sb).count();
        let union = sa.len() + sb.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Communities of interest via co-ask label propagation: clients
    /// sharing at least `min_shared` asked files are linked; labels
    /// propagate to the most frequent neighbour label until stable.
    /// Files asked by more than `max_file_audience` clients are skipped
    /// when building edges (ubiquitous files carry no community signal
    /// and would make the graph quadratic).
    pub fn communities(&self, min_shared: usize, max_file_audience: usize) -> Vec<Vec<u32>> {
        // Inverted index: file → asking clients.
        let mut askers: HashMap<u64, Vec<u32>> = HashMap::new();
        for (&c, files) in &self.asks_by_client {
            for &f in files {
                askers.entry(f).or_default().push(c);
            }
        }
        // Co-ask counts.
        let mut shared: HashMap<(u32, u32), usize> = HashMap::new();
        for clients in askers.values() {
            if clients.len() < 2 || clients.len() > max_file_audience {
                continue;
            }
            let mut sorted = clients.clone();
            sorted.sort_unstable();
            for i in 0..sorted.len() {
                for j in i + 1..sorted.len() {
                    *shared.entry((sorted[i], sorted[j])).or_default() += 1;
                }
            }
        }
        // Adjacency over qualifying edges.
        let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
        for (&(a, b), &n) in &shared {
            if n >= min_shared {
                adj.entry(a).or_default().push(b);
                adj.entry(b).or_default().push(a);
            }
        }
        // Deterministic label propagation (sorted iteration order).
        let mut labels: BTreeMap<u32, u32> = adj.keys().map(|&c| (c, c)).collect();
        let nodes: Vec<u32> = labels.keys().copied().collect();
        for _round in 0..20 {
            let mut changed = false;
            for &node in &nodes {
                let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
                for nb in &adj[&node] {
                    *counts.entry(labels[nb]).or_default() += 1;
                }
                if let Some((&best, _)) = counts
                    .iter()
                    .max_by_key(|&(&label, &n)| (n, std::cmp::Reverse(label)))
                {
                    if labels[&node] != best {
                        labels.insert(node, best);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let mut groups: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (node, label) in labels {
            groups.entry(label).or_default().push(node);
        }
        let mut out: Vec<Vec<u32>> = groups.into_values().filter(|g| g.len() > 1).collect();
        out.sort_by_key(|g| std::cmp::Reverse(g.len()));
        out
    }

    /// Cumulative distinct clients over time: `(bucket_start_us,
    /// cumulative_count)` at `bucket_us` resolution.
    pub fn client_growth(&self, bucket_us: u64) -> Vec<(u64, u64)> {
        growth_curve(self.client_first_ts.values().copied(), bucket_us)
    }

    /// Cumulative distinct files over time.
    pub fn file_growth(&self, bucket_us: u64) -> Vec<(u64, u64)> {
        growth_curve(self.file_first_ts.values().copied(), bucket_us)
    }

    /// §4's "how files spread among users": provider-arrival times of
    /// one file (sorted), i.e. its adoption curve.
    pub fn file_spread(&self, file: u64) -> Vec<u64> {
        let mut v = self
            .provider_arrivals
            .get(&file)
            .cloned()
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Distribution of per-file spread *speed*: time from first to k-th
    /// provider, for every file that reached `k` providers.
    pub fn spread_time_to_k(&self, k: usize) -> IntHistogram {
        assert!(k >= 2);
        let mut h = IntHistogram::new();
        for arrivals in self.provider_arrivals.values() {
            if arrivals.len() >= k {
                let mut a = arrivals.clone();
                a.sort_unstable();
                h.add((a[k - 1] - a[0]) / 1_000_000); // seconds
            }
        }
        h
    }

    /// Clients active in both roles (diagnostics).
    pub fn dual_role_clients(&self) -> usize {
        self.provides_by_client
            .keys()
            .filter(|c| self.asks_by_client.contains_key(c))
            .count()
    }
}

fn growth_curve(first_seen: impl Iterator<Item = u64>, bucket_us: u64) -> Vec<(u64, u64)> {
    assert!(bucket_us > 0);
    let mut per_bucket: BTreeMap<u64, u64> = BTreeMap::new();
    for ts in first_seen {
        *per_bucket.entry(ts / bucket_us * bucket_us).or_default() += 1;
    }
    let mut acc = 0;
    per_bucket
        .into_iter()
        .map(|(b, n)| {
            acc += n;
            (b, acc)
        })
        .collect()
}

/// Pearson + Spearman over paired samples; `None` below 3 samples or
/// with zero variance.
pub fn correlation(samples: &[(f64, f64)]) -> Option<Correlation> {
    let n = samples.len();
    if n < 3 {
        return None;
    }
    let pearson = pearson(samples)?;
    let xr = ranks(samples.iter().map(|s| s.0));
    let yr = ranks(samples.iter().map(|s| s.1));
    let ranked: Vec<(f64, f64)> = xr.into_iter().zip(yr).collect();
    let spearman = pearson_raw(&ranked)?;
    Some(Correlation {
        pearson,
        spearman,
        n,
    })
}

fn pearson(samples: &[(f64, f64)]) -> Option<f64> {
    pearson_raw(samples)
}

fn pearson_raw(samples: &[(f64, f64)]) -> Option<f64> {
    let n = samples.len() as f64;
    let mx = samples.iter().map(|s| s.0).sum::<f64>() / n;
    let my = samples.iter().map(|s| s.1).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for &(x, y) in samples {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Average ranks (ties share the mean rank).
fn ranks(values: impl Iterator<Item = f64>) -> Vec<f64> {
    let vals: Vec<f64> = values.collect();
    let mut idx: Vec<usize> = (0..vals.len()).collect();
    idx.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).expect("finite"));
    let mut out = vec![0.0; vals.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && vals[idx[j + 1]] == vals[idx[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = mean_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etw_anonymize::scheme::{AnonFileEntry, AnonTag, AnonTagValue};

    fn ask(ts: u64, peer: u32, files: &[u64]) -> AnonRecord {
        AnonRecord {
            ts_us: ts,
            peer,
            msg: AnonMessage::GetSources {
                files: files.to_vec(),
            },
        }
    }

    fn offer(ts: u64, peer: u32, files: &[u64]) -> AnonRecord {
        AnonRecord {
            ts_us: ts,
            peer,
            msg: AnonMessage::OfferFiles {
                files: files
                    .iter()
                    .map(|&f| AnonFileEntry {
                        file: f,
                        client: peer,
                        port: 1,
                        tags: vec![AnonTag {
                            name: "filesize".into(),
                            value: AnonTagValue::UInt(1),
                        }],
                    })
                    .collect(),
            },
        }
    }

    #[test]
    fn correlation_perfect_and_inverse() {
        let c = correlation(&[(1.0, 2.0), (2.0, 4.0), (3.0, 6.0), (4.0, 8.0)]).unwrap();
        assert!((c.pearson - 1.0).abs() < 1e-12);
        assert!((c.spearman - 1.0).abs() < 1e-12);
        let c = correlation(&[(1.0, 8.0), (2.0, 6.0), (3.0, 4.0), (4.0, 2.0)]).unwrap();
        assert!((c.pearson + 1.0).abs() < 1e-12);
        assert!((c.spearman + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_monotone_nonlinear() {
        // y = x^3: Spearman 1, Pearson < 1.
        let pts: Vec<(f64, f64)> = (1..20).map(|x| (x as f64, (x as f64).powi(3))).collect();
        let c = correlation(&pts).unwrap();
        assert!((c.spearman - 1.0).abs() < 1e-12);
        assert!(c.pearson < 0.999);
    }

    #[test]
    fn correlation_degenerate() {
        assert!(correlation(&[(1.0, 1.0)]).is_none());
        assert!(correlation(&[(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]).is_none());
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(vec![10.0, 20.0, 20.0, 30.0].into_iter());
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn provide_ask_correlation_from_records() {
        let mut b = BehaviorStats::new();
        // Clients where provides and asks scale together.
        for c in 1..=20u32 {
            let files: Vec<u64> = (0..c as u64).collect();
            b.observe(&offer(0, c, &files));
            let asked: Vec<u64> = (100..100 + 2 * c as u64).collect();
            b.observe(&ask(1, c, &asked));
        }
        let corr = b.provide_ask_correlation().unwrap();
        assert_eq!(corr.n, 20);
        assert!(corr.pearson > 0.99, "{corr:?}");
        assert_eq!(b.dual_role_clients(), 20);
    }

    #[test]
    fn interest_similarity_jaccard() {
        let mut b = BehaviorStats::new();
        b.observe(&ask(0, 1, &[1, 2, 3, 4]));
        b.observe(&ask(0, 2, &[3, 4, 5, 6]));
        b.observe(&ask(0, 3, &[100]));
        assert!((b.interest_similarity(1, 2) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(b.interest_similarity(1, 3), 0.0);
        assert_eq!(b.interest_similarity(1, 99), 0.0);
    }

    #[test]
    fn communities_separate_interest_groups() {
        let mut b = BehaviorStats::new();
        // Group A: clients 1-4 ask overlapping files 0-9.
        for c in 1..=4u32 {
            b.observe(&ask(0, c, &[0, 1, 2, 3, 4]));
        }
        // Group B: clients 11-14 ask files 100-104.
        for c in 11..=14u32 {
            b.observe(&ask(0, c, &[100, 101, 102, 103]));
        }
        // A loner.
        b.observe(&ask(0, 50, &[999]));
        let comms = b.communities(2, 100);
        assert_eq!(comms.len(), 2, "{comms:?}");
        let sets: Vec<HashSet<u32>> = comms.iter().map(|g| g.iter().copied().collect()).collect();
        assert!(sets.contains(&[1, 2, 3, 4].into_iter().collect()));
        assert!(sets.contains(&[11, 12, 13, 14].into_iter().collect()));
    }

    #[test]
    fn growth_curves_cumulative() {
        let mut b = BehaviorStats::new();
        b.observe(&ask(0, 1, &[1]));
        b.observe(&ask(1_000_000, 2, &[2]));
        b.observe(&ask(1_500_000, 3, &[1])); // existing file, new client
        b.observe(&ask(60_000_000, 1, &[3])); // existing client, new file
        let clients = b.client_growth(1_000_000);
        assert_eq!(clients, vec![(0, 1), (1_000_000, 3)]);
        let files = b.file_growth(1_000_000);
        assert_eq!(files, vec![(0, 1), (1_000_000, 2), (60_000_000, 3)]);
    }

    #[test]
    fn file_spread_and_speed() {
        let mut b = BehaviorStats::new();
        b.observe(&offer(5_000_000, 1, &[7]));
        b.observe(&offer(2_000_000, 2, &[7]));
        b.observe(&offer(9_000_000, 3, &[7]));
        b.observe(&offer(2_000_000, 2, &[7])); // duplicate: not a new provider
        assert_eq!(b.file_spread(7), vec![2_000_000, 5_000_000, 9_000_000]);
        assert!(b.file_spread(999).is_empty());
        let h = b.spread_time_to_k(3);
        assert_eq!(h.total(), 1);
        assert_eq!(h.count(7), 1); // 9s - 2s
    }
}
