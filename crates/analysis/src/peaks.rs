//! Peak detection in histograms.
//!
//! Two of the paper's observations are *peaks*: the spike of clients
//! asking for exactly 52 files (Fig. 7) and the file-size spikes at
//! 700 MB and friends (Fig. 8). The detector below finds histogram
//! values whose count towers over their local neighbourhood.

use crate::histogram::IntHistogram;

/// One detected peak.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Peak {
    /// The x value of the peak.
    pub value: u64,
    /// Count at the peak.
    pub count: u64,
    /// Ratio of the peak count to the median count in its neighbourhood.
    pub prominence: f64,
}

/// Finds values whose count is at least `min_prominence` times the
/// median count within a window of ±`window` *points* (not x distance)
/// around them, considering only values with count ≥ `min_count`.
/// Returned peaks are sorted by descending prominence.
pub fn find_peaks(
    h: &IntHistogram,
    window: usize,
    min_prominence: f64,
    min_count: u64,
) -> Vec<Peak> {
    let pts = h.sorted_points();
    let mut peaks = Vec::new();
    for (i, &(v, c)) in pts.iter().enumerate() {
        if c < min_count {
            continue;
        }
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(pts.len());
        let mut neighbours: Vec<u64> = pts[lo..hi]
            .iter()
            .enumerate()
            .filter(|(j, _)| lo + j != i)
            .map(|(_, &(_, c))| c)
            .collect();
        if neighbours.is_empty() {
            continue;
        }
        neighbours.sort_unstable();
        let median = neighbours[neighbours.len() / 2].max(1);
        let prominence = c as f64 / median as f64;
        if prominence >= min_prominence {
            peaks.push(Peak {
                value: v,
                count: c,
                prominence,
            });
        }
    }
    peaks.sort_by(|a, b| b.prominence.partial_cmp(&a.prominence).expect("finite"));
    peaks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_histogram_with_spike(spike_at: u64, spike: u64) -> IntHistogram {
        let mut h = IntHistogram::new();
        for v in 1u64..=100 {
            h.add_n(v, 1000 / v); // smooth decay
        }
        h.add_n(spike_at, spike);
        h
    }

    #[test]
    fn detects_injected_spike() {
        let h = smooth_histogram_with_spike(52, 5_000);
        let peaks = find_peaks(&h, 5, 10.0, 100);
        assert!(!peaks.is_empty());
        assert_eq!(peaks[0].value, 52);
        assert!(peaks[0].prominence > 100.0);
    }

    #[test]
    fn smooth_histogram_has_no_peaks() {
        let mut h = IntHistogram::new();
        for v in 1u64..=100 {
            h.add_n(v, 1000 / v);
        }
        let peaks = find_peaks(&h, 5, 10.0, 1);
        assert!(peaks.is_empty(), "{peaks:?}");
    }

    #[test]
    fn multiple_peaks_sorted_by_prominence() {
        let mut h = smooth_histogram_with_spike(52, 3_000);
        h.add_n(80, 50_000);
        let peaks = find_peaks(&h, 5, 10.0, 100);
        assert!(peaks.len() >= 2);
        assert_eq!(peaks[0].value, 80);
        assert_eq!(peaks[1].value, 52);
        assert!(peaks[0].prominence >= peaks[1].prominence);
    }

    #[test]
    fn min_count_filters_noise() {
        let mut h = IntHistogram::new();
        h.add_n(1, 2);
        h.add_n(1_000_000, 1); // isolated single observation
        let peaks = find_peaks(&h, 3, 1.5, 10);
        assert!(peaks.is_empty());
    }

    #[test]
    fn empty_histogram() {
        assert!(find_peaks(&IntHistogram::new(), 3, 2.0, 1).is_empty());
    }
}
