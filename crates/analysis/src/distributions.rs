//! The paper's §3 statistics, computed from the anonymised dataset.
//!
//! The paper stresses that its encoding makes these computations cheap
//! ("Thanks to our formating, the computations needed to obtain these
//! results have a reasonable cost"): anonymised IDs are dense integers,
//! so per-file and per-client aggregations are direct-indexed. The
//! accumulator exploits exactly that property.
//!
//! | method | figure |
//! |---|---|
//! | [`DatasetStats::providers_per_file`] | Fig. 4 |
//! | [`DatasetStats::seekers_per_file`] | Fig. 5 |
//! | [`DatasetStats::files_per_provider`] | Fig. 6 |
//! | [`DatasetStats::files_per_seeker`] | Fig. 7 |
//! | [`DatasetStats::size_histogram_kb`] | Fig. 8 |

use crate::histogram::IntHistogram;
use etw_anonymize::scheme::{AnonMessage, AnonRecord, AnonTagValue};
use std::collections::HashSet;

/// Streaming accumulator over dataset records.
///
/// Distinct (file, client) provide/ask pairs are deduplicated — the
/// paper's distributions count *distinct clients* per file and *distinct
/// files* per client.
#[derive(Default)]
pub struct DatasetStats {
    /// Distinct (anon_file, anon_client) provider pairs.
    provides: HashSet<(u64, u32)>,
    /// Distinct (anon_file, anon_client) seeker pairs.
    asks: HashSet<(u64, u32)>,
    /// File size in KB per anon_file (first announcement wins).
    sizes_kb: std::collections::HashMap<u64, u64>,
    /// Occurrences of each hashed search keyword. The dataset hashes
    /// strings but keeps them *joinable* ("keeping a coherent dataset",
    /// §2.4) — so keyword popularity is still measurable.
    keyword_counts: std::collections::HashMap<std::sync::Arc<str>, u64>,
    /// Records observed.
    records: u64,
    /// Records by family: management, file search, source search,
    /// announcement.
    by_family: [u64; 4],
    /// Queries vs answers.
    queries: u64,
}

impl DatasetStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one record.
    pub fn observe(&mut self, r: &AnonRecord) {
        self.records += 1;
        let family_idx = match r.msg.family() {
            etw_edonkey::Family::Management => 0,
            etw_edonkey::Family::FileSearch => 1,
            etw_edonkey::Family::SourceSearch => 2,
            etw_edonkey::Family::Announcement => 3,
        };
        self.by_family[family_idx] += 1;
        if r.msg.is_query() {
            self.queries += 1;
        }
        match &r.msg {
            AnonMessage::OfferFiles { files } => {
                for e in files {
                    self.provides.insert((e.file, r.peer));
                    self.sizes_kb.entry(e.file).or_insert_with(|| {
                        e.tags
                            .iter()
                            .find(|t| t.name == "filesize")
                            .and_then(|t| match &t.value {
                                AnonTagValue::UInt(v) => Some(*v),
                                AnonTagValue::Hashed(_) => None,
                            })
                            .unwrap_or(0)
                    });
                }
            }
            AnonMessage::GetSources { files } => {
                for &f in files {
                    self.asks.insert((f, r.peer));
                }
            }
            AnonMessage::SearchRequest { expr } => {
                self.count_keywords(expr);
            }
            _ => {}
        }
    }

    fn count_keywords(&mut self, expr: &etw_anonymize::scheme::AnonSearchExpr) {
        use etw_anonymize::scheme::AnonSearchExpr;
        match expr {
            AnonSearchExpr::Bool { left, right, .. } => {
                self.count_keywords(left);
                self.count_keywords(right);
            }
            AnonSearchExpr::Keyword(h) => {
                *self.keyword_counts.entry(h.clone()).or_default() += 1;
            }
            AnonSearchExpr::MetaStr { .. } | AnonSearchExpr::MetaNum { .. } => {}
        }
    }

    /// Distribution of search-keyword popularity: for each x, the number
    /// of (hashed) keywords searched exactly x times. Heavy-tailed like
    /// the per-file distributions — the "communities of interest" raw
    /// material the paper's §4 points at.
    pub fn keyword_popularity(&self) -> IntHistogram {
        let mut h = IntHistogram::new();
        for &c in self.keyword_counts.values() {
            h.add(c);
        }
        h
    }

    /// Distinct hashed keywords observed.
    pub fn distinct_keywords(&self) -> usize {
        self.keyword_counts.len()
    }

    /// Records seen.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records per message family
    /// `[management, file_search, source_search, announcement]`.
    pub fn by_family(&self) -> [u64; 4] {
        self.by_family
    }

    /// Client→server queries seen.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Distinct provider pairs (diagnostics).
    pub fn provide_pairs(&self) -> usize {
        self.provides.len()
    }

    /// Distinct asker pairs (diagnostics).
    pub fn ask_pairs(&self) -> usize {
        self.asks.len()
    }

    /// Fig. 4: for each x, the number of files provided by exactly x
    /// clients.
    pub fn providers_per_file(&self) -> IntHistogram {
        group_count(self.provides.iter().map(|&(f, _)| f))
    }

    /// Fig. 5: for each x, the number of files asked for by exactly x
    /// clients.
    pub fn seekers_per_file(&self) -> IntHistogram {
        group_count(self.asks.iter().map(|&(f, _)| f))
    }

    /// Fig. 6: for each x, the number of clients providing exactly x
    /// distinct files.
    pub fn files_per_provider(&self) -> IntHistogram {
        group_count(self.provides.iter().map(|&(_, c)| c as u64))
    }

    /// Fig. 7: for each x, the number of clients asking for exactly x
    /// distinct files.
    pub fn files_per_seeker(&self) -> IntHistogram {
        group_count(self.asks.iter().map(|&(_, c)| c as u64))
    }

    /// Fig. 8: for each file size (in KB, the dataset's anonymised
    /// resolution), the number of distinct files with that size.
    pub fn size_histogram_kb(&self) -> IntHistogram {
        let mut h = IntHistogram::new();
        for &kb in self.sizes_kb.values() {
            h.add(kb);
        }
        h
    }
}

/// Groups a multiset of keys and histograms the group sizes: the
/// "distribution of the number of Y per X" primitive behind Figs. 4–7.
fn group_count(keys: impl Iterator<Item = u64>) -> IntHistogram {
    let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for k in keys {
        *counts.entry(k).or_default() += 1;
    }
    let mut h = IntHistogram::new();
    for (_, c) in counts {
        h.add(c);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use etw_anonymize::scheme::{AnonFileEntry, AnonTag};

    fn offer(peer: u32, files: &[u64]) -> AnonRecord {
        AnonRecord {
            ts_us: 0,
            peer,
            msg: AnonMessage::OfferFiles {
                files: files
                    .iter()
                    .map(|&f| AnonFileEntry {
                        file: f,
                        client: peer,
                        port: 4662,
                        tags: vec![AnonTag {
                            name: "filesize".into(),
                            value: AnonTagValue::UInt(100 * f + 1),
                        }],
                    })
                    .collect(),
            },
        }
    }

    fn ask(peer: u32, files: &[u64]) -> AnonRecord {
        AnonRecord {
            ts_us: 0,
            peer,
            msg: AnonMessage::GetSources {
                files: files.to_vec(),
            },
        }
    }

    #[test]
    fn providers_per_file_counts_distinct_clients() {
        let mut s = DatasetStats::new();
        s.observe(&offer(1, &[10, 11]));
        s.observe(&offer(2, &[10]));
        s.observe(&offer(2, &[10])); // duplicate announce — ignored
        s.observe(&offer(3, &[10]));
        let h = s.providers_per_file();
        // File 10 has 3 providers, file 11 has 1.
        assert_eq!(h.count(3), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn files_per_provider_counts_distinct_files() {
        let mut s = DatasetStats::new();
        s.observe(&offer(1, &[10, 11, 12]));
        s.observe(&offer(1, &[12])); // repeat
        s.observe(&offer(2, &[10]));
        let h = s.files_per_provider();
        assert_eq!(h.count(3), 1); // client 1
        assert_eq!(h.count(1), 1); // client 2
    }

    #[test]
    fn seekers_and_asks_symmetric() {
        let mut s = DatasetStats::new();
        s.observe(&ask(1, &[5]));
        s.observe(&ask(2, &[5]));
        s.observe(&ask(2, &[6]));
        let per_file = s.seekers_per_file();
        assert_eq!(per_file.count(2), 1); // file 5: two seekers
        assert_eq!(per_file.count(1), 1); // file 6: one
        let per_client = s.files_per_seeker();
        assert_eq!(per_client.count(1), 1); // client 1
        assert_eq!(per_client.count(2), 1); // client 2
        assert_eq!(s.ask_pairs(), 3);
    }

    #[test]
    fn size_histogram_first_size_wins() {
        let mut s = DatasetStats::new();
        s.observe(&offer(1, &[7]));
        // Client 2 announces the same file with a different (bogus) size:
        // the accumulator keeps the first.
        let mut r = offer(2, &[7]);
        if let AnonMessage::OfferFiles { files } = &mut r.msg {
            files[0].tags[0].value = AnonTagValue::UInt(9_999);
        }
        s.observe(&r);
        let h = s.size_histogram_kb();
        assert_eq!(h.total(), 1);
        assert_eq!(h.count(701), 1); // 100*7+1
    }

    #[test]
    fn family_accounting() {
        let mut s = DatasetStats::new();
        s.observe(&offer(1, &[1]));
        s.observe(&ask(1, &[1]));
        s.observe(&AnonRecord {
            ts_us: 0,
            peer: 0,
            msg: AnonMessage::StatusRequest { challenge: 0 },
        });
        assert_eq!(s.records(), 3);
        assert_eq!(s.by_family(), [1, 0, 1, 1]);
        assert_eq!(s.queries(), 3);
    }

    #[test]
    fn empty_dataset() {
        let s = DatasetStats::new();
        assert_eq!(s.providers_per_file().total(), 0);
        assert_eq!(s.size_histogram_kb().total(), 0);
        assert_eq!(s.keyword_popularity().total(), 0);
        assert_eq!(s.distinct_keywords(), 0);
    }

    #[test]
    fn keyword_popularity_counts_hashed_terms() {
        use etw_anonymize::scheme::AnonSearchExpr;
        let mut s = DatasetStats::new();
        let search = |kw: &str| AnonRecord {
            ts_us: 0,
            peer: 0,
            msg: AnonMessage::SearchRequest {
                expr: AnonSearchExpr::Keyword(kw.into()),
            },
        };
        s.observe(&search("aaaa"));
        s.observe(&search("aaaa"));
        s.observe(&search("bbbb"));
        // Nested expressions count every keyword leaf.
        s.observe(&AnonRecord {
            ts_us: 0,
            peer: 1,
            msg: AnonMessage::SearchRequest {
                expr: AnonSearchExpr::Bool {
                    op: "and",
                    left: Box::new(AnonSearchExpr::Keyword("aaaa".into())),
                    right: Box::new(AnonSearchExpr::Keyword("cccc".into())),
                },
            },
        });
        assert_eq!(s.distinct_keywords(), 3);
        let h = s.keyword_popularity();
        assert_eq!(h.count(3), 1); // "aaaa"
        assert_eq!(h.count(1), 2); // "bbbb", "cccc"
    }
}
