//! Integer histograms and distributions.
//!
//! Every figure in the paper's §3 is a histogram over non-negative
//! integers: "for each value x on the horizontal axis the number of
//! files/clients with property x". [`IntHistogram`] is that object, plus
//! the log-binning helper used when plotting heavy tails.

use std::collections::HashMap;

/// A sparse histogram over `u64` values.
#[derive(Clone, Default, Debug)]
pub struct IntHistogram {
    counts: HashMap<u64, u64>,
    total: u64,
}

impl IntHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation of `value`.
    pub fn add(&mut self, value: u64) {
        *self.counts.entry(value).or_default() += 1;
        self.total += 1;
    }

    /// Adds `n` observations of `value`.
    pub fn add_n(&mut self, value: u64, n: u64) {
        if n > 0 {
            *self.counts.entry(value).or_default() += n;
            self.total += n;
        }
    }

    /// Observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct values seen.
    pub fn distinct_values(&self) -> usize {
        self.counts.len()
    }

    /// Count for one value.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// `(value, count)` pairs sorted by value — the paper's plotted form.
    pub fn sorted_points(&self) -> Vec<(u64, u64)> {
        let mut pts: Vec<(u64, u64)> = self.counts.iter().map(|(&v, &c)| (v, c)).collect();
        pts.sort_unstable_by_key(|&(v, _)| v);
        pts
    }

    /// Largest observed value.
    pub fn max_value(&self) -> Option<u64> {
        self.counts.keys().max().copied()
    }

    /// Mean of the observations.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u128 = self
            .counts
            .iter()
            .map(|(&v, &c)| v as u128 * c as u128)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &IntHistogram) {
        for (&v, &c) in &other.counts {
            self.add_n(v, c);
        }
    }

    /// Log-binned view: geometric bins with the given ratio (> 1), each
    /// bin reported as `(geometric_center, total_count)`. Standard
    /// presentation for heavy-tailed data like Figs. 4–7.
    pub fn log_binned(&self, ratio: f64) -> Vec<(f64, u64)> {
        assert!(ratio > 1.0);
        let mut bins: HashMap<i32, u64> = HashMap::new();
        for (&v, &c) in &self.counts {
            if v == 0 {
                *bins.entry(i32::MIN).or_default() += c;
                continue;
            }
            let bin = (v as f64).ln() / ratio.ln();
            *bins.entry(bin.floor() as i32).or_default() += c;
        }
        let mut out: Vec<(f64, u64)> = bins
            .into_iter()
            .map(|(b, c)| {
                let center = if b == i32::MIN {
                    0.0
                } else {
                    ratio.powf(b as f64 + 0.5)
                };
                (center, c)
            })
            .collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite centers"));
        out
    }
}

impl FromIterator<u64> for IntHistogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut h = IntHistogram::new();
        for v in iter {
            h.add(v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counting() {
        let mut h = IntHistogram::new();
        for v in [1u64, 1, 2, 5, 5, 5] {
            h.add(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(5), 3);
        assert_eq!(h.count(9), 0);
        assert_eq!(h.distinct_values(), 3);
        assert_eq!(h.max_value(), Some(5));
        assert_eq!(h.sorted_points(), vec![(1, 2), (2, 1), (5, 3)]);
    }

    #[test]
    fn mean_matches() {
        let h: IntHistogram = [2u64, 4, 6].into_iter().collect();
        assert!((h.mean() - 4.0).abs() < 1e-12);
        assert_eq!(IntHistogram::new().mean(), 0.0);
    }

    #[test]
    fn add_n_and_merge() {
        let mut a = IntHistogram::new();
        a.add_n(3, 10);
        a.add_n(3, 0); // no-op
        let mut b = IntHistogram::new();
        b.add_n(3, 5);
        b.add_n(7, 1);
        a.merge(&b);
        assert_eq!(a.count(3), 15);
        assert_eq!(a.count(7), 1);
        assert_eq!(a.total(), 16);
    }

    #[test]
    fn log_binning_conserves_mass() {
        let h: IntHistogram = (1u64..1000).collect();
        let bins = h.log_binned(2.0);
        let total: u64 = bins.iter().map(|(_, c)| c).sum();
        assert_eq!(total, h.total());
        // Bin centers strictly increasing.
        for w in bins.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn log_binning_handles_zero() {
        let mut h = IntHistogram::new();
        h.add(0);
        h.add(1);
        let bins = h.log_binned(10.0);
        assert_eq!(bins[0], (0.0, 1));
    }

    #[test]
    fn from_iterator() {
        let h: IntHistogram = vec![1u64, 2, 3].into_iter().collect();
        assert_eq!(h.total(), 3);
    }
}
