//! Power-law fitting on log-log axes.
//!
//! The paper observes that "the decrease of the distribution of the
//! number of clients providing each file is reasonably well fitted by a
//! power-law" (Fig. 4) and also notes where distributions are *not*
//! power laws (Figs. 6–7, which have "several regimes"). The fitter here
//! is the standard least-squares line in log-log space, with R² as the
//! goodness measure used to make exactly that distinction.

use crate::histogram::IntHistogram;

/// A fitted power law `y ≈ c · x^(-alpha)` with its goodness of fit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLawFit {
    /// Decay exponent (positive for decreasing distributions).
    pub alpha: f64,
    /// Log10 of the prefactor `c`.
    pub log10_c: f64,
    /// Coefficient of determination in log-log space.
    pub r2: f64,
    /// Points used in the fit.
    pub n_points: usize,
}

impl PowerLawFit {
    /// Predicted `y` at `x` under the fit.
    pub fn predict(&self, x: f64) -> f64 {
        10f64.powf(self.log10_c - self.alpha * x.log10())
    }
}

/// Fits `y = c · x^(-alpha)` through `(x, y)` points with `x, y > 0`.
/// Returns `None` with fewer than 3 usable points.
pub fn fit_points(points: &[(f64, f64)]) -> Option<PowerLawFit> {
    let usable: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.log10(), y.log10()))
        .collect();
    let n = usable.len();
    if n < 3 {
        return None;
    }
    let nf = n as f64;
    let sum_x: f64 = usable.iter().map(|p| p.0).sum();
    let sum_y: f64 = usable.iter().map(|p| p.1).sum();
    let mean_x = sum_x / nf;
    let mean_y = sum_y / nf;
    let sxx: f64 = usable.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    let sxy: f64 = usable.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = usable.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = usable
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(PowerLawFit {
        alpha: -slope,
        log10_c: intercept,
        r2,
        n_points: n,
    })
}

/// Fits a histogram's `(value, count)` points, log-binned first to
/// de-noise the tail (ratio 1.5), as is standard for empirical degree
/// distributions. Bin totals are normalised by bin width (density),
/// without which log binning biases the measured exponent by exactly 1.
pub fn fit_histogram(h: &IntHistogram) -> Option<PowerLawFit> {
    let ratio = 1.5f64;
    let mut bins: std::collections::HashMap<i32, u64> = std::collections::HashMap::new();
    for (v, c) in h.sorted_points() {
        if v == 0 {
            continue;
        }
        let b = ((v as f64).ln() / ratio.ln()).floor() as i32;
        *bins.entry(b).or_default() += c;
    }
    let pts: Vec<(f64, f64)> = bins
        .into_iter()
        .map(|(b, total)| {
            let lo = ratio.powi(b);
            let hi = ratio.powi(b + 1);
            let center = (lo * hi).sqrt();
            (center, total as f64 / (hi - lo))
        })
        .collect();
    fit_points(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        // y = 1000 x^-2
        let pts: Vec<(f64, f64)> = (1..100)
            .map(|x| (x as f64, 1000.0 * (x as f64).powf(-2.0)))
            .collect();
        let fit = fit_points(&pts).unwrap();
        assert!((fit.alpha - 2.0).abs() < 1e-9, "alpha {}", fit.alpha);
        assert!((fit.log10_c - 3.0).abs() < 1e-9);
        assert!(fit.r2 > 0.999999);
        assert!((fit.predict(10.0) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn noisy_power_law_good_r2() {
        let mut seed = 12345u64;
        let mut noise = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) * 0.4 + 0.8
        };
        let pts: Vec<(f64, f64)> = (1..200)
            .map(|x| (x as f64, 5000.0 * (x as f64).powf(-1.5) * noise()))
            .collect();
        let fit = fit_points(&pts).unwrap();
        assert!((fit.alpha - 1.5).abs() < 0.1, "alpha {}", fit.alpha);
        assert!(fit.r2 > 0.95, "r2 {}", fit.r2);
    }

    #[test]
    fn exponential_is_a_bad_power_law() {
        // The R² discriminates shapes, as the paper's prose does.
        let pts: Vec<(f64, f64)> = (1..60)
            .map(|x| (x as f64, 1e6 * (-0.3 * x as f64).exp()))
            .collect();
        let fit = fit_points(&pts).unwrap();
        assert!(fit.r2 < 0.92, "r2 {}", fit.r2);
    }

    #[test]
    fn too_few_points() {
        assert!(fit_points(&[(1.0, 1.0), (2.0, 0.5)]).is_none());
        assert!(fit_points(&[]).is_none());
        // Points with zero/negative coordinates are discarded.
        assert!(fit_points(&[(0.0, 5.0), (1.0, 1.0), (-2.0, 3.0)]).is_none());
    }

    #[test]
    fn histogram_fit_pipeline() {
        // Build a histogram whose counts decay as a power law.
        let mut h = IntHistogram::new();
        for v in 1u64..=500 {
            let count = (100_000.0 * (v as f64).powf(-1.8)).round() as u64;
            h.add_n(v, count.max(if v < 100 { 1 } else { 0 }));
        }
        let fit = fit_histogram(&h).unwrap();
        assert!((fit.alpha - 1.8).abs() < 0.35, "alpha {}", fit.alpha);
        assert!(fit.r2 > 0.9, "r2 {}", fit.r2);
    }
}
