//! # etw-analysis — analyses of the anonymised dataset
//!
//! Implements §3 of *"Ten weeks in the life of an eDonkey server"*: the
//! "basic analysis" the authors run on the released dataset, plus the
//! fitting and peak-detection machinery their prose relies on.
//!
//! * [`histogram`] — sparse integer histograms with log binning;
//! * [`distributions`] — the accumulator computing Figs. 4–8 from
//!   dataset records;
//! * [`powerlaw`] — log-log least-squares fitting with R² (the paper's
//!   "reasonably well fitted by a power-law" / "far from power-laws"
//!   distinction);
//! * [`peaks`] — spike detection (the 52-query peak, the 700 MB peak);
//! * [`timeseries`] — per-second loss series utilities (Fig. 2);
//! * [`report`] — plain-text emitters for figures and tables;
//! * [`behavior`] — the §3.2/§4 extensions: provide/ask correlation,
//!   communities of interest, file-spread and growth curves;
//! * [`cardinality`] — HyperLogLog distinct counting, the sublinear
//!   answer to the paper's "counting the number of distinct fileID
//!   observed" challenge.

#![warn(missing_docs)]

pub mod behavior;
pub mod cardinality;
pub mod distributions;
pub mod histogram;
pub mod peaks;
pub mod powerlaw;
pub mod report;
pub mod timeseries;

pub use behavior::{correlation, BehaviorStats, Correlation};
pub use cardinality::HyperLogLog;
pub use distributions::DatasetStats;
pub use histogram::IntHistogram;
pub use peaks::{find_peaks, Peak};
pub use powerlaw::{fit_histogram, fit_points, PowerLawFit};
pub use timeseries::SparseSeries;
