//! Distinct-count estimation at capture scale.
//!
//! The paper's introduction singles out one "unusual and sometimes
//! striking challenge": *counting the number of distinct fileID
//! observed* among billions of messages. Their anonymiser gets the exact
//! count for free (order-of-appearance encoding **is** a distinct
//! counter), but that costs the full ID table in memory. This module
//! provides the sublinear alternative a measurement without
//! anonymisation would use — a HyperLogLog sketch, built from scratch —
//! so the trade-off can be measured (bench `figures`, EXPERIMENTS.md):
//!
//! | approach | memory | error |
//! |---|---|---|
//! | order-of-appearance table (the paper's) | O(distinct) | exact |
//! | `HashSet` | O(distinct) | exact |
//! | [`HyperLogLog`] | 2^p bytes (KBs) | ≈ 1.04/√2^p |

/// A HyperLogLog sketch with `2^p` one-byte registers.
#[derive(Clone, Debug)]
pub struct HyperLogLog {
    p: u32,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Creates a sketch with precision `p` in `4..=18` (`2^p` registers;
    /// standard error ≈ `1.04 / sqrt(2^p)` — p=14 gives ~0.8 %).
    pub fn new(p: u32) -> Self {
        assert!((4..=18).contains(&p), "precision out of range");
        HyperLogLog {
            p,
            registers: vec![0u8; 1 << p],
        }
    }

    /// Precision parameter.
    pub fn precision(&self) -> u32 {
        self.p
    }

    /// Sketch memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }

    /// Standard error of the estimate.
    pub fn standard_error(&self) -> f64 {
        1.04 / ((1u64 << self.p) as f64).sqrt()
    }

    /// Inserts a pre-hashed 64-bit value. Callers hash their items with
    /// [`hash_bytes`] (or any well-mixed 64-bit hash).
    pub fn insert_hash(&mut self, h: u64) {
        let idx = (h >> (64 - self.p)) as usize;
        let rest = h << self.p;
        // Rank: position of the leftmost 1 in the remaining bits, 1-based;
        // all-zero rest gets the maximum rank.
        let rank = (rest.leading_zeros() + 1).min(64 - self.p + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Inserts raw bytes (hashed internally).
    pub fn insert(&mut self, item: &[u8]) {
        self.insert_hash(hash_bytes(item));
    }

    /// Estimates the number of distinct items inserted.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        // Small-range correction: linear counting while registers are
        // mostly empty.
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merges another sketch (same precision) — the estimate becomes
    /// that of the union. This is what lets distinct counting shard
    /// across decode workers without coordination.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.p, other.p, "precision mismatch");
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            if b > *a {
                *a = b;
            }
        }
    }
}

/// A well-mixed 64-bit hash of arbitrary bytes (FNV-1a folded through a
/// splitmix64 finaliser; measurement-grade, not cryptographic).
pub fn hash_bytes(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finaliser to break FNV's weak avalanche in the high bits.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate_of(n: u64, p: u32) -> f64 {
        let mut hll = HyperLogLog::new(p);
        for i in 0..n {
            hll.insert(&i.to_le_bytes());
        }
        hll.estimate()
    }

    #[test]
    fn accuracy_across_scales() {
        for &n in &[100u64, 1_000, 10_000, 200_000] {
            let est = estimate_of(n, 14);
            let err = (est - n as f64).abs() / n as f64;
            // 4 standard errors at p=14 ≈ 3.3 %.
            assert!(err < 0.033, "n={n}: estimate {est} (err {err})");
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::new(12);
        for _ in 0..50 {
            for i in 0..1_000u64 {
                hll.insert(&i.to_le_bytes());
            }
        }
        let est = hll.estimate();
        assert!((est - 1_000.0).abs() / 1_000.0 < 0.07, "estimate {est}");
    }

    #[test]
    fn merge_is_union() {
        let mut a = HyperLogLog::new(12);
        let mut b = HyperLogLog::new(12);
        for i in 0..8_000u64 {
            a.insert(&i.to_le_bytes());
        }
        for i in 4_000..12_000u64 {
            b.insert(&i.to_le_bytes());
        }
        a.merge(&b);
        let est = a.estimate();
        assert!((est - 12_000.0).abs() / 12_000.0 < 0.06, "estimate {est}");
    }

    #[test]
    fn sharded_merge_equals_single_sketch() {
        // Exactly the pipeline use: each worker sketches its shard.
        let mut whole = HyperLogLog::new(12);
        let mut shards: Vec<HyperLogLog> = (0..4).map(|_| HyperLogLog::new(12)).collect();
        for i in 0..20_000u64 {
            whole.insert(&i.to_le_bytes());
            shards[(i % 4) as usize].insert(&i.to_le_bytes());
        }
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.registers, whole.registers);
    }

    #[test]
    fn small_range_linear_counting() {
        for n in [1u64, 5, 50] {
            let est = estimate_of(n, 12);
            assert!((est - n as f64).abs() <= 2.0, "n={n}: {est}");
        }
    }

    #[test]
    fn memory_is_tiny() {
        let hll = HyperLogLog::new(14);
        assert_eq!(hll.memory_bytes(), 16_384);
        assert!((hll.standard_error() - 0.0081).abs() < 0.0005);
        // The paper's 275 M fileIDs would need ~4.4 GB as 16-byte keys in
        // a set; the sketch estimates them within ~1 % in 16 KB.
    }

    #[test]
    fn hash_avalanche_sanity() {
        // Single-bit input changes flip about half the output bits.
        let a = hash_bytes(b"file-00001");
        let b = hash_bytes(b"file-00002");
        let differing = (a ^ b).count_ones();
        assert!((16..=48).contains(&differing), "{differing}");
    }

    #[test]
    #[should_panic(expected = "precision out of range")]
    fn precision_bounds() {
        let _ = HyperLogLog::new(3);
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_requires_same_precision() {
        let mut a = HyperLogLog::new(10);
        let b = HyperLogLog::new(12);
        a.merge(&b);
    }
}
