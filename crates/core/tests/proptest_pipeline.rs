//! Robustness property tests for the capture pipeline: arbitrary frame
//! streams must never panic, counters must always partition, and output
//! order must be independent of parallelism.

use etw_anonymize::scheme::PaperScheme;
use etw_core::pipeline::{run_capture_pipeline, TimedFrame};
use etw_core::wirepath::{encapsulate, Direction};
use etw_edonkey::ids::ClientId;
use etw_edonkey::messages::Message;
use etw_netsim::clock::VirtualTime;
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = TimedFrame> {
    prop_oneof![
        // Random garbage bytes.
        (any::<u32>(), prop::collection::vec(any::<u8>(), 0..200)).prop_map(|(ts, bytes)| {
            TimedFrame {
                ts: VirtualTime(ts as u64),
                bytes,
            }
        }),
        // A legitimate encapsulated message (sometimes truncated).
        (any::<u32>(), 0u32..(1 << 16), any::<u16>(), 0usize..3).prop_map(
            |(ts, client, ident, cut)| {
                let msg = Message::StatusRequest {
                    challenge: ident as u32,
                };
                let frames = encapsulate(
                    msg.encode(),
                    ClientId(client),
                    4672,
                    Direction::ToServer,
                    ident,
                    1500,
                );
                let mut bytes = frames[0].to_bytes();
                let keep = bytes.len().saturating_sub(cut * 7);
                bytes.truncate(keep);
                TimedFrame {
                    ts: VirtualTime(ts as u64),
                    bytes,
                }
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any byte soup survives the pipeline: no panics, counters
    /// partition the input exactly.
    #[test]
    fn pipeline_total_on_garbage(
        mut frames in prop::collection::vec(arb_frame(), 0..60),
        workers in 1usize..5,
    ) {
        // Timestamps must be non-decreasing for the reassembler contract.
        frames.sort_by_key(|f| f.ts);
        let n = frames.len() as u64;
        let mut records = 0u64;
        let (stats, _, _) = run_capture_pipeline(
            frames.into_iter(),
            workers,
            PaperScheme::paper(16),
            None,
            |_| records += 1,
        );
        prop_assert_eq!(stats.frames, n);
        // Wire-layer classification partitions the frames.
        let datagram_frames = stats.reassembly.whole + stats.reassembly.fragments;
        prop_assert_eq!(
            datagram_frames + stats.not_udp + stats.other_port + stats.parse_errors,
            n
        );
        // Decoder outcomes partition the recovered datagrams.
        let d = stats.decoder;
        prop_assert_eq!(d.handled, stats.udp_datagrams);
        prop_assert_eq!(
            d.decoded + d.structurally_invalid + d.decode_failed + d.not_edonkey,
            d.handled
        );
        prop_assert_eq!(records, stats.records);
        prop_assert_eq!(records, d.decoded);
    }

    /// The anonymised output is identical at any worker count, frame mix
    /// included.
    #[test]
    fn worker_invariance(
        mut frames in prop::collection::vec(arb_frame(), 0..40),
    ) {
        frames.sort_by_key(|f| f.ts);
        let run = |workers: usize| {
            let mut out = Vec::new();
            let (_, _, _) = run_capture_pipeline(
                frames.clone().into_iter(),
                workers,
                PaperScheme::paper(16),
                None,
                |r| out.push(r),
            );
            out
        };
        prop_assert_eq!(run(1), run(4));
    }
}
