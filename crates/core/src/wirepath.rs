//! The wire path: application messages down to ethernet frames and back.
//!
//! Down-path (the simulated network): eDonkey message → UDP datagram →
//! IPv4 packet(s) (fragmenting at the MTU) → ethernet frames.
//! Up-path (the capture machine): frame → IPv4 → reassembly → UDP →
//! eDonkey payload.

use bytes::Bytes;
use etw_edonkey::ids::ClientId;
use etw_netsim::clock::VirtualTime;
use etw_netsim::frag::{fragment, Reassembler};
use etw_netsim::packet::{EthernetFrame, Ipv4Packet, UdpDatagram, PROTO_TCP, PROTO_UDP};

/// The simulated server's IPv4 address.
pub const SERVER_IP: u32 = 0x5216_0a01; // 82.22.10.1
/// The server's UDP port (the classic eDonkey server UDP port).
pub const SERVER_PORT: u16 = 4665;

/// Derives a stable client IPv4 address from its clientID. High IDs *are*
/// the address; low IDs (NATed clients) are mapped into a reserved /8 so
/// their packets still have well-formed, distinct source addresses.
pub fn client_ip(client: ClientId) -> u32 {
    match client.ipv4() {
        Some(octets) => u32::from_be_bytes(octets),
        None => 0x0a00_0000 | client.raw(), // 10.x.y.z
    }
}

/// Direction of a datagram on the captured link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Client query to the server.
    ToServer,
    /// Server answer to a client.
    FromServer,
}

/// Encapsulates an eDonkey payload into ethernet frames (one per IP
/// fragment). `ident` must be unique per datagram for reassembly.
pub fn encapsulate(
    payload: Vec<u8>,
    client: ClientId,
    client_port: u16,
    direction: Direction,
    ident: u16,
    mtu: usize,
) -> Vec<EthernetFrame> {
    let (src_ip, dst_ip, src_port, dst_port) = match direction {
        Direction::ToServer => (client_ip(client), SERVER_IP, client_port, SERVER_PORT),
        Direction::FromServer => (SERVER_IP, client_ip(client), SERVER_PORT, client_port),
    };
    let udp = UdpDatagram {
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        payload: Bytes::from(payload),
    };
    let ip = Ipv4Packet {
        src: src_ip,
        dst: dst_ip,
        ident,
        more_fragments: false,
        frag_offset: 0,
        ttl: 64,
        protocol: PROTO_UDP,
        payload: Bytes::from(udp.to_bytes()),
    };
    fragment(&ip, mtu)
        .into_iter()
        .map(|frag| EthernetFrame::ipv4(Bytes::from(frag.to_bytes())))
        .collect()
}

/// Builds a TCP-looking frame (payload opaque); the decoder must skip it,
/// as the paper restricts itself to UDP traffic.
pub fn tcp_noise_frame(src: u32, dst: u32, payload_len: usize) -> EthernetFrame {
    let ip = Ipv4Packet {
        src,
        dst,
        ident: 0,
        more_fragments: false,
        frag_offset: 0,
        ttl: 64,
        protocol: PROTO_TCP,
        payload: Bytes::from(vec![0u8; payload_len.max(20)]),
    };
    EthernetFrame::ipv4(Bytes::from(ip.to_bytes()))
}

/// Incremental RFC 1071 checksum accumulator (big-endian u16 words; odd
/// trailing byte padded with zero), folded like
/// [`internet_checksum`](etw_netsim::packet::internet_checksum).
fn csum_words(mut sum: u64, data: &[u8]) -> u64 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u64::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u64::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

fn csum_fold(mut sum: u64) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Serialises one UDP datagram straight to ethernet frame bytes in a
/// single buffer — byte-identical to `encapsulate(..)` followed by
/// `EthernetFrame::to_bytes()`, without the intermediate packet structs
/// and copies. Datagrams that need IP fragmentation (more than `mtu`
/// bytes of IP packet) take the generic path.
pub fn datagram_frames(
    payload: &[u8],
    client: ClientId,
    client_port: u16,
    direction: Direction,
    ident: u16,
    mtu: usize,
    mut emit: impl FnMut(Vec<u8>),
) {
    let (src_ip, dst_ip, src_port, dst_port) = match direction {
        Direction::ToServer => (client_ip(client), SERVER_IP, client_port, SERVER_PORT),
        Direction::FromServer => (SERVER_IP, client_ip(client), SERVER_PORT, client_port),
    };
    let udp_len = 8 + payload.len();
    if 20 + udp_len > mtu {
        for f in encapsulate(payload.to_vec(), client, client_port, direction, ident, mtu) {
            emit(f.to_bytes());
        }
        return;
    }
    let total_len = 20 + udp_len;
    let mut out = Vec::with_capacity(14 + total_len);
    // Ethernet header (fixed simulation MACs, IPv4 ethertype).
    out.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x01, 0x02, 0, 0, 0, 0, 0x02, 0x08, 0x00]);
    // IPv4 header.
    out.push(0x45);
    out.push(0);
    out.extend_from_slice(&(total_len as u16).to_be_bytes());
    out.extend_from_slice(&ident.to_be_bytes());
    out.extend_from_slice(&[0, 0]); // no fragmentation
    out.push(64); // ttl
    out.push(PROTO_UDP);
    out.extend_from_slice(&[0, 0]); // header checksum placeholder
    out.extend_from_slice(&src_ip.to_be_bytes());
    out.extend_from_slice(&dst_ip.to_be_bytes());
    let ip_csum = csum_fold(csum_words(0, &out[14..34]));
    out[24..26].copy_from_slice(&ip_csum.to_be_bytes());
    // UDP header + payload.
    out.extend_from_slice(&src_port.to_be_bytes());
    out.extend_from_slice(&dst_port.to_be_bytes());
    out.extend_from_slice(&(udp_len as u16).to_be_bytes());
    out.extend_from_slice(&[0, 0]); // udp checksum placeholder
    out.extend_from_slice(payload);
    // RFC 768 pseudo-header checksum over addresses + proto + length,
    // then the UDP bytes themselves.
    let mut sum = csum_words(0, &src_ip.to_be_bytes());
    sum = csum_words(sum, &dst_ip.to_be_bytes());
    sum += u64::from(PROTO_UDP);
    sum += udp_len as u64;
    sum = csum_words(sum, &out[34..]);
    let udp_csum = match csum_fold(sum) {
        0 => 0xffff,
        c => c,
    };
    out[40..42].copy_from_slice(&udp_csum.to_be_bytes());
    emit(out);
}

/// Fast single-buffer equivalent of
/// `tcp_noise_frame(..).to_bytes()` (zero-filled opaque TCP payload).
pub fn tcp_noise_frame_bytes(src: u32, dst: u32, payload_len: usize) -> Vec<u8> {
    let payload_len = payload_len.max(20);
    let total_len = 20 + payload_len;
    let mut out = Vec::with_capacity(14 + total_len);
    out.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x01, 0x02, 0, 0, 0, 0, 0x02, 0x08, 0x00]);
    out.push(0x45);
    out.push(0);
    out.extend_from_slice(&(total_len as u16).to_be_bytes());
    out.extend_from_slice(&[0, 0, 0, 0]); // ident 0, no fragmentation
    out.push(64);
    out.push(PROTO_TCP);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&src.to_be_bytes());
    out.extend_from_slice(&dst.to_be_bytes());
    let ip_csum = csum_fold(csum_words(0, &out[14..34]));
    out[24..26].copy_from_slice(&ip_csum.to_be_bytes());
    out.resize(14 + total_len, 0);
    out
}

/// What the capture machine recovers from one frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Recovered {
    /// A complete UDP datagram (possibly after reassembly) with the peer
    /// clientID and direction.
    Udp {
        /// Whose dialog this datagram belongs to.
        peer: ClientId,
        /// Query or answer.
        direction: Direction,
        /// eDonkey-level payload bytes.
        payload: Bytes,
        /// True if this datagram arrived fragmented.
        was_fragmented: bool,
    },
    /// A fragment that did not (yet) complete a datagram.
    FragmentPending,
    /// Non-UDP traffic (TCP etc.) — skipped, like the paper's tcp flows.
    NotUdp,
    /// Traffic not involving the server's UDP port (other applications).
    OtherPort,
    /// Unparseable link/network-layer bytes.
    ParseError,
}

/// Stateful up-path decoder: ethernet bytes → recovered UDP payloads.
pub struct WireDecoder {
    reassembler: Reassembler,
}

impl Default for WireDecoder {
    fn default() -> Self {
        WireDecoder {
            reassembler: Reassembler::with_default_timeout(),
        }
    }
}

impl WireDecoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembly statistics (fragments seen, reassembled, timed out).
    pub fn reassembly_stats(&self) -> etw_netsim::frag::ReassemblyStats {
        self.reassembler.stats()
    }

    /// Processes one captured frame.
    pub fn push(&mut self, now: VirtualTime, frame_bytes: &[u8]) -> Recovered {
        let Ok(frame) = EthernetFrame::parse(frame_bytes) else {
            return Recovered::ParseError;
        };
        let Ok(ip) = Ipv4Packet::parse(&frame.payload) else {
            return Recovered::ParseError;
        };
        if ip.protocol != PROTO_UDP {
            return Recovered::NotUdp;
        }
        let was_fragmented = ip.is_fragment();
        let Some(whole) = self.reassembler.push(now, ip) else {
            return Recovered::FragmentPending;
        };
        let Ok(udp) = UdpDatagram::parse(&whole) else {
            return Recovered::ParseError;
        };
        let (peer_ip, direction) = if udp.dst_ip == SERVER_IP && udp.dst_port == SERVER_PORT {
            (udp.src_ip, Direction::ToServer)
        } else if udp.src_ip == SERVER_IP && udp.src_port == SERVER_PORT {
            (udp.dst_ip, Direction::FromServer)
        } else {
            return Recovered::OtherPort;
        };
        let peer = if peer_ip & 0xff00_0000 == 0x0a00_0000 {
            ClientId(peer_ip & 0x00ff_ffff) // undo the low-ID mapping
        } else {
            ClientId(peer_ip)
        };
        Recovered::Udp {
            peer,
            direction,
            payload: udp.payload,
            was_fragmented,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etw_edonkey::messages::Message;

    fn query_bytes() -> Vec<u8> {
        Message::StatusRequest { challenge: 7 }.encode()
    }

    #[test]
    fn small_message_one_frame_round_trip() {
        let client = ClientId(0x5000_1234);
        let frames = encapsulate(query_bytes(), client, 4672, Direction::ToServer, 1, 1500);
        assert_eq!(frames.len(), 1);
        let mut d = WireDecoder::new();
        match d.push(VirtualTime::ZERO, &frames[0].to_bytes()) {
            Recovered::Udp {
                peer,
                direction,
                payload,
                was_fragmented,
            } => {
                assert_eq!(peer, client);
                assert_eq!(direction, Direction::ToServer);
                assert_eq!(&payload[..], &query_bytes()[..]);
                assert!(!was_fragmented);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn low_id_clients_mapped_and_recovered() {
        let client = ClientId::low(777);
        let frames = encapsulate(query_bytes(), client, 4672, Direction::ToServer, 2, 1500);
        let mut d = WireDecoder::new();
        match d.push(VirtualTime::ZERO, &frames[0].to_bytes()) {
            Recovered::Udp { peer, .. } => assert_eq!(peer, client),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn big_message_fragments_and_reassembles() {
        let payload = vec![0xE3u8; 5000];
        let client = ClientId(0x5000_0001);
        let frames = encapsulate(payload.clone(), client, 4672, Direction::ToServer, 3, 1500);
        assert!(frames.len() >= 4);
        let mut d = WireDecoder::new();
        let mut got = None;
        for f in &frames {
            match d.push(VirtualTime::ZERO, &f.to_bytes()) {
                Recovered::Udp {
                    payload,
                    was_fragmented,
                    ..
                } => {
                    assert!(was_fragmented);
                    got = Some(payload);
                }
                Recovered::FragmentPending => {}
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(&got.expect("reassembled")[..], &payload[..]);
        assert!(d.reassembly_stats().fragments >= 4);
    }

    #[test]
    fn answer_direction_detected() {
        let client = ClientId(0x5000_0009);
        let frames = encapsulate(
            Message::StatusResponse {
                challenge: 7,
                users: 1,
                files: 2,
            }
            .encode(),
            client,
            4672,
            Direction::FromServer,
            4,
            1500,
        );
        let mut d = WireDecoder::new();
        match d.push(VirtualTime::ZERO, &frames[0].to_bytes()) {
            Recovered::Udp {
                peer, direction, ..
            } => {
                assert_eq!(peer, client);
                assert_eq!(direction, Direction::FromServer);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tcp_frames_skipped() {
        let f = tcp_noise_frame(1, 2, 100);
        let mut d = WireDecoder::new();
        assert_eq!(d.push(VirtualTime::ZERO, &f.to_bytes()), Recovered::NotUdp);
    }

    #[test]
    fn unrelated_udp_is_other_port() {
        let udp = UdpDatagram {
            src_ip: 1,
            dst_ip: 2,
            src_port: 53,
            dst_port: 53,
            payload: Bytes::from_static(b"dns-ish"),
        };
        let ip = Ipv4Packet {
            src: 1,
            dst: 2,
            ident: 0,
            more_fragments: false,
            frag_offset: 0,
            ttl: 64,
            protocol: PROTO_UDP,
            payload: Bytes::from(udp.to_bytes()),
        };
        let frame = EthernetFrame::ipv4(Bytes::from(ip.to_bytes()));
        let mut d = WireDecoder::new();
        assert_eq!(
            d.push(VirtualTime::ZERO, &frame.to_bytes()),
            Recovered::OtherPort
        );
    }

    #[test]
    fn garbage_is_parse_error() {
        let mut d = WireDecoder::new();
        assert_eq!(d.push(VirtualTime::ZERO, &[1, 2, 3]), Recovered::ParseError);
    }

    #[test]
    fn client_ip_mapping_is_injective_for_low_ids() {
        let a = client_ip(ClientId::low(1));
        let b = client_ip(ClientId::low(2));
        assert_ne!(a, b);
        assert_eq!(a & 0xff00_0000, 0x0a00_0000);
    }

    #[test]
    fn fast_datagram_frames_match_generic_path() {
        let mut payloads: Vec<Vec<u8>> =
            vec![Vec::new(), vec![0xE3], query_bytes(), (0..255u8).collect()];
        // Odd length, near-MTU length, and over-MTU (fragmenting) cases.
        payloads.push(vec![0xAB; 1471]);
        payloads.push(vec![0xCD; 1472]);
        payloads.push(vec![0x77; 1473]);
        payloads.push(vec![0x55; 4000]);
        for client in [ClientId(0x5000_1234), ClientId::low(99)] {
            for dir in [Direction::ToServer, Direction::FromServer] {
                for (i, p) in payloads.iter().enumerate() {
                    let expect: Vec<Vec<u8>> =
                        encapsulate(p.clone(), client, 4710, dir, i as u16, 1500)
                            .iter()
                            .map(|f| f.to_bytes())
                            .collect();
                    let mut got = Vec::new();
                    datagram_frames(p, client, 4710, dir, i as u16, 1500, |b| got.push(b));
                    assert_eq!(expect, got, "payload case {i} dir {dir:?}");
                }
            }
        }
    }

    #[test]
    fn fast_tcp_noise_matches_generic_path() {
        for len in [0usize, 19, 20, 21, 40, 1399] {
            assert_eq!(
                tcp_noise_frame(0xdead_beef, SERVER_IP, len).to_bytes(),
                tcp_noise_frame_bytes(0xdead_beef, SERVER_IP, len),
                "len {len}"
            );
        }
    }
}
