//! The wire path: application messages down to ethernet frames and back.
//!
//! Down-path (the simulated network): eDonkey message → UDP datagram →
//! IPv4 packet(s) (fragmenting at the MTU) → ethernet frames.
//! Up-path (the capture machine): frame → IPv4 → reassembly → UDP →
//! eDonkey payload.

use bytes::Bytes;
use etw_edonkey::ids::ClientId;
use etw_netsim::clock::VirtualTime;
use etw_netsim::frag::{fragment, Reassembler};
use etw_netsim::packet::{EthernetFrame, Ipv4Packet, UdpDatagram, PROTO_TCP, PROTO_UDP};

/// The simulated server's IPv4 address.
pub const SERVER_IP: u32 = 0x5216_0a01; // 82.22.10.1
/// The server's UDP port (the classic eDonkey server UDP port).
pub const SERVER_PORT: u16 = 4665;

/// Derives a stable client IPv4 address from its clientID. High IDs *are*
/// the address; low IDs (NATed clients) are mapped into a reserved /8 so
/// their packets still have well-formed, distinct source addresses.
pub fn client_ip(client: ClientId) -> u32 {
    match client.ipv4() {
        Some(octets) => u32::from_be_bytes(octets),
        None => 0x0a00_0000 | client.raw(), // 10.x.y.z
    }
}

/// Direction of a datagram on the captured link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Client query to the server.
    ToServer,
    /// Server answer to a client.
    FromServer,
}

/// Encapsulates an eDonkey payload into ethernet frames (one per IP
/// fragment). `ident` must be unique per datagram for reassembly.
pub fn encapsulate(
    payload: Vec<u8>,
    client: ClientId,
    client_port: u16,
    direction: Direction,
    ident: u16,
    mtu: usize,
) -> Vec<EthernetFrame> {
    let (src_ip, dst_ip, src_port, dst_port) = match direction {
        Direction::ToServer => (client_ip(client), SERVER_IP, client_port, SERVER_PORT),
        Direction::FromServer => (SERVER_IP, client_ip(client), SERVER_PORT, client_port),
    };
    let udp = UdpDatagram {
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        payload: Bytes::from(payload),
    };
    let ip = Ipv4Packet {
        src: src_ip,
        dst: dst_ip,
        ident,
        more_fragments: false,
        frag_offset: 0,
        ttl: 64,
        protocol: PROTO_UDP,
        payload: Bytes::from(udp.to_bytes()),
    };
    fragment(&ip, mtu)
        .into_iter()
        .map(|frag| EthernetFrame::ipv4(Bytes::from(frag.to_bytes())))
        .collect()
}

/// Builds a TCP-looking frame (payload opaque); the decoder must skip it,
/// as the paper restricts itself to UDP traffic.
pub fn tcp_noise_frame(src: u32, dst: u32, payload_len: usize) -> EthernetFrame {
    let ip = Ipv4Packet {
        src,
        dst,
        ident: 0,
        more_fragments: false,
        frag_offset: 0,
        ttl: 64,
        protocol: PROTO_TCP,
        payload: Bytes::from(vec![0u8; payload_len.max(20)]),
    };
    EthernetFrame::ipv4(Bytes::from(ip.to_bytes()))
}

/// What the capture machine recovers from one frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Recovered {
    /// A complete UDP datagram (possibly after reassembly) with the peer
    /// clientID and direction.
    Udp {
        /// Whose dialog this datagram belongs to.
        peer: ClientId,
        /// Query or answer.
        direction: Direction,
        /// eDonkey-level payload bytes.
        payload: Bytes,
        /// True if this datagram arrived fragmented.
        was_fragmented: bool,
    },
    /// A fragment that did not (yet) complete a datagram.
    FragmentPending,
    /// Non-UDP traffic (TCP etc.) — skipped, like the paper's tcp flows.
    NotUdp,
    /// Traffic not involving the server's UDP port (other applications).
    OtherPort,
    /// Unparseable link/network-layer bytes.
    ParseError,
}

/// Stateful up-path decoder: ethernet bytes → recovered UDP payloads.
pub struct WireDecoder {
    reassembler: Reassembler,
}

impl Default for WireDecoder {
    fn default() -> Self {
        WireDecoder {
            reassembler: Reassembler::with_default_timeout(),
        }
    }
}

impl WireDecoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembly statistics (fragments seen, reassembled, timed out).
    pub fn reassembly_stats(&self) -> etw_netsim::frag::ReassemblyStats {
        self.reassembler.stats()
    }

    /// Processes one captured frame.
    pub fn push(&mut self, now: VirtualTime, frame_bytes: &[u8]) -> Recovered {
        let Ok(frame) = EthernetFrame::parse(frame_bytes) else {
            return Recovered::ParseError;
        };
        let Ok(ip) = Ipv4Packet::parse(&frame.payload) else {
            return Recovered::ParseError;
        };
        if ip.protocol != PROTO_UDP {
            return Recovered::NotUdp;
        }
        let was_fragmented = ip.is_fragment();
        let Some(whole) = self.reassembler.push(now, ip) else {
            return Recovered::FragmentPending;
        };
        let Ok(udp) = UdpDatagram::parse(&whole) else {
            return Recovered::ParseError;
        };
        let (peer_ip, direction) = if udp.dst_ip == SERVER_IP && udp.dst_port == SERVER_PORT {
            (udp.src_ip, Direction::ToServer)
        } else if udp.src_ip == SERVER_IP && udp.src_port == SERVER_PORT {
            (udp.dst_ip, Direction::FromServer)
        } else {
            return Recovered::OtherPort;
        };
        let peer = if peer_ip & 0xff00_0000 == 0x0a00_0000 {
            ClientId(peer_ip & 0x00ff_ffff) // undo the low-ID mapping
        } else {
            ClientId(peer_ip)
        };
        Recovered::Udp {
            peer,
            direction,
            payload: udp.payload,
            was_fragmented,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etw_edonkey::messages::Message;

    fn query_bytes() -> Vec<u8> {
        Message::StatusRequest { challenge: 7 }.encode()
    }

    #[test]
    fn small_message_one_frame_round_trip() {
        let client = ClientId(0x5000_1234);
        let frames = encapsulate(query_bytes(), client, 4672, Direction::ToServer, 1, 1500);
        assert_eq!(frames.len(), 1);
        let mut d = WireDecoder::new();
        match d.push(VirtualTime::ZERO, &frames[0].to_bytes()) {
            Recovered::Udp {
                peer,
                direction,
                payload,
                was_fragmented,
            } => {
                assert_eq!(peer, client);
                assert_eq!(direction, Direction::ToServer);
                assert_eq!(&payload[..], &query_bytes()[..]);
                assert!(!was_fragmented);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn low_id_clients_mapped_and_recovered() {
        let client = ClientId::low(777);
        let frames = encapsulate(query_bytes(), client, 4672, Direction::ToServer, 2, 1500);
        let mut d = WireDecoder::new();
        match d.push(VirtualTime::ZERO, &frames[0].to_bytes()) {
            Recovered::Udp { peer, .. } => assert_eq!(peer, client),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn big_message_fragments_and_reassembles() {
        let payload = vec![0xE3u8; 5000];
        let client = ClientId(0x5000_0001);
        let frames = encapsulate(payload.clone(), client, 4672, Direction::ToServer, 3, 1500);
        assert!(frames.len() >= 4);
        let mut d = WireDecoder::new();
        let mut got = None;
        for f in &frames {
            match d.push(VirtualTime::ZERO, &f.to_bytes()) {
                Recovered::Udp {
                    payload,
                    was_fragmented,
                    ..
                } => {
                    assert!(was_fragmented);
                    got = Some(payload);
                }
                Recovered::FragmentPending => {}
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(&got.expect("reassembled")[..], &payload[..]);
        assert!(d.reassembly_stats().fragments >= 4);
    }

    #[test]
    fn answer_direction_detected() {
        let client = ClientId(0x5000_0009);
        let frames = encapsulate(
            Message::StatusResponse {
                challenge: 7,
                users: 1,
                files: 2,
            }
            .encode(),
            client,
            4672,
            Direction::FromServer,
            4,
            1500,
        );
        let mut d = WireDecoder::new();
        match d.push(VirtualTime::ZERO, &frames[0].to_bytes()) {
            Recovered::Udp {
                peer, direction, ..
            } => {
                assert_eq!(peer, client);
                assert_eq!(direction, Direction::FromServer);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tcp_frames_skipped() {
        let f = tcp_noise_frame(1, 2, 100);
        let mut d = WireDecoder::new();
        assert_eq!(d.push(VirtualTime::ZERO, &f.to_bytes()), Recovered::NotUdp);
    }

    #[test]
    fn unrelated_udp_is_other_port() {
        let udp = UdpDatagram {
            src_ip: 1,
            dst_ip: 2,
            src_port: 53,
            dst_port: 53,
            payload: Bytes::from_static(b"dns-ish"),
        };
        let ip = Ipv4Packet {
            src: 1,
            dst: 2,
            ident: 0,
            more_fragments: false,
            frag_offset: 0,
            ttl: 64,
            protocol: PROTO_UDP,
            payload: Bytes::from(udp.to_bytes()),
        };
        let frame = EthernetFrame::ipv4(Bytes::from(ip.to_bytes()));
        let mut d = WireDecoder::new();
        assert_eq!(
            d.push(VirtualTime::ZERO, &frame.to_bytes()),
            Recovered::OtherPort
        );
    }

    #[test]
    fn garbage_is_parse_error() {
        let mut d = WireDecoder::new();
        assert_eq!(d.push(VirtualTime::ZERO, &[1, 2, 3]), Recovered::ParseError);
    }

    #[test]
    fn client_ip_mapping_is_injective_for_low_ids() {
        let a = client_ip(ClientId::low(1));
        let b = client_ip(ClientId::low(2));
        assert_ne!(a, b);
        assert_eq!(a & 0xff00_0000, 0x0a00_0000);
    }
}
