//! The campaign driver: simulate N virtual weeks of server life and run
//! the capture machine over it, producing the dataset and every number
//! the paper reports.

use crate::checkpoint::Checkpoint;
use crate::config::{CampaignConfig, ConfigError};
use crate::pipeline::{
    run_capture_pipeline_batched, run_capture_pipeline_with, PipelineOptions, PipelineStats,
    ResumePoint, TailConfig, TimedFrame, TraceOptions,
};
use crate::source::SourceStream;
use etw_anonymize::fileid::{BucketedArrays, ByteSelector};
use etw_anonymize::scheme::{AnonRecord, PaperScheme};
use etw_anonymize::AnonymizationScheme;
use etw_anonymize::DirectArrayAnonymizer;
use etw_faults::FaultyLink;
use etw_netsim::capture::CaptureBuffer;
use etw_telemetry::health::{HealthRecorder, HealthSeries};
use etw_telemetry::Registry;
use etw_workload::catalog::Catalog;
use etw_workload::clients::Population;
use etw_xmlout::writer::DatasetWriter;
use parking_lot::Mutex;
use std::io::{self, Write};
use std::sync::Arc;

/// Failures of the writer-owning campaign entry points
/// ([`try_run_campaign_to_writer`] and friends): a bad configuration, or
/// the dataset writer's sink failing mid-campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// Invalid configuration or checkpoint.
    Config(ConfigError),
    /// The dataset writer hit an io error.
    Io(io::Error),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Config(e) => write!(f, "{e}"),
            CampaignError::Io(e) => write!(f, "dataset writer failed: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<ConfigError> for CampaignError {
    fn from(e: ConfigError) -> Self {
        CampaignError::Config(e)
    }
}

/// Capture-side counters, shared between the frame producer and the
/// report.
#[derive(Default, Debug)]
pub struct CaptureSide {
    /// Frames offered to the capture ring.
    pub offered: u64,
    /// Frames captured.
    pub captured: u64,
    /// Frames lost to ring overflow (Fig. 2's counter).
    pub lost: u64,
    /// Sparse per-second loss series.
    pub losses_per_sec: Vec<(u64, u64)>,
    /// Client queries generated at the application level.
    pub queries_generated: u64,
    /// Server answers generated.
    pub answers_generated: u64,
    /// Queries corrupted on the wire.
    pub corrupted: u64,
    /// Noise datagrams injected (UDP).
    pub udp_noise: u64,
    /// TCP packets injected.
    pub tcp_noise: u64,
}

/// Everything a campaign run produces.
#[derive(Debug)]
pub struct CampaignReport {
    /// Pipeline statistics (decode, reassembly, records).
    pub pipeline: PipelineStats,
    /// Capture-side statistics.
    pub capture: CaptureSide,
    /// Distinct clientIDs in the dataset.
    pub distinct_clients: u32,
    /// Distinct fileIDs in the dataset.
    pub distinct_files: u64,
    /// fileID bucket sizes under the configured (fixed) selector.
    pub bucket_sizes_alternative: Vec<usize>,
    /// fileID bucket sizes under FIRST_TWO indexing (Fig. 3's left
    /// panel), when tracking was enabled.
    pub bucket_sizes_first_two: Option<Vec<usize>>,
    /// The dataset records accumulated by the caller-provided sink?
    /// No — records stream through `on_record`; this is their count.
    pub records: u64,
    /// Periodic machine-health records (empty unless the campaign ran
    /// through [`run_campaign_observed`] with an enabled registry and a
    /// non-zero `health_interval_secs`).
    pub health: HealthSeries,
}

/// Runs a full campaign, streaming anonymised records into `on_record`.
pub fn run_campaign(config: &CampaignConfig, on_record: impl FnMut(AnonRecord)) -> CampaignReport {
    run_campaign_observed(config, &Registry::disabled(), on_record)
}

/// [`run_campaign`] with live telemetry: the capture ring, every
/// pipeline stage, and the application-level generators report into
/// `registry` while the campaign runs (see
/// [`run_capture_pipeline_observed`] and `CaptureBuffer::attach_telemetry`
/// for the metric names), and a [`HealthRecorder`] cuts a snapshot
/// every `config.health_interval_secs` of virtual time. Callers holding
/// a clone of `registry` can snapshot it concurrently from another
/// thread — that is what `etwtool monitor` does.
pub fn run_campaign_observed(
    config: &CampaignConfig,
    registry: &Registry,
    on_record: impl FnMut(AnonRecord),
) -> CampaignReport {
    // etwlint: allow(no-panic-hot-path): config errors are startup-time
    // caller bugs, not capture-time failures; fallible callers use
    // try_run_campaign_observed instead.
    try_run_campaign_observed(config, registry, on_record).expect("invalid campaign configuration")
}

/// Fallible variant of [`run_campaign_observed`]: validates `config` up
/// front and returns the typed [`ConfigError`] instead of panicking, so
/// binaries can report bad configuration gracefully.
pub fn try_run_campaign_observed(
    config: &CampaignConfig,
    registry: &Registry,
    on_record: impl FnMut(AnonRecord),
) -> Result<CampaignReport, ConfigError> {
    campaign_inner(config, registry, None, on_record, |_| {})
}

/// [`try_run_campaign_observed`] plus resume checkpoints: with a nonzero
/// `config.checkpoint_interval_secs`, `on_checkpoint` receives a
/// [`Checkpoint`] each time virtual time crosses an interval boundary.
/// The campaign fills everything except `writer_bytes`, which only the
/// owner of the dataset writer knows — set it before persisting (see
/// `repro soak`).
pub fn try_run_campaign_checkpointed(
    config: &CampaignConfig,
    registry: &Registry,
    on_record: impl FnMut(AnonRecord),
    on_checkpoint: impl FnMut(Checkpoint),
) -> Result<CampaignReport, ConfigError> {
    campaign_inner(config, registry, None, on_record, on_checkpoint)
}

/// Resumes an interrupted campaign from `checkpoint`: restores the
/// anonymiser from its appearance orders, replays the deterministic
/// frame stream, skips the `checkpoint.records` messages already written
/// and streams only the remainder into `on_record`. Appended to a
/// dataset truncated to `checkpoint.writer_bytes`, the output is
/// byte-identical to an uninterrupted run's.
///
/// The returned report describes the *resumed segment*: `records` counts
/// newly written records, while `distinct_clients`/`distinct_files`
/// cover the whole campaign (restored state included).
pub fn try_resume_campaign_observed(
    config: &CampaignConfig,
    registry: &Registry,
    checkpoint: &Checkpoint,
    on_record: impl FnMut(AnonRecord),
    on_checkpoint: impl FnMut(Checkpoint),
) -> Result<CampaignReport, ConfigError> {
    campaign_inner(config, registry, Some(checkpoint), on_record, on_checkpoint)
}

/// Runs a campaign whose tail formats records through the batched
/// zero-allocation encoder straight into `writer` (see
/// [`run_capture_pipeline_batched`]): the sequential stage hands
/// fixed-size batches to an overlapped formatter thread while a writer
/// thread flushes finished buffers in order, so the dataset bytes are
/// identical to feeding [`run_campaign_observed`]'s records through
/// `DatasetWriter::write_record` one by one — only faster.
///
/// Checkpoints arrive with `writer_bytes` already stamped (the writer
/// thread knows its own offset), ready to persist as-is. The writer is
/// returned still open: call `finish()` to close the document.
pub fn try_run_campaign_to_writer<W: Write + Send>(
    config: &CampaignConfig,
    registry: &Registry,
    tail: TailConfig,
    writer: DatasetWriter<W>,
    on_checkpoint: impl FnMut(Checkpoint) + Send,
) -> Result<(CampaignReport, DatasetWriter<W>), CampaignError> {
    campaign_to_writer_inner(config, registry, None, tail, writer, on_checkpoint)
}

/// Resumes an interrupted campaign through the batched tail, appending
/// to `writer` (restored with `DatasetWriter::resume` after truncating
/// the file to `checkpoint.writer_bytes`). The combined file is
/// byte-identical to an uninterrupted [`try_run_campaign_to_writer`]
/// run — and to the serial writer's output.
pub fn try_resume_campaign_to_writer<W: Write + Send>(
    config: &CampaignConfig,
    registry: &Registry,
    checkpoint: &Checkpoint,
    tail: TailConfig,
    writer: DatasetWriter<W>,
    on_checkpoint: impl FnMut(Checkpoint) + Send,
) -> Result<(CampaignReport, DatasetWriter<W>), CampaignError> {
    campaign_to_writer_inner(
        config,
        registry,
        Some(checkpoint),
        tail,
        writer,
        on_checkpoint,
    )
}

fn campaign_to_writer_inner<W: Write + Send>(
    config: &CampaignConfig,
    registry: &Registry,
    resume: Option<&Checkpoint>,
    tail: TailConfig,
    writer: DatasetWriter<W>,
    mut on_checkpoint: impl FnMut(Checkpoint) + Send,
) -> Result<(CampaignReport, DatasetWriter<W>), CampaignError> {
    let seed = config.seed;
    // Reject a bad shard count with a typed error here, before the
    // pipeline's assert would turn it into a panic.
    if !etw_anonymize::shard::shard_count_valid(tail.anon_shards) {
        return Err(ConfigError::ShardCountInvalid {
            got: tail.anon_shards,
        }
        .into());
    }
    campaign_inner_core(config, registry, resume, |frames, scheme, fig3, opts| {
        run_capture_pipeline_batched(
            frames,
            config.decode_workers,
            scheme,
            fig3,
            registry,
            opts,
            tail,
            writer,
            |cut, writer_bytes| on_checkpoint(Checkpoint::from_pipeline(seed, cut, writer_bytes)),
        )
        .map_err(CampaignError::Io)
    })
}

fn campaign_inner(
    config: &CampaignConfig,
    registry: &Registry,
    resume: Option<&Checkpoint>,
    mut on_record: impl FnMut(AnonRecord),
    mut on_checkpoint: impl FnMut(Checkpoint),
) -> Result<CampaignReport, ConfigError> {
    let seed = config.seed;
    let result = campaign_inner_core(config, registry, resume, |frames, scheme, fig3, opts| {
        let (stats, scheme, fig3) = run_capture_pipeline_with(
            frames,
            config.decode_workers,
            scheme,
            fig3,
            registry,
            opts,
            &mut on_record,
            |cut| on_checkpoint(Checkpoint::from_pipeline(seed, cut, 0)),
        );
        Ok((stats, scheme, fig3, ()))
    });
    match result {
        Ok((report, ())) => Ok(report),
        Err(CampaignError::Config(e)) => Err(e),
        // etwlint: allow(no-panic-hot-path): the serial tail performs no
        // io, so its closure above can only fail with Config.
        Err(CampaignError::Io(_)) => unreachable!("serial tail does no io"),
    }
}

/// The shared campaign body: validates, builds the world (catalog,
/// population, generator, server, capture ring, fault link), restores or
/// creates the anonymiser, delegates the capture run to `run_tail`
/// (serial sink or batched writer), then assembles the report. `T`
/// smuggles tail-specific state — the dataset writer — back out.
fn campaign_inner_core<T>(
    config: &CampaignConfig,
    registry: &Registry,
    resume: Option<&Checkpoint>,
    run_tail: impl for<'f> FnOnce(
        Box<dyn Iterator<Item = TimedFrame> + Send + 'f>,
        PaperScheme,
        Option<BucketedArrays>,
        &PipelineOptions,
    ) -> Result<
        (PipelineStats, PaperScheme, Option<BucketedArrays>, T),
        CampaignError,
    >,
) -> Result<(CampaignReport, T), CampaignError> {
    config.validate()?;
    if let Some(cp) = resume {
        if cp.seed != config.seed {
            return Err(ConfigError::CheckpointMismatch {
                reason: "checkpoint seed differs from the campaign seed",
            }
            .into());
        }
        if config.track_fig3 && cp.fig3_order.is_none() {
            return Err(ConfigError::CheckpointMismatch {
                reason: "config tracks Fig. 3 but the checkpoint has no tracker state",
            }
            .into());
        }
    }
    let catalog = Arc::new(Catalog::generate(&config.catalog, config.seed ^ 1));
    let population = Arc::new(Population::generate(&config.population, config.seed ^ 2));
    let capture_stats = Arc::new(Mutex::new(CaptureSide::default()));
    let mut capture = CaptureBuffer::new(config.capture_ring, config.capture_drain_pps);
    capture.attach_telemetry(registry);
    let health_out: Arc<Mutex<Option<(HealthRecorder, u64)>>> = Arc::new(Mutex::new(None));
    // The sharded front-end: `config.source.source_shards` generator
    // workers and index shards behind a sequential merger — frame output
    // is byte-identical for every shard count (DESIGN.md §17).
    let frames = SourceStream::spawn(
        catalog,
        population,
        config,
        registry,
        capture,
        Arc::clone(&capture_stats),
        Some(HealthRecorder::new(
            registry.clone(),
            config.health_interval_secs,
        )),
        Arc::clone(&health_out),
    );

    // Resume restores the anonymiser by replaying its appearance orders;
    // a fresh run starts empty. Either way the frame stream replays from
    // the seed — determinism is the checkpoint's other half.
    let (scheme, fig3) = match resume {
        None => (
            AnonymizationScheme::new(
                DirectArrayAnonymizer::new(config.client_space_bits),
                BucketedArrays::new(config.fileid_selector),
            ),
            config
                .track_fig3
                .then(|| BucketedArrays::new(ByteSelector::FIRST_TWO)),
        ),
        Some(cp) => (
            AnonymizationScheme::new(
                DirectArrayAnonymizer::from_order(config.client_space_bits, &cp.client_order),
                BucketedArrays::from_order(config.fileid_selector, &cp.file_order),
            ),
            cp.fig3_order
                .as_ref()
                .filter(|_| config.track_fig3)
                .map(|order| BucketedArrays::from_order(ByteSelector::FIRST_TWO, order)),
        ),
    };
    let opts = PipelineOptions {
        checkpoint_interval_us: config.checkpoint_interval_secs * 1_000_000,
        resume: resume.map(|cp| ResumePoint {
            records: cp.records,
            virtual_us: cp.virtual_us,
            next_checkpoint_us: cp.next_checkpoint_us,
        }),
        faults: config.faults.worker_plan(),
        trace: (config.trace_ring_slots > 0).then(|| {
            if let Some(dir) = &config.trace_dump_dir {
                // Best-effort: an unwritable dump dir degrades to
                // in-memory recording, it never stops the capture.
                let _ = std::fs::create_dir_all(dir);
            }
            TraceOptions {
                ring_slots: config.trace_ring_slots,
                dump_dir: config.trace_dump_dir.clone(),
                ..TraceOptions::default()
            }
        }),
    };

    // The lossy link sits between the capture tap and the pipeline, so
    // `faults.link.offered_total` equals the ring's captured count.
    let frames: Box<dyn Iterator<Item = TimedFrame> + Send + '_> = if config.faults.link_active() {
        Box::new(FaultyLink::new(frames, config.faults.clone(), registry))
    } else {
        Box::new(frames)
    };

    let (pipeline, scheme, fig3, extra) = run_tail(frames, scheme, fig3, &opts)?;

    // Surface the anonymiser's probe work: counters the health file and
    // the prometheus dump can report alongside the pipeline stages.
    let probes = scheme.file_encoder().probe_stats();
    registry
        .gauge("anon.fileid.probes_total")
        .set(probes.probes as i64);
    registry
        .gauge("anon.fileid.comparisons_total")
        .set(probes.comparisons as i64);
    registry
        .gauge("anon.fileid.max_probe_depth")
        .set(probes.max_probe_depth as i64);
    registry
        .gauge("anon.fileid.inserts_total")
        .set(probes.inserts as i64);
    registry
        .gauge("anon.fileid.shifted_total")
        .set(probes.shifted as i64);
    registry
        .gauge("anon.fileid.max_shift")
        .set(probes.max_shift as i64);

    let capture = Arc::try_unwrap(capture_stats)
        // etwlint: allow(no-panic-hot-path): the pipeline has joined by
        // here, so this Arc is provably the last holder; failure would be
        // a refcount-leak bug worth aborting on.
        .expect("no other capture-stats holders")
        .into_inner();
    // Cut the final health record only now, after the sink has drained,
    // so its snapshot agrees with the report's totals.
    let health = health_out
        .lock()
        .take()
        .map(|(h, virtual_us)| h.finish(virtual_us))
        .unwrap_or_default();
    Ok((
        CampaignReport {
            records: pipeline.records,
            distinct_clients: scheme.distinct_clients(),
            distinct_files: scheme.distinct_files(),
            bucket_sizes_alternative: scheme.file_encoder().bucket_sizes(),
            bucket_sizes_first_two: fig3.map(|f| f.bucket_sizes()),
            pipeline,
            capture,
            health,
        },
        extra,
    ))
}

/// Renders a [`HealthSeries`] as a gnuplot-ready `.dat` table, one row
/// per health record. Columns (all cumulative unless noted):
///
/// 1. virtual time (s)    2. wall time (s)
/// 3. interval RTF        4. cumulative RTF (virtual s / wall s)
/// 5. frames produced     6. frames decoded
/// 7. records emitted     8. ring packets lost
/// 9. decode_in stalls   10. decode_in queue depth (instantaneous)
/// 11. decode_out queue depth (instantaneous)
/// 12. reorder depth high-water mark
pub fn render_health_dat(health: &HealthSeries) -> String {
    let mut out = String::from(
        "# virtual_s wall_s rtf_interval rtf_cumulative frames_produced \
         frames_decoded records ring_lost decode_in_stalls \
         decode_in_depth decode_out_depth reorder_depth_hwm\n",
    );
    for r in &health.records {
        let s = &r.snapshot;
        out.push_str(&format!(
            "{} {:.3} {:.1} {:.1} {} {} {} {} {} {} {} {}\n",
            r.virtual_secs(),
            r.wall_secs,
            r.rtf_interval,
            r.rtf_cumulative,
            s.counter("stage.producer.frames_total"),
            s.counter("stage.decode.frames_total"),
            s.counter("stage.sink.records_total"),
            s.counter("ring.lost_total"),
            s.counter("chan.decode_in.stalls_total"),
            s.gauge("chan.decode_in.depth"),
            s.gauge("chan.decode_out.depth"),
            s.gauge("stage.reorder.depth_hwm"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> (CampaignReport, Vec<AnonRecord>) {
        let mut records = Vec::new();
        let report = run_campaign(&CampaignConfig::tiny(), |r| records.push(r));
        (report, records)
    }

    #[test]
    fn campaign_produces_dataset() {
        let (report, records) = tiny_report();
        assert!(report.records > 500, "records {}", report.records);
        assert_eq!(report.records as usize, records.len());
        assert!(report.distinct_clients > 100);
        assert!(report.distinct_files > 200);
        // Conservation at the capture.
        assert_eq!(
            report.capture.offered,
            report.capture.captured + report.capture.lost
        );
        // The pipeline saw exactly the captured frames.
        assert_eq!(report.pipeline.frames, report.capture.captured);
    }

    #[test]
    fn records_are_time_ordered() {
        let (_, records) = tiny_report();
        // Answers are emitted slightly after queries; overall order must
        // be non-decreasing because the capture ring preserves order.
        for w in records.windows(2) {
            assert!(w[0].ts_us <= w[1].ts_us, "{} > {}", w[0].ts_us, w[1].ts_us);
        }
    }

    #[test]
    fn undecodable_fraction_close_to_configured() {
        let (report, _) = tiny_report();
        let frac = report.pipeline.decoder.undecoded_fraction();
        // Configured 0.68 % corruption; fragment/ring losses can shave a
        // corrupted datagram, so accept a generous band around it.
        assert!(frac > 0.001, "undecoded fraction {frac}");
        assert!(frac < 0.03, "undecoded fraction {frac}");
    }

    #[test]
    fn fig3_buckets_polluted_under_first_two() {
        let (report, _) = tiny_report();
        let first = report.bucket_sizes_first_two.expect("tracking enabled");
        let alt = &report.bucket_sizes_alternative;
        // Pollution concentrates in buckets 0 and 256 under FIRST_TWO…
        let max_first = *first.iter().max().unwrap();
        assert!(first[0] + first[256] > 0, "no pollution captured");
        assert!(
            first[0].max(first[256]) == max_first,
            "pollution should dominate: bucket0={} bucket256={} max={}",
            first[0],
            first[256],
            max_first
        );
        // …and spreads under the alternative selector.
        let max_alt = *alt.iter().max().unwrap();
        assert!(
            max_alt * 4 < max_first,
            "alternative selector should balance: {max_alt} vs {max_first}"
        );
        // Both stores saw the same distinct fileIDs.
        let sum_first: usize = first.iter().sum();
        let sum_alt: usize = alt.iter().sum();
        assert_eq!(sum_first, sum_alt);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut records = Vec::new();
            let report = run_campaign(&CampaignConfig::tiny(), |r| records.push(r));
            (report.records, report.distinct_clients, records)
        };
        let (n1, c1, r1) = run();
        let (n2, c2, r2) = run();
        assert_eq!(n1, n2);
        assert_eq!(c1, c2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn dataset_invariant_under_source_shards() {
        let run = |shards: usize| {
            let mut config = CampaignConfig::tiny();
            config.source.source_shards = shards;
            let mut records = Vec::new();
            let report = run_campaign(&config, |r| records.push(r));
            (report, records)
        };
        let (base_report, base) = run(1);
        assert!(base.len() > 500, "records {}", base.len());
        for shards in [2usize, 4] {
            let (report, records) = run(shards);
            assert_eq!(base, records, "{shards} source shards: dataset diverges");
            assert_eq!(base_report.records, report.records);
            assert_eq!(base_report.distinct_clients, report.distinct_clients);
            assert_eq!(base_report.distinct_files, report.distinct_files);
            assert_eq!(base_report.capture.offered, report.capture.offered);
            assert_eq!(base_report.capture.lost, report.capture.lost);
            assert_eq!(
                base_report.bucket_sizes_alternative,
                report.bucket_sizes_alternative
            );
        }
    }

    #[test]
    fn noise_reaches_classifiers() {
        let (report, _) = tiny_report();
        assert!(report.pipeline.not_udp > 0, "no TCP noise seen");
        assert!(
            report.pipeline.decoder.not_edonkey > 0,
            "no UDP noise classified"
        );
    }

    #[test]
    fn observed_campaign_cuts_health_records() {
        let registry = Registry::new();
        let mut config = CampaignConfig::tiny();
        config.health_interval_secs = 600;
        let report = run_campaign_observed(&config, &registry, |_| {});

        // tiny() runs 1800 virtual seconds → boundaries at 600, 1200,
        // 1800 (+ a final cut only if time advanced past the last one).
        assert!(
            (3..=4).contains(&report.health.records.len()),
            "expected 3-4 health records, got {}",
            report.health.records.len()
        );
        let mut prev_virtual = 0;
        let mut prev_frames = 0;
        for rec in &report.health.records {
            assert!(rec.virtual_us > prev_virtual, "virtual time must advance");
            prev_virtual = rec.virtual_us;
            assert!(rec.rtf_interval > 0.0 && rec.rtf_interval.is_finite());
            let frames = rec.snapshot.counter("stage.producer.frames_total");
            assert!(frames >= prev_frames, "counters must be monotone");
            prev_frames = frames;
        }

        // The final snapshot agrees with the report's own accounting.
        let last = &report.health.records.last().unwrap().snapshot;
        assert_eq!(last.counter("ring.offered_total"), report.capture.offered);
        assert_eq!(last.counter("ring.captured_total"), report.capture.captured);
        assert_eq!(last.counter("ring.lost_total"), report.capture.lost);
        assert_eq!(last.counter("stage.sink.records_total"), report.records);
        assert_eq!(
            last.counter("campaign.queries_total"),
            report.capture.queries_generated
        );
        assert_eq!(
            last.counter("campaign.answers_total"),
            report.capture.answers_generated
        );
    }

    #[test]
    fn faulty_campaign_conserves_frames_and_is_deterministic() {
        let config = CampaignConfig::tiny_faulty();
        let run = || {
            let registry = Registry::new();
            let mut records = Vec::new();
            let report = try_run_campaign_observed(&config, &registry, |r| records.push(r))
                .expect("valid config");
            (report, records, registry.snapshot())
        };
        let (report, records, snap) = run();

        // The link sits right behind the capture tap.
        let offered = snap.counter("faults.link.offered_total");
        assert_eq!(offered, report.capture.captured);
        // Every fault class fired.
        for c in [
            "faults.link.dropped_total",
            "faults.link.duplicated_total",
            "faults.link.reordered_total",
            "faults.link.delayed_total",
            "faults.link.truncated_total",
            "faults.link.outage_dropped_total",
            "faults.worker.crashes_total",
            "faults.worker.restarts_total",
            "pipeline.shed_total",
        ] {
            assert!(snap.counter(c) > 0, "{c} never fired");
        }
        // Link ledger: frames in = frames out + losses − duplicates.
        let delivered = snap.counter("faults.link.delivered_total");
        assert_eq!(
            delivered,
            offered
                - snap.counter("faults.link.dropped_total")
                - snap.counter("faults.link.outage_dropped_total")
                + snap.counter("faults.link.duplicated_total")
        );
        // Pipeline ledger: everything the link delivered was either shed
        // or routed to a worker, and every routed frame got decoded.
        assert_eq!(delivered, report.pipeline.frames + report.pipeline.shed);
        assert_eq!(snap.counter("pipeline.shed_total"), report.pipeline.shed);
        assert_eq!(
            snap.counter("stage.decode.frames_total"),
            report.pipeline.frames
        );
        // Crashed workers tombstone frames but the campaign survives
        // with a usable dataset.
        assert_eq!(
            snap.counter("faults.worker.crashes_total"),
            snap.counter("faults.worker.restarts_total"),
            "crash budget not exhausted in the soak preset"
        );
        assert_eq!(snap.counter("faults.worker.degraded_total"), 0);
        assert!(report.records > 500, "records {}", report.records);
        assert_eq!(report.records as usize, records.len());
        // Records stay time-ordered under delay/reorder/duplication: the
        // link re-stamps delayed frames and swaps payloads, never
        // timestamps.
        for w in records.windows(2) {
            assert!(w[0].ts_us <= w[1].ts_us);
        }

        // Same seed, same faults, same dataset.
        let (report2, records2, _) = run();
        assert_eq!(report.records, report2.records);
        assert_eq!(records, records2);
    }

    #[test]
    fn faulty_campaign_resumes_record_identical() {
        let config = CampaignConfig::tiny_faulty();
        let mut full = Vec::new();
        let mut cps: Vec<Checkpoint> = Vec::new();
        let report = try_run_campaign_checkpointed(
            &config,
            &Registry::disabled(),
            |r| full.push(r),
            |cp| cps.push(cp),
        )
        .expect("valid config");
        // 1800 s campaign, 300 s interval → several cuts.
        assert!(cps.len() >= 4, "only {} checkpoints", cps.len());
        for w in cps.windows(2) {
            assert!(w[0].records < w[1].records);
            assert!(w[0].virtual_us < w[1].virtual_us);
        }
        assert_eq!(report.records as usize, full.len());

        // Resume from a mid-campaign checkpoint: the tail must continue
        // the record stream exactly, and the later cuts must be the very
        // same cuts.
        let cp = cps[cps.len() / 2].clone();
        let mut tail = Vec::new();
        let mut tail_cps: Vec<Checkpoint> = Vec::new();
        let resumed = try_resume_campaign_observed(
            &config,
            &Registry::disabled(),
            &cp,
            |r| tail.push(r),
            |c| tail_cps.push(c),
        )
        .expect("resume accepted");
        assert_eq!(resumed.records + cp.records, full.len() as u64);
        assert_eq!(&full[cp.records as usize..], &tail[..]);
        let expected_tail_cps: Vec<&Checkpoint> =
            cps.iter().filter(|c| c.records > cp.records).collect();
        assert_eq!(expected_tail_cps.len(), tail_cps.len());
        for (a, b) in expected_tail_cps.iter().zip(&tail_cps) {
            assert_eq!(*a, b, "resumed checkpoint diverges");
        }
        // Whole-campaign identity survives the restart.
        assert_eq!(resumed.distinct_clients, report.distinct_clients);
        assert_eq!(resumed.distinct_files, report.distinct_files);
        assert_eq!(
            resumed.bucket_sizes_first_two,
            report.bucket_sizes_first_two
        );
    }

    #[test]
    fn mismatched_checkpoint_rejected() {
        let config = CampaignConfig::tiny_faulty();
        let mut cps: Vec<Checkpoint> = Vec::new();
        try_run_campaign_checkpointed(
            &config,
            &Registry::disabled(),
            |_| {},
            |cp| {
                if cps.is_empty() {
                    cps.push(cp)
                }
            },
        )
        .unwrap();
        let cp = cps.remove(0);

        let mut wrong_seed = cp.clone();
        wrong_seed.seed ^= 1;
        let err = try_resume_campaign_observed(
            &config,
            &Registry::disabled(),
            &wrong_seed,
            |_| {},
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::CheckpointMismatch { .. }));
        assert!(err.to_string().contains("seed"));

        let mut no_fig3 = cp;
        no_fig3.fig3_order = None;
        let err =
            try_resume_campaign_observed(&config, &Registry::disabled(), &no_fig3, |_| {}, |_| {})
                .unwrap_err();
        assert!(matches!(err, ConfigError::CheckpointMismatch { .. }));
    }

    #[test]
    fn bad_shard_count_is_a_typed_error() {
        let config = CampaignConfig::tiny();
        for got in [0, 3, 32] {
            let err = match try_run_campaign_to_writer(
                &config,
                &Registry::disabled(),
                TailConfig {
                    anon_shards: got,
                    ..TailConfig::default()
                },
                DatasetWriter::new(Vec::new()).expect("vec write"),
                |_| {},
            ) {
                Err(e) => e,
                Ok(_) => panic!("accepted anon_shards = {got}"),
            };
            assert!(
                matches!(err, CampaignError::Config(ConfigError::ShardCountInvalid { got: g }) if g == got),
                "anon_shards = {got}: {err}"
            );
        }
    }

    /// Serial reference for the batched writer path: stream the
    /// campaign's records through `DatasetWriter::write_record` one at a
    /// time, stamping `writer_bytes` into each checkpoint the way `repro
    /// soak` does.
    fn serial_writer_run(config: &CampaignConfig) -> (CampaignReport, Vec<u8>, Vec<Checkpoint>) {
        use std::cell::RefCell;
        let writer = RefCell::new(DatasetWriter::new(Vec::new()).expect("vec write"));
        let mut cps = Vec::new();
        let report = try_run_campaign_checkpointed(
            config,
            &Registry::disabled(),
            |r| writer.borrow_mut().write_record(&r).expect("vec write"),
            |mut cp| {
                cp.writer_bytes = writer.borrow().bytes_written();
                cps.push(cp);
            },
        )
        .expect("valid config");
        let bytes = writer.into_inner().finish().expect("vec write");
        (report, bytes, cps)
    }

    #[test]
    fn writer_campaign_byte_identical_to_serial_writer() {
        let config = CampaignConfig::tiny_faulty();
        let (report, serial_bytes, serial_cps) = serial_writer_run(&config);
        assert!(!serial_cps.is_empty(), "faulty preset must checkpoint");

        for tail in [
            TailConfig::default(),
            TailConfig {
                batch_records: 7,
                batch_queue: 2,
                anon_shards: 1,
            },
            TailConfig {
                batch_records: 7,
                batch_queue: 2,
                anon_shards: 4,
            },
        ] {
            let mut cps = Vec::new();
            let (batched, writer) = try_run_campaign_to_writer(
                &config,
                &Registry::disabled(),
                tail,
                DatasetWriter::new(Vec::new()).expect("vec write"),
                |cp| cps.push(cp),
            )
            .expect("batched campaign");
            let bytes = writer.finish().expect("vec write");
            assert_eq!(serial_bytes, bytes, "dataset bytes diverge");
            assert_eq!(serial_cps, cps, "checkpoints diverge");
            assert_eq!(report.records, batched.records);
            assert_eq!(report.distinct_clients, batched.distinct_clients);
            assert_eq!(report.distinct_files, batched.distinct_files);
            assert_eq!(report.capture.offered, batched.capture.offered);
        }
    }

    #[test]
    fn writer_campaign_resumes_byte_identical() {
        let config = CampaignConfig::tiny_faulty();
        let (report, full_bytes, cps) = serial_writer_run(&config);
        let cp = cps[cps.len() / 2].clone();

        // Crash simulation: keep only the prefix the checkpoint
        // vouches for, then resume through the batched tail.
        let prefix = full_bytes[..cp.writer_bytes as usize].to_vec();
        let mut tail_cps = Vec::new();
        let (resumed, writer) = try_resume_campaign_to_writer(
            &config,
            &Registry::disabled(),
            &cp,
            TailConfig::default(),
            DatasetWriter::resume(prefix, cp.records, cp.writer_bytes),
            |c| tail_cps.push(c),
        )
        .expect("resume accepted");
        let rebuilt = writer.finish().expect("vec write");
        assert_eq!(full_bytes, rebuilt, "resumed dataset diverges");
        let expected: Vec<&Checkpoint> = cps.iter().filter(|c| c.records > cp.records).collect();
        assert_eq!(expected.len(), tail_cps.len());
        for (a, b) in expected.iter().zip(&tail_cps) {
            assert_eq!(*a, b, "resumed checkpoint diverges");
        }
        assert_eq!(resumed.records + cp.records, report.records);
    }

    #[test]
    fn writer_campaign_surfaces_io_errors() {
        /// Accepts the XML prologue, then fails: exercises the batched
        /// tail's mid-campaign error path (writer thread drains, the
        /// campaign returns the error instead of deadlocking).
        struct FailAfter {
            left: usize,
        }
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.left < buf.len() {
                    return Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"));
                }
                self.left -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let config = CampaignConfig::tiny();
        let result = try_run_campaign_to_writer(
            &config,
            &Registry::disabled(),
            TailConfig::default(),
            DatasetWriter::new(FailAfter { left: 4096 }).expect("header fits"),
            |_| {},
        );
        match result {
            Err(CampaignError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::StorageFull),
            Err(other) => panic!("expected io error, got {other}"),
            Ok(_) => panic!("writer must fail"),
        }
    }

    #[test]
    fn unobserved_campaign_matches_observed() {
        // The disabled registry must not perturb the simulation.
        let plain = run_campaign(&CampaignConfig::tiny(), |_| {});
        let observed = run_campaign_observed(&CampaignConfig::tiny(), &Registry::new(), |_| {});
        assert_eq!(plain.records, observed.records);
        assert_eq!(plain.capture.offered, observed.capture.offered);
        assert_eq!(plain.capture.lost, observed.capture.lost);
        assert!(
            plain.health.is_empty(),
            "plain run must carry no health data"
        );
    }
}
