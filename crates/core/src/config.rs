//! Campaign configuration: one knob set for the whole measurement stack.

use etw_anonymize::fileid::ByteSelector;
use etw_faults::{DirectedRates, FaultSpec, Window};
use etw_workload::catalog::CatalogParams;
use etw_workload::clients::PopulationParams;
use etw_workload::generator::GeneratorParams;

/// A cross-field configuration invariant violation, found by
/// [`CampaignConfig::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// Population clientID width disagrees with the anonymiser array
    /// width.
    IdSpaceMismatch {
        /// Bits the population draws clientIDs from.
        population_bits: u32,
        /// Bits the anonymiser array covers.
        anonymizer_bits: u32,
    },
    /// MTU below the IPv4 minimum of 576.
    MtuTooSmall {
        /// The configured MTU.
        mtu: usize,
    },
    /// A probability knob outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Which knob.
        field: &'static str,
        /// Its value.
        value: f64,
    },
    /// `decode_workers == 0` — the pipeline needs at least one worker.
    NoDecodeWorkers,
    /// A fault window with `start_us >= end_us`.
    FaultWindowInvalid {
        /// Window start, µs.
        start_us: u64,
        /// Window end, µs.
        end_us: u64,
    },
    /// A checkpoint does not belong to this configuration (different
    /// seed, or missing the Fig. 3 tracker state the config requires).
    CheckpointMismatch {
        /// What disagreed.
        reason: &'static str,
    },
    /// `anon_shards` is not a power of two in `1..=16`.
    ShardCountInvalid {
        /// The configured shard count.
        got: usize,
    },
    /// `source_shards` is not a power of two in `1..=16`.
    SourceShardsInvalid {
        /// The configured source shard count.
        got: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::IdSpaceMismatch {
                population_bits,
                anonymizer_bits,
            } => write!(
                f,
                "population draws {population_bits}-bit clientIDs but the \
                 anonymiser array covers {anonymizer_bits} bits"
            ),
            ConfigError::MtuTooSmall { mtu } => {
                write!(f, "mtu {mtu} below the IPv4 minimum of 576")
            }
            ConfigError::ProbabilityOutOfRange { field, value } => {
                write!(f, "{field} = {value} outside [0,1]")
            }
            ConfigError::NoDecodeWorkers => write!(f, "need at least one decode worker"),
            ConfigError::FaultWindowInvalid { start_us, end_us } => {
                write!(
                    f,
                    "fault window [{start_us}, {end_us}) is empty or inverted"
                )
            }
            ConfigError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint does not match this campaign: {reason}")
            }
            ConfigError::ShardCountInvalid { got } => {
                write!(f, "anon_shards must be a power of two in 1..=16, got {got}")
            }
            ConfigError::SourceShardsInvalid { got } => {
                write!(
                    f,
                    "source_shards must be a power of two in 1..=16, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Traffic-source sharding: how many parallel generator workers (and
/// matching directory-index shards) feed the capture pipeline. The
/// sharded source is deterministic for any width — DESIGN.md §17
/// explains why the dataset bytes are shard-count-invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SourceConfig {
    /// Generator workers / directory-index shards. Power of two in
    /// `1..=16`; 1 keeps the source fully sequential.
    pub source_shards: usize,
}

impl Default for SourceConfig {
    fn default() -> Self {
        SourceConfig { source_shards: 1 }
    }
}

/// Everything the campaign driver needs.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed; every stage derives its own stream from it.
    pub seed: u64,
    /// File catalog parameters.
    pub catalog: CatalogParams,
    /// Client population parameters.
    pub population: PopulationParams,
    /// Traffic generator parameters.
    pub generator: GeneratorParams,
    /// Capture ring capacity in packets (the paper's libpcap kernel
    /// buffer).
    pub capture_ring: u64,
    /// Capture drain rate in packets/second.
    pub capture_drain_pps: f64,
    /// Link MTU (fragmentation threshold).
    pub mtu: usize,
    /// Fraction of client queries whose bytes are corrupted on the wire
    /// (buggy client software; paper §2.3: 0.68 % undecodable).
    pub p_corrupt: f64,
    /// Within corrupted messages, fraction using a *structural*
    /// corruption (paper: 78 % of undecodable were structurally
    /// incorrect).
    pub p_corrupt_structural: f64,
    /// Per-query probability of an extra unrelated UDP datagram on the
    /// link (other applications; decodes as non-eDonkey).
    pub p_udp_noise: f64,
    /// Per-query probability of an extra TCP packet on the link (the
    /// paper's capture was ~half TCP; the decoder ignores it).
    pub p_tcp_noise: f64,
    /// clientID anonymiser width in bits (32 = the paper's 16 GB array).
    pub client_space_bits: u32,
    /// Byte pair indexing the fileID anonymisation arrays.
    pub fileid_selector: ByteSelector,
    /// Decoder worker threads in the pipeline.
    pub decode_workers: usize,
    /// Traffic-source sharding (generator workers + index shards).
    pub source: SourceConfig,
    /// Also maintain a FIRST_TWO-bytes bucketed store so Fig. 3 can
    /// compare both selectors in one run.
    pub track_fig3: bool,
    /// Virtual seconds between machine-health snapshots (0 disables
    /// them). Only consulted by `run_campaign_observed`; a snapshot is
    /// cut each time virtual time crosses an interval boundary.
    pub health_interval_secs: u64,
    /// Fault injection: lossy link, outage/overload windows, worker
    /// crash plan. The default is a perfect world.
    pub faults: FaultSpec,
    /// Virtual seconds between resume checkpoints (0 disables them).
    pub checkpoint_interval_secs: u64,
    /// Span events retained per stage-thread flight-recorder ring
    /// (0 disables the flight recorder entirely).
    pub trace_ring_slots: usize,
    /// Directory receiving `flight_*.etwtrace` dumps when a worker
    /// crashes or degrades, the producer starts shedding, or a
    /// checkpoint is cut. `None` records in memory only.
    pub trace_dump_dir: Option<std::path::PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        // The "scale ≈ 1e-4 of the paper" preset from DESIGN.md §4:
        // ~10 k clients, 50 k files, one virtual week, a few million
        // messages.
        let population = PopulationParams::default();
        CampaignConfig {
            seed: 0xED0, /*nkey*/
            catalog: CatalogParams::default(),
            client_space_bits: population.id_space_bits,
            population,
            generator: GeneratorParams::default(),
            capture_ring: 4096,
            capture_drain_pps: 50_000.0,
            mtu: 1500,
            p_corrupt: 0.0068,
            p_corrupt_structural: 0.78,
            p_udp_noise: 0.01,
            p_tcp_noise: 0.8,
            fileid_selector: ByteSelector::ALTERNATIVE,
            decode_workers: 4,
            source: SourceConfig::default(),
            track_fig3: true,
            health_interval_secs: 3_600,
            faults: FaultSpec::default(),
            checkpoint_interval_secs: 0,
            trace_ring_slots: 0,
            trace_dump_dir: None,
        }
    }
}

impl CampaignConfig {
    /// A seconds-long configuration for tests and doc examples.
    pub fn tiny() -> Self {
        let population = PopulationParams {
            n_clients: 200,
            id_space_bits: 16,
            scanner_max_asks: 500,
            heavy_max_shared: 300,
            ..PopulationParams::default()
        };
        CampaignConfig {
            catalog: CatalogParams {
                n_files: 1_500,
                ..CatalogParams::default()
            },
            client_space_bits: population.id_space_bits,
            population,
            generator: GeneratorParams {
                duration_secs: 1_800,
                ..GeneratorParams::default()
            },
            decode_workers: 2,
            ..CampaignConfig::default()
        }
    }

    /// [`CampaignConfig::tiny`] under adversity: every link fault class
    /// active at realistic rates, a mid-campaign outage, two overload
    /// windows, scheduled worker crashes, and periodic checkpoints.
    /// This is the soak-test configuration.
    pub fn tiny_faulty() -> Self {
        let mut config = CampaignConfig::tiny();
        config.faults = FaultSpec {
            seed: config.seed ^ 0xFA17,
            drop: DirectedRates {
                to_server: 0.02,
                from_server: 0.03,
            },
            duplicate: DirectedRates::symmetric(0.01),
            reorder: DirectedRates::symmetric(0.02),
            truncate: DirectedRates::symmetric(0.005),
            delay: DirectedRates::symmetric(0.01),
            delay_max_us: 50_000,
            // One link blackout around minute 10 of the 30-minute run.
            outages: vec![Window {
                start_us: 600_000_000,
                end_us: 615_000_000,
            }],
            // Two sustained-overload periods where the producer sheds.
            overload: vec![
                Window {
                    start_us: 300_000_000,
                    end_us: 360_000_000,
                },
                Window {
                    start_us: 1_200_000_000,
                    end_us: 1_260_000_000,
                },
            ],
            shed_keep_every: 3,
            worker_crash_every: 4_000,
            max_worker_restarts: 3,
            restart_backoff_frames: 8,
            restart_backoff_cap: 64,
        };
        config.checkpoint_interval_secs = 300;
        config
    }

    /// Sanity checks cross-field invariants; call before running.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.population.id_space_bits != self.client_space_bits {
            return Err(ConfigError::IdSpaceMismatch {
                population_bits: self.population.id_space_bits,
                anonymizer_bits: self.client_space_bits,
            });
        }
        if self.mtu < 576 {
            return Err(ConfigError::MtuTooSmall { mtu: self.mtu });
        }
        for (field, value) in [
            ("p_corrupt", self.p_corrupt),
            ("p_corrupt_structural", self.p_corrupt_structural),
            ("p_udp_noise", self.p_udp_noise),
            ("p_tcp_noise", self.p_tcp_noise),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(ConfigError::ProbabilityOutOfRange { field, value });
            }
        }
        if self.decode_workers == 0 {
            return Err(ConfigError::NoDecodeWorkers);
        }
        if let Some((field, value)) = self.faults.invalid_probability() {
            return Err(ConfigError::ProbabilityOutOfRange { field, value });
        }
        if let Some((start_us, end_us)) = self.faults.invalid_window() {
            return Err(ConfigError::FaultWindowInvalid { start_us, end_us });
        }
        let shards = self.source.source_shards;
        if !shards.is_power_of_two() || !(1..=16).contains(&shards) {
            return Err(ConfigError::SourceShardsInvalid { got: shards });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        CampaignConfig::default().validate().unwrap();
        CampaignConfig::tiny().validate().unwrap();
    }

    #[test]
    fn mismatched_id_space_rejected() {
        let mut c = CampaignConfig::tiny();
        c.client_space_bits = 8;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tiny_mtu_rejected() {
        let mut c = CampaignConfig::tiny();
        c.mtu = 100;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_workers_rejected() {
        let mut c = CampaignConfig::tiny();
        c.decode_workers = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_probability_rejected() {
        let mut c = CampaignConfig::tiny();
        c.p_corrupt = 1.5;
        assert_eq!(
            c.validate(),
            Err(ConfigError::ProbabilityOutOfRange {
                field: "p_corrupt",
                value: 1.5
            })
        );
    }

    #[test]
    fn bad_source_shards_rejected() {
        for bad in [0usize, 3, 12, 32] {
            let mut c = CampaignConfig::tiny();
            c.source.source_shards = bad;
            assert_eq!(
                c.validate(),
                Err(ConfigError::SourceShardsInvalid { got: bad })
            );
        }
        for good in [1usize, 2, 4, 8, 16] {
            let mut c = CampaignConfig::tiny();
            c.source.source_shards = good;
            c.validate().unwrap();
        }
    }

    #[test]
    fn errors_are_typed_and_render() {
        let mut c = CampaignConfig::tiny();
        c.client_space_bits = 8;
        let err = c.validate().unwrap_err();
        assert!(matches!(err, ConfigError::IdSpaceMismatch { .. }));
        assert!(err.to_string().contains("8 bits"));

        let mut c = CampaignConfig::tiny();
        c.mtu = 100;
        assert_eq!(c.validate(), Err(ConfigError::MtuTooSmall { mtu: 100 }));

        let mut c = CampaignConfig::tiny();
        c.decode_workers = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoDecodeWorkers));
    }
}
