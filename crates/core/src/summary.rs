//! The T1 dataset summary: the headline numbers the paper reports in
//! §2.2–§2.5 (packets captured and lost, UDP datagrams, fragments,
//! malformed messages, eDonkey messages and the undecodable fractions,
//! distinct clients and files).

use crate::campaign::CampaignReport;
use etw_analysis::report::{grouped, KvTable};

/// Renders the T1 table for a campaign report, with the paper's own
/// values alongside for comparison (theirs at full scale, ours at
/// simulation scale — EXPERIMENTS.md compares the *ratios*).
pub fn render_t1(r: &CampaignReport) -> String {
    let mut t = KvTable::new();
    let d = &r.pipeline.decoder;
    t.row("ethernet frames offered", grouped(r.capture.offered))
        .row("ethernet frames captured", grouped(r.capture.captured))
        .row(
            "ethernet frames lost (paper: 250 266 / 31 555 295 781)",
            grouped(r.capture.lost),
        )
        .row(
            "tcp packets (skipped, as in the paper)",
            grouped(r.pipeline.not_udp),
        )
        .row(
            "udp datagrams recovered (paper: 14 124 818 158 pkts)",
            grouped(r.pipeline.udp_datagrams),
        )
        .row(
            "fragmented datagrams (paper: 2 981 fragments)",
            grouped(r.pipeline.fragmented_datagrams),
        )
        .row(
            "eDonkey messages handled (paper: 949 873 704 udp)",
            grouped(d.handled - d.not_edonkey),
        )
        .row("messages decoded", grouped(d.decoded))
        .row(
            "undecodable fraction (paper: 0.68 %)",
            format!("{:.3} %", 100.0 * d.undecoded_fraction()),
        )
        .row(
            "structurally incorrect among undecodable (paper: 78 %)",
            format!("{:.1} %", 100.0 * d.structural_fraction_of_undecoded()),
        )
        .row(
            "dataset records (paper: 8 867 052 380 messages)",
            grouped(r.records),
        )
        .row(
            "distinct clientIDs (paper: 89 884 526)",
            grouped(r.distinct_clients as u64),
        )
        .row(
            "distinct fileIDs (paper: 275 461 212)",
            grouped(r.distinct_files),
        );
    t.render()
}

/// Machine-readable key=value form of the same summary (consumed by
/// EXPERIMENTS tooling).
pub fn t1_key_values(r: &CampaignReport) -> Vec<(&'static str, f64)> {
    let d = &r.pipeline.decoder;
    vec![
        ("frames_offered", r.capture.offered as f64),
        ("frames_captured", r.capture.captured as f64),
        ("frames_lost", r.capture.lost as f64),
        (
            "loss_ratio",
            r.capture.lost as f64 / r.capture.offered.max(1) as f64,
        ),
        ("udp_datagrams", r.pipeline.udp_datagrams as f64),
        (
            "fragmented_datagrams",
            r.pipeline.fragmented_datagrams as f64,
        ),
        ("edonkey_handled", (d.handled - d.not_edonkey) as f64),
        ("decoded", d.decoded as f64),
        ("undecoded_fraction", d.undecoded_fraction()),
        ("structural_fraction", d.structural_fraction_of_undecoded()),
        ("records", r.records as f64),
        ("distinct_clients", r.distinct_clients as f64),
        ("distinct_files", r.distinct_files as f64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::config::CampaignConfig;

    #[test]
    fn t1_renders_all_rows() {
        let report = run_campaign(&CampaignConfig::tiny(), |_| {});
        let text = render_t1(&report);
        for needle in [
            "ethernet frames captured",
            "udp datagrams",
            "undecodable fraction",
            "distinct clientIDs",
            "distinct fileIDs",
        ] {
            assert!(text.contains(needle), "missing row: {needle}\n{text}");
        }
        let kv = t1_key_values(&report);
        assert_eq!(kv.len(), 13);
        assert!(kv.iter().all(|(_, v)| v.is_finite()));
    }
}
