//! The sharded traffic source: a parallel front-end for the capture
//! pipeline.
//!
//! PR 5 sharded the *anonymiser*; this module applies the same striping
//! idea to the *traffic source*, which had become the pipeline's
//! bottleneck. The client population is partitioned across `S` generator
//! workers ([`SessionShard`]), the directory server is partitioned across
//! `S` per-fileID index shards ([`ShardIndex`]), and a sequential merger
//! replays everything in global virtual-time order so the frames handed
//! to the (unchanged) decode → anonymise → format → write pipeline are
//! **byte-identical for every shard count** (DESIGN.md §17).
//!
//! ```text
//! gen 0 ─┐ chan.src.gen0                     chan.src.srv{j}  ┌─ idx 0
//! gen 1 ─┼──────────────▶ merger ───────────────────────────▶ ├─ idx 1
//! gen S ─┘     (k-way merge, seq, users,     ops in global    └─ idx S
//!               fileID routing, manifests)   order, FIFO        │
//!                          │ chan.src.asm       chan.src.res{j} │
//!                          ▼                                    ▼
//!                assembler (sequential): replies → answers → frames
//! ```
//!
//! Determinism rests on three invariants:
//!
//! * generator events are *partition-invariant* (per-client RNG; see
//!   [`etw_workload::session`]), so the merged `(t_us, gidx)` order is
//!   the same for any `S`;
//! * every index shard receives its operations in global sequence order
//!   and files carry their first-announcement [`SlotKey`], so merged
//!   search answers reproduce the serial index's result order exactly;
//! * the assembler is the only stage with side effects on the capture
//!   (ident counter, lossy ring, corruption, noise), and it runs
//!   sequentially over the merged manifest stream.
//!
//! Deadlock freedom: the channel graph is acyclic (generators → merger →
//! {index shards, assembler}, shards → assembler), the merger flushes
//! shard operation batches *before* the manifest batch that references
//! their replies, and the assembler consumes each shard's reply FIFO in
//! manifest order — the reply it needs is always at or behind the FIFO
//! head, so every blocking receive is eventually satisfied.

use crate::campaign::CaptureSide;
use crate::config::CampaignConfig;
use crate::pipeline::TimedFrame;
use crate::wirepath::{datagram_frames, tcp_noise_frame_bytes, Direction, SERVER_IP};
use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::tags::special;
use etw_netsim::capture::{CaptureBuffer, LossRecorder};
use etw_netsim::clock::VirtualTime;
use etw_server::index::tokenize;
use etw_server::shard::{shard_of, SearchHit, ShardIndex, SlotKey};
use etw_telemetry::channel::{metered_bounded, MeteredReceiver, MeteredSender};
use etw_telemetry::health::HealthRecorder;
use etw_telemetry::{Counter, Gauge, Registry};
use etw_workload::catalog::Catalog;
use etw_workload::clients::Population;
use etw_workload::session::{
    MgmtOp, NoiseDraws, SessionShard, SourceBlobs, SrcEvent, SrcOp, WireParams,
};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;

/// eDonkey datagram marker byte.
const MARKER: u8 = 0xE3;
/// Results cap per SearchResponse (keeps answers under the MTU, as real
/// servers do; same value the serial campaign used).
const MAX_SEARCH_RESULTS: usize = 15;
/// Sources cap per FoundSources answer.
const ANSWER_MAX_SOURCES: usize = 50;
/// Sources remembered per file in the index.
const STORE_MAX_SOURCES: usize = 500;
/// Directory-server identity (ServerDescResponse).
const SERVER_NAME: &str = "TenWeeksServer";
const SERVER_DESC: &str = "simulated eDonkey directory server";

/// Events per batch on every source channel.
const EVENT_BATCH: usize = 512;
/// Bounded channel capacities, in batches.
const GEN_QUEUE: usize = 4;
const OP_QUEUE: usize = 8;
const RES_QUEUE: usize = 8;
const MAN_QUEUE: usize = 4;

/// Interned keyword tokens for the whole catalog, shared by the merger
/// (search token lookup) and the index shards (posting lists), so no
/// stage ever re-tokenises a filename string in the hot path.
pub struct TokenTable {
    n_tokens: usize,
    /// Per catalog file: tokens of `tokenize(name)` (keywords + the
    /// extension, duplicates preserved — the index dedups per publish).
    pub_toks: Vec<Box<[u32]>>,
    /// Per catalog file: the first four keyword tokens (search atoms).
    kw_toks: Vec<[u32; 4]>,
    /// Per catalog file: its size (the search size filter).
    sizes: Vec<u32>,
}

impl TokenTable {
    /// Interns every keyword and extension of `catalog`.
    pub fn build(catalog: &Catalog) -> Self {
        let mut intern: HashMap<String, u32> = HashMap::new();
        let mut id_of = |s: &str| {
            if let Some(&id) = intern.get(s) {
                id
            } else {
                let id = intern.len() as u32;
                intern.insert(s.to_owned(), id);
                id
            }
        };
        let n = catalog.len();
        let mut pub_toks = Vec::with_capacity(n);
        let mut kw_toks = Vec::with_capacity(n);
        let mut sizes = Vec::with_capacity(n);
        for f in catalog.files() {
            let toks: Box<[u32]> = tokenize(&f.name).iter().map(|t| id_of(t)).collect();
            pub_toks.push(toks);
            let mut kws = [0u32; 4];
            for (i, kw) in f.keywords.iter().take(4).enumerate() {
                kws[i] = id_of(kw);
            }
            kw_toks.push(kws);
            sizes.push(f.size);
        }
        TokenTable {
            n_tokens: intern.len(),
            pub_toks,
            kw_toks,
            sizes,
        }
    }

    /// Distinct interned tokens.
    pub fn n_tokens(&self) -> usize {
        self.n_tokens
    }

    /// Posting tokens of file `idx`'s canonical name.
    pub fn pub_toks(&self, idx: u32) -> &[u32] {
        &self.pub_toks[idx as usize]
    }

    /// The first four keyword tokens of file `idx`.
    pub fn kw_toks(&self, idx: u32) -> [u32; 4] {
        self.kw_toks[idx as usize]
    }

    /// Size of file `idx`.
    pub fn size(&self, idx: u32) -> u32 {
        self.sizes[idx as usize]
    }
}

/// One operation routed to an index shard, in global sequence order.
enum ShardOp {
    /// Index one announced file entry.
    Publish {
        key: SlotKey,
        id: FileId,
        meta_idx: u32,
        client: u32,
        port: u16,
    },
    /// Keyword search (broadcast to every shard; one reply each).
    Search {
        toks: [u32; 4],
        n: u8,
        size_min: Option<u32>,
    },
    /// Report the shard's file count (broadcast; one reply each).
    Count,
    /// Look up a file's sources (routed to the owning shard).
    Sources { id: FileId },
}

/// A shard's reply to one reply-bearing [`ShardOp`], FIFO per shard.
enum ShardReply {
    Count(u32),
    Search(Vec<SearchHit>),
    Sources(Vec<(u32, u16)>),
}

/// What the assembler must do for one event, in global order.
enum ManifestOp {
    /// No answer (announcements and corrupted queries).
    Passthrough,
    /// StatusResponse; `users` was counted by the merger, `files` comes
    /// from summing the shards' Count replies.
    Status {
        challenge: u32,
        users: u32,
    },
    ServerList,
    Desc,
    /// SearchResponse; merge one Search reply per shard.
    Search,
    /// FoundSources; one Sources reply from `shard`.
    Sources {
        file_id: FileId,
        shard: u8,
    },
}

/// One merged event: everything the assembler needs, nothing it must
/// recompute.
struct Manifest {
    t_us: u64,
    client: ClientId,
    port: u16,
    query: Vec<u8>,
    wire: NoiseDraws,
    op: ManifestOp,
}

/// Damages an encoded message so the capture decoder rejects it — same
/// two failure modes as the paper (§2.3): structural truncation, or a
/// well-formed header with a garbage body.
fn damage(bytes: &mut Vec<u8>, structural: bool) {
    if structural {
        if bytes.len() <= 2 {
            bytes.push(0xff);
        } else {
            bytes.truncate(2);
        }
    } else {
        bytes.clear();
        bytes.extend_from_slice(&[MARKER, 0x98, 0x7f]);
    }
}

fn build_serverlist_answer() -> Vec<u8> {
    // The campaign's eight peer servers live inside the compressed
    // clientID space (ip = i), so the anonymiser covers them.
    let mut out = Vec::with_capacity(3 + 8 * 6);
    out.extend_from_slice(&[MARKER, 0xA1, 8]);
    for i in 1..=8u32 {
        out.extend_from_slice(&i.to_le_bytes());
        out.extend_from_slice(&(4661 + (i % 4) as u16).to_le_bytes());
    }
    out
}

fn build_desc_answer() -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + SERVER_NAME.len() + SERVER_DESC.len() + 2);
    out.extend_from_slice(&[MARKER, 0xA3]);
    for s in [SERVER_NAME, SERVER_DESC] {
        out.extend_from_slice(&(s.len() as u16).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
    out
}

/// Generator worker: drains one [`SessionShard`] into batches.
fn run_generator(mut shard: SessionShard, tx: MeteredSender<Vec<SrcEvent>>, events_ctr: Counter) {
    let mut batch = Vec::with_capacity(EVENT_BATCH);
    for ev in &mut shard {
        batch.push(ev);
        if batch.len() >= EVENT_BATCH {
            events_ctr.add(batch.len() as u64);
            let full = std::mem::replace(&mut batch, Vec::with_capacity(EVENT_BATCH));
            if tx.send(full).is_err() {
                return; // downstream gone: shutting down
            }
        }
    }
    if !batch.is_empty() {
        events_ctr.add(batch.len() as u64);
        let _ = tx.send(batch);
    }
}

/// Index shard: applies its operation stream in order, batching replies.
fn run_shard(
    token: Arc<TokenTable>,
    op_rx: MeteredReceiver<Vec<ShardOp>>,
    res_tx: MeteredSender<Vec<ShardReply>>,
) {
    let mut index = ShardIndex::new(token.n_tokens(), STORE_MAX_SOURCES);
    while let Ok(batch) = op_rx.recv() {
        let mut replies = Vec::with_capacity(batch.len());
        for op in batch {
            match op {
                ShardOp::Publish {
                    key,
                    id,
                    meta_idx,
                    client,
                    port,
                } => index.publish(
                    key,
                    id,
                    meta_idx,
                    token.size(meta_idx),
                    token.pub_toks(meta_idx),
                    client,
                    port,
                ),
                ShardOp::Search { toks, n, size_min } => {
                    let mut out = Vec::with_capacity(MAX_SEARCH_RESULTS);
                    index.search(&toks[..n as usize], size_min, MAX_SEARCH_RESULTS, &mut out);
                    replies.push(ShardReply::Search(out));
                }
                ShardOp::Count => replies.push(ShardReply::Count(index.file_count())),
                ShardOp::Sources { id } => {
                    let mut out = Vec::with_capacity(ANSWER_MAX_SOURCES);
                    index.sources_for(&id, ANSWER_MAX_SOURCES, &mut out);
                    replies.push(ShardReply::Sources(out));
                }
            }
        }
        if !replies.is_empty() && res_tx.send(replies).is_err() {
            return;
        }
    }
}

/// One generator stream's read cursor inside the merger.
struct GenCursor {
    rx: MeteredReceiver<Vec<SrcEvent>>,
    batch: std::vec::IntoIter<SrcEvent>,
    head: Option<SrcEvent>,
}

impl GenCursor {
    fn new(rx: MeteredReceiver<Vec<SrcEvent>>) -> Self {
        let mut c = GenCursor {
            rx,
            batch: Vec::new().into_iter(),
            head: None,
        };
        c.advance();
        c
    }

    fn advance(&mut self) {
        loop {
            if let Some(ev) = self.batch.next() {
                self.head = Some(ev);
                return;
            }
            match self.rx.recv() {
                Ok(b) => self.batch = b.into_iter(),
                Err(_) => {
                    self.head = None;
                    return;
                }
            }
        }
    }
}

/// The merger: k-way merge to global `(t_us, gidx)` order, sequence
/// numbering, user accounting, fileID routing, manifest emission.
fn run_merger(
    gen_rxs: Vec<MeteredReceiver<Vec<SrcEvent>>>,
    op_txs: Vec<MeteredSender<Vec<ShardOp>>>,
    man_tx: MeteredSender<Vec<Manifest>>,
    token: Arc<TokenTable>,
    merged_ctr: Counter,
) {
    let shards = op_txs.len();
    let mut cursors: Vec<GenCursor> = gen_rxs.into_iter().map(GenCursor::new).collect();
    let mut ops: Vec<Vec<ShardOp>> = (0..shards).map(|_| Vec::new()).collect();
    let mut manifests: Vec<Manifest> = Vec::with_capacity(EVENT_BATCH);
    let mut users: HashSet<u32> = HashSet::new();
    let mut seq = 0u64;

    // Flushes shard op batches BEFORE the manifest batch referencing
    // their replies — the deadlock-freedom invariant.
    let flush = |ops: &mut Vec<Vec<ShardOp>>, manifests: &mut Vec<Manifest>| -> bool {
        for (j, o) in ops.iter_mut().enumerate() {
            if !o.is_empty() {
                let batch = std::mem::take(o);
                if op_txs[j].send(batch).is_err() {
                    return false;
                }
            }
        }
        merged_ctr.add(manifests.len() as u64);
        let batch = std::mem::replace(manifests, Vec::with_capacity(EVENT_BATCH));
        man_tx.send(batch).is_ok()
    };

    loop {
        let mut best: Option<usize> = None;
        for (i, c) in cursors.iter().enumerate() {
            if let Some(h) = &c.head {
                let better = match best {
                    None => true,
                    Some(b) => {
                        // The cursor at `best` always has a head.
                        let bh = match &cursors[b].head {
                            Some(bh) => bh,
                            None => continue,
                        };
                        (h.t_us, h.gidx) < (bh.t_us, bh.gidx)
                    }
                };
                if better {
                    best = Some(i);
                }
            }
        }
        let Some(i) = best else { break };
        let Some(ev) = cursors[i].head.take() else {
            break;
        };
        cursors[i].advance();

        let SrcEvent {
            t_us,
            gidx: _,
            client,
            port,
            query,
            op: src_op,
            wire,
        } = ev;
        // A corrupted query never reaches the server (the serial engine
        // was not invoked for it either): no user touch, no index ops.
        let op = if wire.query_corrupt {
            ManifestOp::Passthrough
        } else {
            users.insert(client.raw());
            match src_op {
                SrcOp::Mgmt(MgmtOp::Status { challenge }) => {
                    for o in ops.iter_mut() {
                        o.push(ShardOp::Count);
                    }
                    ManifestOp::Status {
                        challenge,
                        users: users.len() as u32,
                    }
                }
                SrcOp::Mgmt(MgmtOp::ServerList) => ManifestOp::ServerList,
                SrcOp::Mgmt(MgmtOp::Desc) => ManifestOp::Desc,
                SrcOp::Offer(entries) => {
                    for (idx, e) in entries.into_iter().enumerate() {
                        let j = shard_of(&e.file_id, shards);
                        ops[j].push(ShardOp::Publish {
                            key: (seq, idx as u16),
                            id: e.file_id,
                            meta_idx: e.file_idx,
                            client: client.raw(),
                            port,
                        });
                    }
                    ManifestOp::Passthrough
                }
                SrcOp::Search {
                    file_idx,
                    n_kws,
                    size_min,
                } => {
                    let toks = token.kw_toks(file_idx);
                    for o in ops.iter_mut() {
                        o.push(ShardOp::Search {
                            toks,
                            n: n_kws,
                            size_min,
                        });
                    }
                    ManifestOp::Search
                }
                SrcOp::Sources { file_id } => {
                    let j = shard_of(&file_id, shards);
                    ops[j].push(ShardOp::Sources { id: file_id });
                    ManifestOp::Sources {
                        file_id,
                        shard: j as u8,
                    }
                }
            }
        };
        seq += 1;
        manifests.push(Manifest {
            t_us,
            client,
            port,
            query,
            wire,
            op,
        });
        if manifests.len() >= EVENT_BATCH && !flush(&mut ops, &mut manifests) {
            return;
        }
    }
    let _ = flush(&mut ops, &mut manifests);
}

/// The sequential frame assembler: consumes manifests and shard replies
/// in global order and produces the campaign's [`TimedFrame`] stream —
/// answer synthesis, ident stamping, corruption, noise, and the lossy
/// capture, exactly as the serial producer did.
pub struct SourceStream {
    man_rx: Option<MeteredReceiver<Vec<Manifest>>>,
    man_batch: std::vec::IntoIter<Manifest>,
    res_rxs: Vec<MeteredReceiver<Vec<ShardReply>>>,
    fifos: Vec<VecDeque<ShardReply>>,
    pending: VecDeque<TimedFrame>,
    capture: CaptureBuffer,
    loss_recorder: LossRecorder,
    ident: u16,
    mtu: usize,
    blobs: Arc<SourceBlobs>,
    serverlist_answer: Vec<u8>,
    desc_answer: Vec<u8>,
    merge_buf: Vec<SearchHit>,
    stats: CaptureSide,
    stats_out: Arc<Mutex<CaptureSide>>,
    queries_ctr: Counter,
    answers_ctr: Counter,
    queries_delta: u64,
    answers_delta: u64,
    virtual_secs_gauge: Gauge,
    last_tick_sec: u64,
    last_virtual_us: u64,
    finished: bool,
    health: Option<HealthRecorder>,
    health_out: Arc<Mutex<Option<(HealthRecorder, u64)>>>,
    threads: Vec<JoinHandle<()>>,
}

impl SourceStream {
    /// Spawns the front-end fleet (`S` generators, `S` index shards, the
    /// merger) and returns the sequential assembler as a frame iterator.
    /// `config.source.source_shards` picks `S`; the produced frames are
    /// byte-identical for every valid `S`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn(
        catalog: Arc<Catalog>,
        population: Arc<Population>,
        config: &CampaignConfig,
        registry: &Registry,
        capture: CaptureBuffer,
        stats_out: Arc<Mutex<CaptureSide>>,
        health: Option<HealthRecorder>,
        health_out: Arc<Mutex<Option<(HealthRecorder, u64)>>>,
    ) -> SourceStream {
        let shards = config.source.source_shards.max(1);
        let blobs = Arc::new(SourceBlobs::build(&catalog));
        let token = Arc::new(TokenTable::build(&catalog));
        let wire = WireParams {
            p_corrupt: config.p_corrupt,
            p_corrupt_structural: config.p_corrupt_structural,
            p_tcp_noise: config.p_tcp_noise,
            p_udp_noise: config.p_udp_noise,
        };
        let seed = config.seed ^ 3;
        let mut threads = Vec::with_capacity(2 * shards + 1);

        let mut gen_rxs = Vec::with_capacity(shards);
        // The spawn loops below run once at stream construction, at
        // most 16 iterations: the channel labels and thread names they
        // format are startup-time, not per-event, allocations.
        for k in 0..shards {
            // etwlint: allow(no-alloc-hot-loop): startup-time label.
            let (tx, rx) = metered_bounded(GEN_QUEUE, registry, &format!("src.gen{k}"));
            let shard = SessionShard::new(
                Arc::clone(&catalog),
                Arc::clone(&population),
                Arc::clone(&blobs),
                config.generator.clone(),
                wire.clone(),
                seed,
                k,
                shards,
            );
            // etwlint: allow(no-alloc-hot-loop): startup-time label.
            let events_ctr = registry.counter(&format!("source.shard{k}.events_total"));
            threads.push(
                std::thread::Builder::new()
                    // etwlint: allow(no-alloc-hot-loop): startup-time.
                    .name(format!("src-gen{k}"))
                    .spawn(move || run_generator(shard, tx, events_ctr))
                    // etwlint: allow(no-panic-hot-path): thread spawn
                    // failure is a startup-time resource error.
                    .expect("spawn generator worker"),
            );
            gen_rxs.push(rx);
        }

        let mut op_txs = Vec::with_capacity(shards);
        let mut res_rxs = Vec::with_capacity(shards);
        for j in 0..shards {
            // etwlint: allow(no-alloc-hot-loop): startup-time labels.
            let (op_tx, op_rx) = metered_bounded(OP_QUEUE, registry, &format!("src.srv{j}"));
            // etwlint: allow(no-alloc-hot-loop): startup-time labels.
            let (res_tx, res_rx) = metered_bounded(RES_QUEUE, registry, &format!("src.res{j}"));
            let token = Arc::clone(&token);
            threads.push(
                std::thread::Builder::new()
                    // etwlint: allow(no-alloc-hot-loop): startup-time.
                    .name(format!("src-idx{j}"))
                    .spawn(move || run_shard(token, op_rx, res_tx))
                    // etwlint: allow(no-panic-hot-path): startup-time.
                    .expect("spawn index shard"),
            );
            op_txs.push(op_tx);
            res_rxs.push(res_rx);
        }

        let (man_tx, man_rx) = metered_bounded(MAN_QUEUE, registry, "src.asm");
        let merged_ctr = registry.counter("source.merge.events_total");
        {
            let token = Arc::clone(&token);
            threads.push(
                std::thread::Builder::new()
                    .name("src-merge".to_owned())
                    .spawn(move || run_merger(gen_rxs, op_txs, man_tx, token, merged_ctr))
                    // etwlint: allow(no-panic-hot-path): startup-time.
                    .expect("spawn merger"),
            );
        }

        SourceStream {
            man_rx: Some(man_rx),
            man_batch: Vec::new().into_iter(),
            fifos: (0..shards).map(|_| VecDeque::new()).collect(),
            res_rxs,
            pending: VecDeque::new(),
            capture,
            loss_recorder: LossRecorder::new(),
            ident: 0,
            mtu: config.mtu,
            blobs,
            serverlist_answer: build_serverlist_answer(),
            desc_answer: build_desc_answer(),
            merge_buf: Vec::new(),
            stats: CaptureSide::default(),
            stats_out,
            queries_ctr: registry.counter("campaign.queries_total"),
            answers_ctr: registry.counter("campaign.answers_total"),
            queries_delta: 0,
            answers_delta: 0,
            virtual_secs_gauge: registry.gauge("campaign.virtual_secs"),
            last_tick_sec: 0,
            last_virtual_us: 0,
            finished: false,
            health,
            health_out,
            threads,
        }
    }

    fn next_ident(&mut self) -> u16 {
        self.ident = self.ident.wrapping_add(1);
        self.ident
    }

    fn next_manifest(&mut self) -> Option<Manifest> {
        loop {
            if let Some(m) = self.man_batch.next() {
                return Some(m);
            }
            let received = match &self.man_rx {
                None => return None,
                Some(rx) => rx.recv(),
            };
            match received {
                Ok(batch) => self.man_batch = batch.into_iter(),
                Err(_) => {
                    self.man_rx = None;
                    return None;
                }
            }
        }
    }

    /// Pops shard `j`'s next reply (FIFO; refilled from its channel).
    fn reply(&mut self, j: usize) -> Option<ShardReply> {
        loop {
            if let Some(r) = self.fifos[j].pop_front() {
                return Some(r);
            }
            match self.res_rxs[j].recv() {
                Ok(batch) => self.fifos[j].extend(batch),
                // A disconnected reply channel mid-protocol means the
                // shard thread died; degrade to empty answers rather
                // than wedging the campaign.
                Err(_) => return None,
            }
        }
    }

    fn tick(&mut self, now: VirtualTime) {
        self.last_virtual_us = self.last_virtual_us.max(now.0);
        let sec = now.as_secs();
        if sec > self.last_tick_sec {
            self.loss_recorder.tick(self.last_tick_sec, &self.capture);
            self.last_tick_sec = sec;
            self.capture.sample_telemetry();
            self.virtual_secs_gauge.set(sec as i64);
            self.flush_counters();
            if let Some(h) = self.health.as_mut() {
                h.observe(now.0);
            }
        }
    }

    /// Flushes the batched query/answer counters into the registry —
    /// called at every virtual-second boundary *before* the health
    /// observer reads them, so boundary snapshots match the serial
    /// producer's per-event increments exactly.
    fn flush_counters(&mut self) {
        if self.queries_delta > 0 {
            self.queries_ctr.add(self.queries_delta);
            self.queries_delta = 0;
        }
        if self.answers_delta > 0 {
            self.answers_ctr.add(self.answers_delta);
            self.answers_delta = 0;
        }
    }

    /// Builds the answer datagram for one manifest, consuming the shard
    /// replies it references. Returns `None` for answerless events.
    fn build_answer(&mut self, m: &Manifest) -> Option<Vec<u8>> {
        match &m.op {
            ManifestOp::Passthrough => None,
            ManifestOp::ServerList => Some(self.serverlist_answer.clone()),
            ManifestOp::Desc => Some(self.desc_answer.clone()),
            ManifestOp::Status { challenge, users } => {
                let mut files = 0u32;
                for j in 0..self.fifos.len() {
                    if let Some(ShardReply::Count(n)) = self.reply(j) {
                        files += n;
                    }
                }
                let mut out = Vec::with_capacity(14);
                out.extend_from_slice(&[MARKER, 0x97]);
                out.extend_from_slice(&challenge.to_le_bytes());
                out.extend_from_slice(&users.to_le_bytes());
                out.extend_from_slice(&files.to_le_bytes());
                Some(out)
            }
            ManifestOp::Search => {
                let mut hits = std::mem::take(&mut self.merge_buf);
                hits.clear();
                for j in 0..self.fifos.len() {
                    if let Some(ShardReply::Search(part)) = self.reply(j) {
                        hits.extend(part);
                    }
                }
                // Per-shard lists are key-ordered; the global order is
                // the serial index's slot order.
                hits.sort_unstable_by_key(|h| h.key);
                hits.truncate(MAX_SEARCH_RESULTS);
                let mut out = Vec::with_capacity(6 + hits.len() * 112);
                out.extend_from_slice(&[MARKER, 0x99]);
                out.extend_from_slice(&(hits.len() as u32).to_le_bytes());
                for h in &hits {
                    out.extend_from_slice(h.file_id.as_bytes());
                    out.extend_from_slice(&h.provider.to_le_bytes());
                    out.extend_from_slice(&h.provider_port.to_le_bytes());
                    out.extend_from_slice(&4u32.to_le_bytes());
                    out.extend_from_slice(self.blobs.tags3(h.meta_idx));
                    out.push(0x03);
                    out.extend_from_slice(&[0x01, 0x00, special::SOURCES]);
                    out.extend_from_slice(&h.n_sources.to_le_bytes());
                }
                self.merge_buf = hits;
                Some(out)
            }
            ManifestOp::Sources { file_id, shard } => {
                let sources = match self.reply(*shard as usize) {
                    Some(ShardReply::Sources(s)) => s,
                    _ => Vec::new(),
                };
                let mut out = Vec::with_capacity(19 + sources.len() * 6);
                out.extend_from_slice(&[MARKER, 0x9B]);
                out.extend_from_slice(file_id.as_bytes());
                out.push(sources.len() as u8);
                for (cid, port) in &sources {
                    out.extend_from_slice(&cid.to_le_bytes());
                    out.extend_from_slice(&port.to_le_bytes());
                }
                Some(out)
            }
        }
    }

    /// Expands one manifest into capture frames (query, answer, noise) —
    /// the same per-event structure as the serial producer.
    fn process(&mut self, mut m: Manifest) {
        let t = VirtualTime(m.t_us);
        self.tick(t);
        self.stats.queries_generated += 1;
        self.queries_delta += 1;
        if m.wire.query_corrupt {
            self.stats.corrupted += 1;
            damage(&mut m.query, m.wire.query_structural);
        }
        let answer = if m.wire.query_corrupt {
            None
        } else {
            self.build_answer(&m)
        };

        let mtu = self.mtu;
        let ident = self.next_ident();
        {
            let (capture, stats, pending) = (&mut self.capture, &mut self.stats, &mut self.pending);
            datagram_frames(
                &m.query,
                m.client,
                m.port,
                Direction::ToServer,
                ident,
                mtu,
                |b| offer(capture, stats, pending, t, b),
            );
        }
        if let Some(mut a) = answer {
            self.stats.answers_generated += 1;
            self.answers_delta += 1;
            if m.wire.answer_corrupt {
                self.stats.corrupted += 1;
                damage(&mut a, m.wire.answer_structural);
            }
            let ident = self.next_ident();
            let (capture, stats, pending) = (&mut self.capture, &mut self.stats, &mut self.pending);
            datagram_frames(
                &a,
                m.client,
                m.port,
                Direction::FromServer,
                ident,
                mtu,
                |b| offer(capture, stats, pending, t, b),
            );
        }
        for i in 0..m.wire.tcp_flight as usize {
            self.stats.tcp_noise += 1;
            let frame =
                tcp_noise_frame_bytes(m.wire.tcp_src[i], SERVER_IP, m.wire.tcp_len[i] as usize);
            offer(
                &mut self.capture,
                &mut self.stats,
                &mut self.pending,
                t,
                frame,
            );
        }
        if m.wire.udp_len > 0 {
            self.stats.udp_noise += 1;
            let ident = self.next_ident();
            let (capture, stats, pending) = (&mut self.capture, &mut self.stats, &mut self.pending);
            datagram_frames(
                &m.wire.udp_payload[..m.wire.udp_len as usize],
                m.client,
                m.port,
                Direction::ToServer,
                ident,
                mtu,
                |b| offer(capture, stats, pending, t, b),
            );
        }
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.loss_recorder.tick(self.last_tick_sec, &self.capture);
        self.capture.sample_telemetry();
        self.flush_counters();
        self.stats.losses_per_sec = self.loss_recorder.losses_per_sec.clone();
        *self.stats_out.lock() = std::mem::take(&mut self.stats);
        if let Some(h) = self.health.take() {
            *self.health_out.lock() = Some((h, self.last_virtual_us));
        }
    }
}

/// Offers one frame to the lossy capture, queueing it only if the ring
/// accepted it (free function so the emit closures can borrow the three
/// fields disjointly).
fn offer(
    capture: &mut CaptureBuffer,
    stats: &mut CaptureSide,
    pending: &mut VecDeque<TimedFrame>,
    ts: VirtualTime,
    bytes: Vec<u8>,
) {
    stats.offered += 1;
    if capture.offer(ts) {
        stats.captured += 1;
        pending.push_back(TimedFrame { ts, bytes });
    } else {
        stats.lost += 1;
    }
}

impl Iterator for SourceStream {
    type Item = TimedFrame;

    fn next(&mut self) -> Option<TimedFrame> {
        loop {
            if let Some(f) = self.pending.pop_front() {
                return Some(f);
            }
            match self.next_manifest() {
                Some(m) => self.process(m),
                None => {
                    self.finish();
                    return None;
                }
            }
        }
    }
}

impl Drop for SourceStream {
    fn drop(&mut self) {
        // Disconnect every channel this end holds, so blocked workers
        // wake with a send/recv error and exit; then reap them. On the
        // normal path the threads have already finished.
        self.man_rx = None;
        self.man_batch = Vec::new().into_iter();
        self.res_rxs.clear();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Runs only the sharded source — generators, merger, index shards,
/// answer assembly, lossy capture — without the decode pipeline behind
/// it. Returns the capture-side stats and total frame bytes; this is the
/// `repro bench` `source_only` row.
pub fn run_source_only(config: &CampaignConfig, registry: &Registry) -> (CaptureSide, u64) {
    let catalog = Arc::new(Catalog::generate(&config.catalog, config.seed ^ 1));
    let population = Arc::new(Population::generate(&config.population, config.seed ^ 2));
    let mut capture = CaptureBuffer::new(config.capture_ring, config.capture_drain_pps);
    capture.attach_telemetry(registry);
    let stats = Arc::new(Mutex::new(CaptureSide::default()));
    let health_out = Arc::new(Mutex::new(None));
    let mut stream = SourceStream::spawn(
        catalog,
        population,
        config,
        registry,
        capture,
        Arc::clone(&stats),
        None,
        health_out,
    );
    let mut bytes = 0u64;
    for f in &mut stream {
        bytes += f.bytes.len() as u64;
    }
    drop(stream);
    let side = std::mem::take(&mut *stats.lock());
    (side, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wirepath::encapsulate;
    use etw_edonkey::messages::Message;
    use etw_server::engine::{EngineConfig, ServerEngine};
    use etw_workload::session::MergedSessions;

    fn collect_frames(config: &CampaignConfig) -> (Vec<TimedFrame>, CaptureSide) {
        let catalog = Arc::new(Catalog::generate(&config.catalog, config.seed ^ 1));
        let population = Arc::new(Population::generate(&config.population, config.seed ^ 2));
        let capture = CaptureBuffer::new(config.capture_ring, config.capture_drain_pps);
        let stats = Arc::new(Mutex::new(CaptureSide::default()));
        let health_out = Arc::new(Mutex::new(None));
        let mut stream = SourceStream::spawn(
            catalog,
            population,
            config,
            &Registry::disabled(),
            capture,
            Arc::clone(&stats),
            None,
            health_out,
        );
        let frames: Vec<TimedFrame> = (&mut stream).collect();
        drop(stream);
        let side = std::mem::take(&mut *stats.lock());
        (frames, side)
    }

    fn quiet_config(shards: usize) -> CampaignConfig {
        // No corruption and no noise: every frame is a query or answer
        // datagram, so the stream compares 1:1 against the serial engine.
        let mut config = CampaignConfig::tiny();
        config.p_corrupt = 0.0;
        config.p_tcp_noise = 0.0;
        config.p_udp_noise = 0.0;
        config.capture_ring = 1 << 20; // lossless
        config.capture_drain_pps = 1e9;
        config.source.source_shards = shards;
        config
    }

    /// The strongest correctness check: the sharded source must emit the
    /// exact frame bytes a serial [`ServerEngine`] fed by the same event
    /// stream would produce — same answers, same idents, same order.
    #[test]
    fn sharded_answers_match_serial_engine() {
        let config = quiet_config(4);
        let catalog = Arc::new(Catalog::generate(&config.catalog, config.seed ^ 1));
        let population = Arc::new(Population::generate(&config.population, config.seed ^ 2));
        let blobs = Arc::new(SourceBlobs::build(&catalog));
        let wire = WireParams {
            p_corrupt: 0.0,
            p_corrupt_structural: config.p_corrupt_structural,
            p_tcp_noise: 0.0,
            p_udp_noise: 0.0,
        };
        let events: Vec<SrcEvent> = MergedSessions::new(
            Arc::clone(&catalog),
            Arc::clone(&population),
            blobs,
            config.generator.clone(),
            wire,
            config.seed ^ 3,
            1,
        )
        .collect();
        assert!(events.len() > 2_000, "only {} events", events.len());

        // Serial reference: the exact engine configuration the campaign
        // driver used before the source was sharded.
        let mut engine = ServerEngine::new(EngineConfig {
            peer_servers: (1..=8u32)
                .map(|i| etw_edonkey::messages::ServerAddr {
                    ip: i,
                    port: 4661 + (i % 4) as u16,
                })
                .collect(),
            max_search_results: MAX_SEARCH_RESULTS,
            ..EngineConfig::default()
        });
        let mut expected: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut ident = 0u16;
        for ev in &events {
            let msg = Message::decode(&ev.query).expect("clean queries decode");
            let answers = engine.handle(ev.client, &msg);
            ident = ident.wrapping_add(1);
            for f in encapsulate(
                ev.query.clone(),
                ev.client,
                ev.port,
                Direction::ToServer,
                ident,
                config.mtu,
            ) {
                expected.push((ev.t_us, f.to_bytes()));
            }
            for a in answers {
                ident = ident.wrapping_add(1);
                for f in encapsulate(
                    a.encode(),
                    ev.client,
                    ev.port,
                    Direction::FromServer,
                    ident,
                    config.mtu,
                ) {
                    expected.push((ev.t_us, f.to_bytes()));
                }
            }
        }

        let (frames, side) = collect_frames(&config);
        assert_eq!(side.offered, side.captured, "quiet config must be lossless");
        assert_eq!(expected.len(), frames.len(), "frame count diverges");
        for (i, (exp, got)) in expected.iter().zip(&frames).enumerate() {
            assert_eq!(exp.0, got.ts.0, "timestamp diverges at frame {i}");
            assert_eq!(&exp.1, &got.bytes, "frame bytes diverge at frame {i}");
        }
    }

    #[test]
    fn frames_invariant_under_shard_count() {
        let mut config = CampaignConfig::tiny();
        config.source.source_shards = 1;
        let (one, side_one) = collect_frames(&config);
        assert!(one.len() > 5_000, "only {} frames", one.len());
        assert_eq!(side_one.offered, side_one.captured + side_one.lost);
        for s in [2usize, 4, 8] {
            config.source.source_shards = s;
            let (many, side) = collect_frames(&config);
            assert_eq!(one.len(), many.len(), "{s} shards: frame count diverges");
            for (i, (a, b)) in one.iter().zip(&many).enumerate() {
                assert_eq!(a.ts, b.ts, "{s} shards: ts diverges at {i}");
                assert_eq!(a.bytes, b.bytes, "{s} shards: bytes diverge at {i}");
            }
            assert_eq!(side_one.offered, side.offered);
            assert_eq!(side_one.queries_generated, side.queries_generated);
            assert_eq!(side_one.answers_generated, side.answers_generated);
            assert_eq!(side_one.corrupted, side.corrupted);
            assert_eq!(side_one.tcp_noise, side.tcp_noise);
            assert_eq!(side_one.udp_noise, side.udp_noise);
        }
    }

    #[test]
    fn token_table_matches_serial_tokenizer() {
        let catalog = Catalog::generate(&CampaignConfig::tiny().catalog, 99);
        let token = TokenTable::build(&catalog);
        for (i, f) in catalog.files().iter().enumerate().take(200) {
            let toks = tokenize(&f.name);
            assert_eq!(toks.len(), token.pub_toks(i as u32).len());
            assert_eq!(token.size(i as u32), f.size);
            // Keyword atoms intern to the same ids as their occurrence
            // in the name's token stream.
            for (k, kw) in f.keywords.iter().take(4).enumerate() {
                let id = token.kw_toks(i as u32)[k];
                let pos = toks.iter().position(|t| t == kw).expect("keyword in name");
                assert_eq!(id, token.pub_toks(i as u32)[pos]);
            }
        }
    }

    #[test]
    fn early_drop_shuts_down_cleanly() {
        let config = CampaignConfig::tiny();
        let catalog = Arc::new(Catalog::generate(&config.catalog, config.seed ^ 1));
        let population = Arc::new(Population::generate(&config.population, config.seed ^ 2));
        let capture = CaptureBuffer::new(config.capture_ring, config.capture_drain_pps);
        let stats = Arc::new(Mutex::new(CaptureSide::default()));
        let health_out = Arc::new(Mutex::new(None));
        let mut stream = SourceStream::spawn(
            catalog,
            population,
            &config,
            &Registry::disabled(),
            capture,
            stats,
            None,
            health_out,
        );
        // Take a handful of frames, then drop mid-campaign: Drop must
        // disconnect and join every worker without deadlocking.
        for _ in 0..100 {
            let _ = stream.next();
        }
        drop(stream);
    }

    #[test]
    fn source_only_runner_reports_capture_side() {
        let mut config = CampaignConfig::tiny();
        config.source.source_shards = 2;
        let (side, bytes) = run_source_only(&config, &Registry::disabled());
        assert!(side.offered > 10_000, "offered {}", side.offered);
        assert_eq!(side.offered, side.captured + side.lost);
        assert!(bytes > side.captured * 40, "bytes {bytes}");
        assert!(side.queries_generated > 2_000);
    }
}
