//! # etw-core — the capture machine
//!
//! Orchestrates the full reproduction of the paper's measurement
//! (Fig. 1): the traffic source (workload + server), the lossy capture,
//! the parallel decode pipeline, the sequential anonymiser and the
//! dataset sink.
//!
//! * [`config`] — one configuration struct for the whole campaign;
//! * [`wirepath`] — messages ⇄ ethernet frames (down- and up-path);
//! * [`pipeline`] — the staged concurrent capture pipeline with
//!   deterministic output ordering, supervised workers, load shedding
//!   and checkpoint cuts;
//! * [`campaign`] — the end-to-end driver producing a [`campaign::CampaignReport`],
//!   with fault injection and checkpoint/resume entry points;
//! * [`checkpoint`] — the resume-sidecar format;
//! * [`summary`] — the T1 headline-numbers table.
//!
//! ## Example
//!
//! ```
//! use etw_core::campaign::run_campaign;
//! use etw_core::config::CampaignConfig;
//!
//! let mut records = 0u64;
//! let report = run_campaign(&CampaignConfig::tiny(), |_record| records += 1);
//! assert_eq!(report.records, records);
//! assert!(report.distinct_clients > 0);
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod checkpoint;
pub mod config;
pub mod livecap;
pub mod pipeline;
pub mod source;
pub mod summary;
pub mod wirepath;

pub use campaign::{
    render_health_dat, run_campaign, run_campaign_observed, try_resume_campaign_observed,
    try_run_campaign_checkpointed, try_run_campaign_observed, CampaignReport, CaptureSide,
};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use config::{CampaignConfig, ConfigError};
pub use pipeline::{
    run_capture_pipeline, run_capture_pipeline_observed, run_capture_pipeline_with,
    PipelineCheckpoint, PipelineOptions, PipelineStats, ResumePoint, TimedFrame, TraceOptions,
};
pub use source::{run_source_only, SourceStream};
pub use summary::{render_t1, t1_key_values};
