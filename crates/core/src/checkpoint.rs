//! Resume checkpoints: a consistent cut of the campaign's sequential
//! state, serialized to a sidecar file next to the dataset.
//!
//! The campaign is a deterministic function of its seed, so a checkpoint
//! does not need to freeze the traffic generator or the decode workers —
//! replaying the frame stream from the start reproduces them exactly.
//! What *cannot* be replayed cheaply is re-writing the dataset, so the
//! checkpoint records everything needed to continue the output stream
//! byte-for-byte:
//!
//! * the anonymiser's appearance orders (clientIDs, fileIDs, and the
//!   optional Fig. 3 tracker) — its entire state, in replayable form;
//! * the count of records already written, so the resumed sink skips
//!   exactly that many messages;
//! * the dataset writer's byte offset, so the tail a crash left behind
//!   (possibly torn) is truncated before appending;
//! * the next checkpoint boundary, so a resumed run cuts the very same
//!   checkpoints an uninterrupted run would.
//!
//! The sidecar is a versioned line-oriented text format ("etwckpt 1"),
//! written atomically (temp file + rename) with a trailing `end` marker
//! so a torn write is detected, never silently half-loaded.

use crate::pipeline::PipelineCheckpoint;
use etw_edonkey::ids::FileId;
use std::io::Write;
use std::path::Path;

/// A campaign checkpoint: [`PipelineCheckpoint`] plus the dataset writer
/// offset and the identity of the run it belongs to.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Campaign seed, as a guard against resuming the wrong run.
    pub seed: u64,
    /// Timestamp of the last message consumed before the cut, µs.
    pub virtual_us: u64,
    /// Boundary the next checkpoint will be cut at, µs.
    pub next_checkpoint_us: u64,
    /// Records written so far (== messages consumed).
    pub records: u64,
    /// Dataset bytes written so far (header included).
    pub writer_bytes: u64,
    /// clientID appearance order.
    pub client_order: Vec<u32>,
    /// fileID appearance order.
    pub file_order: Vec<FileId>,
    /// Fig. 3 FIRST_TWO tracker appearance order, if tracking.
    pub fig3_order: Option<Vec<FileId>>,
}

/// Why a sidecar failed to load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Not an etwckpt file, or an unsupported version.
    BadHeader,
    /// The file ends before its `end` marker — a torn write.
    Truncated,
    /// A line failed to parse.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was expected there.
        expected: &'static str,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::BadHeader => write!(f, "not an etwckpt v1 file"),
            CheckpointError::Truncated => {
                write!(f, "checkpoint truncated (missing end marker)")
            }
            CheckpointError::Malformed { line, expected } => {
                write!(f, "checkpoint line {line}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl Checkpoint {
    /// Pairs a pipeline cut with the run identity and writer offset.
    pub fn from_pipeline(seed: u64, cut: PipelineCheckpoint, writer_bytes: u64) -> Self {
        Checkpoint {
            seed,
            virtual_us: cut.virtual_us,
            next_checkpoint_us: cut.next_checkpoint_us,
            records: cut.records,
            writer_bytes,
            client_order: cut.client_order,
            file_order: cut.file_order,
            fig3_order: cut.fig3_order,
        }
    }

    /// Serializes to the sidecar text format.
    pub fn encode(&self) -> String {
        let mut out =
            String::with_capacity(64 + self.client_order.len() * 9 + self.file_order.len() * 33);
        out.push_str("etwckpt 1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("virtual_us {}\n", self.virtual_us));
        out.push_str(&format!("next_checkpoint_us {}\n", self.next_checkpoint_us));
        out.push_str(&format!("records {}\n", self.records));
        out.push_str(&format!("writer_bytes {}\n", self.writer_bytes));
        out.push_str(&format!("clients {}\n", self.client_order.len()));
        for id in &self.client_order {
            out.push_str(&format!("{id}\n"));
        }
        out.push_str(&format!("files {}\n", self.file_order.len()));
        for id in &self.file_order {
            push_hex(&mut out, id);
        }
        match &self.fig3_order {
            None => out.push_str("fig3 -\n"),
            Some(order) => {
                out.push_str(&format!("fig3 {}\n", order.len()));
                for id in order {
                    push_hex(&mut out, id);
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses the sidecar text format.
    pub fn decode(s: &str) -> Result<Checkpoint, CheckpointError> {
        let mut lines = s.lines().enumerate();
        let mut next = |expected: &'static str| -> Result<(usize, &str), CheckpointError> {
            match lines.next() {
                Some((i, line)) => Ok((i + 1, line)),
                None => {
                    if expected == "end marker" {
                        Err(CheckpointError::Truncated)
                    } else {
                        Err(CheckpointError::Malformed { line: 0, expected })
                    }
                }
            }
        };
        let (_, header) = next("etwckpt header")?;
        if header != "etwckpt 1" {
            return Err(CheckpointError::BadHeader);
        }
        let seed = keyed_u64(next("seed")?, "seed")?;
        let virtual_us = keyed_u64(next("virtual_us")?, "virtual_us")?;
        let next_checkpoint_us = keyed_u64(next("next_checkpoint_us")?, "next_checkpoint_us")?;
        let records = keyed_u64(next("records")?, "records")?;
        let writer_bytes = keyed_u64(next("writer_bytes")?, "writer_bytes")?;

        let n_clients = keyed_u64(next("clients count")?, "clients")? as usize;
        let mut client_order = Vec::with_capacity(n_clients);
        for _ in 0..n_clients {
            let (line_no, line) = next("clientID line")?;
            let id = line
                .parse::<u32>()
                .map_err(|_| CheckpointError::Malformed {
                    line: line_no,
                    expected: "a clientID integer",
                })?;
            client_order.push(id);
        }

        let n_files = keyed_u64(next("files count")?, "files")? as usize;
        let mut file_order = Vec::with_capacity(n_files);
        for _ in 0..n_files {
            file_order.push(parse_hex(next("fileID line")?)?);
        }

        let (fig3_line_no, fig3_line) = next("fig3 count")?;
        let fig3_order = match fig3_line.strip_prefix("fig3 ") {
            Some("-") => None,
            Some(count) => {
                let n = count
                    .parse::<usize>()
                    .map_err(|_| CheckpointError::Malformed {
                        line: fig3_line_no,
                        expected: "fig3 count or '-'",
                    })?;
                let mut order = Vec::with_capacity(n);
                for _ in 0..n {
                    order.push(parse_hex(next("fig3 fileID line")?)?);
                }
                Some(order)
            }
            None => {
                return Err(CheckpointError::Malformed {
                    line: fig3_line_no,
                    expected: "fig3 line",
                })
            }
        };

        let (end_line_no, end) = next("end marker")?;
        if end != "end" {
            return Err(CheckpointError::Malformed {
                line: end_line_no,
                expected: "end marker",
            });
        }
        Ok(Checkpoint {
            seed,
            virtual_us,
            next_checkpoint_us,
            records,
            writer_bytes,
            client_order,
            file_order,
            fig3_order,
        })
    }

    /// Writes the sidecar atomically: the bytes land in a temp file in
    /// the same directory, then rename onto `path`. A crash mid-write
    /// leaves the previous checkpoint intact.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.encode().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads a sidecar written by [`Checkpoint::write_atomic`].
    pub fn read(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        Checkpoint::decode(&text)
    }
}

fn push_hex(out: &mut String, id: &FileId) {
    for i in 0..16 {
        out.push_str(&format!("{:02x}", id.byte(i)));
    }
    out.push('\n');
}

fn parse_hex((line_no, line): (usize, &str)) -> Result<FileId, CheckpointError> {
    let malformed = CheckpointError::Malformed {
        line: line_no,
        expected: "a 32-hex-digit fileID",
    };
    let bytes = line.as_bytes();
    if bytes.len() != 32 {
        return Err(malformed);
    }
    let mut id = [0u8; 16];
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hex = std::str::from_utf8(pair).map_err(|_| CheckpointError::Malformed {
            line: line_no,
            expected: "a 32-hex-digit fileID",
        })?;
        id[i] = u8::from_str_radix(hex, 16).map_err(|_| CheckpointError::Malformed {
            line: line_no,
            expected: "a 32-hex-digit fileID",
        })?;
    }
    Ok(FileId(id))
}

fn keyed_u64((line_no, line): (usize, &str), key: &'static str) -> Result<u64, CheckpointError> {
    let malformed = || CheckpointError::Malformed {
        line: line_no,
        expected: key,
    };
    let rest = line.strip_prefix(key).ok_or_else(malformed)?;
    rest.trim().parse::<u64>().map_err(|_| malformed())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            seed: 0xED0,
            virtual_us: 123_456_789,
            next_checkpoint_us: 300_000_000,
            records: 4_242,
            writer_bytes: 987_654,
            client_order: vec![7, 0, 65_000, 3],
            file_order: vec![FileId([0xAB; 16]), FileId::of_identity(9)],
            fig3_order: Some(vec![FileId::of_identity(1)]),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let cp = sample();
        assert_eq!(Checkpoint::decode(&cp.encode()).unwrap(), cp);
        let without_fig3 = Checkpoint {
            fig3_order: None,
            ..sample()
        };
        assert_eq!(
            Checkpoint::decode(&without_fig3.encode()).unwrap(),
            without_fig3
        );
    }

    #[test]
    fn truncated_sidecar_rejected() {
        let text = sample().encode();
        // Cut anywhere before the end marker: must never half-load.
        for cut in [10, text.len() / 2, text.len() - 5] {
            let torn = &text[..cut];
            assert!(
                Checkpoint::decode(torn).is_err(),
                "accepted torn sidecar cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            Checkpoint::decode("etwckpt 2\nseed 1\n"),
            Err(CheckpointError::BadHeader)
        ));
        assert!(Checkpoint::decode("").is_err());
    }

    #[test]
    fn atomic_write_read_round_trip() {
        let dir = std::env::temp_dir().join("etw-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.etwckpt");
        let cp = sample();
        cp.write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::read(&path).unwrap(), cp);
        // Overwrite with a later checkpoint: reader sees the new one.
        let later = Checkpoint {
            records: 9_999,
            ..sample()
        };
        later.write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::read(&path).unwrap(), later);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
