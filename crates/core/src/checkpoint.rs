//! Resume checkpoints: a consistent cut of the campaign's sequential
//! state, serialized to a sidecar file next to the dataset.
//!
//! The campaign is a deterministic function of its seed, so a checkpoint
//! does not need to freeze the traffic generator or the decode workers —
//! replaying the frame stream from the start reproduces them exactly.
//! What *cannot* be replayed cheaply is re-writing the dataset, so the
//! checkpoint records everything needed to continue the output stream
//! byte-for-byte:
//!
//! * the anonymiser's appearance orders (clientIDs, fileIDs, and the
//!   optional Fig. 3 tracker) — its entire state, in replayable form;
//! * the count of records already written, so the resumed sink skips
//!   exactly that many messages;
//! * the dataset writer's byte offset, so the tail a crash left behind
//!   (possibly torn) is truncated before appending;
//! * the next checkpoint boundary, so a resumed run cuts the very same
//!   checkpoints an uninterrupted run would.
//!
//! The sidecar is a versioned line-oriented text format, written
//! atomically (temp file + rename) with a trailing `end` marker so a
//! torn write is detected, never silently half-loaded.
//!
//! Three versions exist. Version 1 (PR 4 and earlier) stores each
//! appearance order as one flat list of ids, the global order implicit
//! in line position. Version 2 mirrors the sharded anonymiser: ids are
//! grouped into sixteen canonical stripes (clientIDs by `raw & 15`,
//! fileIDs by `id.byte(0) & 15` — fixed stripe keys, deliberately
//! independent of the run's shard count and byte-pair selector so a
//! sidecar written at one configuration restores at any other), each
//! entry carrying its explicit global order. Version 3 keeps the v2
//! layout but *seals* every id payload: each clientID/fileID is XOR-masked
//! with a keystream derived from the header fields and the entry's global
//! order, so the sidecar never contains a raw identifier in cleartext.
//! The seal is deterministic (decode re-derives the keystream from the
//! plaintext header), so it is an at-rest masking layer against
//! accidental disclosure — grep, log scrapers, backup indexing — not
//! cryptography; the threat model for *published* artefacts is the
//! anonymiser's, and sidecars remain operational files that must never
//! ship. All versions decode to the same [`Checkpoint`]; encoding always
//! writes version 3.

use crate::pipeline::PipelineCheckpoint;
use etw_edonkey::ids::FileId;
use std::io::Write;
use std::path::Path;

/// A campaign checkpoint: [`PipelineCheckpoint`] plus the dataset writer
/// offset and the identity of the run it belongs to.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Campaign seed, as a guard against resuming the wrong run.
    pub seed: u64,
    /// Timestamp of the last message consumed before the cut, µs.
    pub virtual_us: u64,
    /// Boundary the next checkpoint will be cut at, µs.
    pub next_checkpoint_us: u64,
    /// Records written so far (== messages consumed).
    pub records: u64,
    /// Dataset bytes written so far (header included).
    pub writer_bytes: u64,
    /// clientID appearance order.
    // etwlint: source(raw-id): resume state carries the raw clientID order
    pub client_order: Vec<u32>,
    /// fileID appearance order.
    // etwlint: source(raw-id): resume state carries the raw fileID order
    pub file_order: Vec<FileId>,
    /// Fig. 3 FIRST_TWO tracker appearance order, if tracking.
    // etwlint: source(raw-id): tracker order is raw fileIDs
    pub fig3_order: Option<Vec<FileId>>,
}

/// Why a sidecar failed to load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Not an etwckpt file, or an unsupported version.
    BadHeader,
    /// The file ends before its `end` marker — a torn write.
    Truncated,
    /// A line failed to parse.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was expected there.
        expected: &'static str,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::BadHeader => {
                write!(f, "not an etwckpt file (or an unsupported version)")
            }
            CheckpointError::Truncated => {
                write!(f, "checkpoint truncated (missing end marker)")
            }
            CheckpointError::Malformed { line, expected } => {
                write!(f, "checkpoint line {line}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl Checkpoint {
    /// Pairs a pipeline cut with the run identity and writer offset.
    pub fn from_pipeline(seed: u64, cut: PipelineCheckpoint, writer_bytes: u64) -> Self {
        Checkpoint {
            seed,
            virtual_us: cut.virtual_us,
            next_checkpoint_us: cut.next_checkpoint_us,
            records: cut.records,
            writer_bytes,
            client_order: cut.client_order,
            file_order: cut.file_order,
            fig3_order: cut.fig3_order,
        }
    }

    /// Keystream key for this checkpoint's sealed id payloads, derived
    /// from header fields that decode reads before any id line.
    fn seal_key(&self) -> u64 {
        seal_key(self.seed, self.virtual_us, self.records)
    }

    /// Serializes to the sidecar text format (always version 3: v2
    /// stripe layout, id payloads sealed).
    pub fn encode(&self) -> String {
        let key = self.seal_key();
        let mut out =
            String::with_capacity(96 + self.client_order.len() * 14 + self.file_order.len() * 40);
        out.push_str("etwckpt 3\n");
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("virtual_us {}\n", self.virtual_us));
        out.push_str(&format!("next_checkpoint_us {}\n", self.next_checkpoint_us));
        out.push_str(&format!("records {}\n", self.records));
        out.push_str(&format!("writer_bytes {}\n", self.writer_bytes));

        out.push_str(&format!("clients {}\n", self.client_order.len()));
        let mut stripes: [Vec<usize>; SIDECAR_STRIPES] = Default::default();
        for (g, id) in self.client_order.iter().enumerate() {
            stripes[client_stripe(*id)].push(g);
        }
        for (s, members) in stripes.iter().enumerate() {
            out.push_str(&format!("cstripe {s} {}\n", members.len()));
            for &g in members {
                out.push_str(&format!(
                    "{g} {}\n",
                    seal32(key, g as u64, self.client_order[g])
                ));
            }
        }

        out.push_str(&format!("files {}\n", self.file_order.len()));
        let mut stripes: [Vec<usize>; SIDECAR_STRIPES] = Default::default();
        for (g, id) in self.file_order.iter().enumerate() {
            stripes[file_stripe(id)].push(g);
        }
        for (s, members) in stripes.iter().enumerate() {
            out.push_str(&format!("fstripe {s} {}\n", members.len()));
            for &g in members {
                out.push_str(&format!("{g} "));
                push_hex_bytes(&mut out, &seal_file(key, g as u64, &self.file_order[g]));
            }
        }

        match &self.fig3_order {
            None => out.push_str("fig3 -\n"),
            Some(order) => {
                out.push_str(&format!("fig3 {}\n", order.len()));
                for (i, id) in order.iter().enumerate() {
                    push_hex_bytes(&mut out, &seal_file(key, FIG3_SALT ^ i as u64, id));
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses the sidecar text format, either version.
    pub fn decode(s: &str) -> Result<Checkpoint, CheckpointError> {
        let mut lines = s.lines().enumerate();
        let mut next = |expected: &'static str| -> Result<(usize, &str), CheckpointError> {
            match lines.next() {
                Some((i, line)) => Ok((i + 1, line)),
                None => {
                    if expected == "end marker" {
                        Err(CheckpointError::Truncated)
                    } else {
                        Err(CheckpointError::Malformed { line: 0, expected })
                    }
                }
            }
        };
        let (_, header) = next("etwckpt header")?;
        let version = match header {
            "etwckpt 1" => 1,
            "etwckpt 2" => 2,
            "etwckpt 3" => 3,
            _ => return Err(CheckpointError::BadHeader),
        };
        let seed = keyed_u64(next("seed")?, "seed")?;
        let virtual_us = keyed_u64(next("virtual_us")?, "virtual_us")?;
        let next_checkpoint_us = keyed_u64(next("next_checkpoint_us")?, "next_checkpoint_us")?;
        let records = keyed_u64(next("records")?, "records")?;
        let writer_bytes = keyed_u64(next("writer_bytes")?, "writer_bytes")?;
        let key = seal_key(seed, virtual_us, records);

        let n_clients = keyed_u64(next("clients count")?, "clients")? as usize;
        let client_order = if version == 1 {
            // v1: flat list, global order implicit in line position.
            let mut order = Vec::with_capacity(n_clients);
            for _ in 0..n_clients {
                let (line_no, line) = next("clientID line")?;
                let id = line
                    .parse::<u32>()
                    .map_err(|_| CheckpointError::Malformed {
                        line: line_no,
                        expected: "a clientID integer",
                    })?;
                order.push(id);
            }
            order
        } else {
            // v2: sixteen stripes of explicit `<global_order> <id>`
            // pairs; rebuild the flat order and insist every slot is
            // assigned exactly once.
            let mut order = vec![0u32; n_clients];
            let mut filled = vec![false; n_clients];
            for stripe in 0..SIDECAR_STRIPES {
                let (line_no, line) = next("cstripe header")?;
                let k = stripe_header(line, "cstripe", stripe).ok_or({
                    CheckpointError::Malformed {
                        line: line_no,
                        expected: "a cstripe header in canonical order",
                    }
                })?;
                for _ in 0..k {
                    let (line_no, line) = next("client stripe entry")?;
                    let malformed = || CheckpointError::Malformed {
                        line: line_no,
                        expected: "a `<order> <clientID>` pair",
                    };
                    let (g, id) = line.split_once(' ').ok_or_else(malformed)?;
                    let g = g.parse::<usize>().map_err(|_| malformed())?;
                    let mut id = id.parse::<u32>().map_err(|_| malformed())?;
                    if version == 3 {
                        id = unseal32(key, g as u64, id);
                    }
                    if g >= n_clients || filled[g] || client_stripe(id) != stripe {
                        return Err(malformed());
                    }
                    order[g] = id;
                    filled[g] = true;
                }
            }
            if filled.iter().any(|f| !f) {
                return Err(CheckpointError::Malformed {
                    line: 0,
                    expected: "every client order slot assigned",
                });
            }
            order
        };

        let n_files = keyed_u64(next("files count")?, "files")? as usize;
        let file_order = if version == 1 {
            let mut order = Vec::with_capacity(n_files);
            for _ in 0..n_files {
                order.push(parse_hex(next("fileID line")?)?);
            }
            order
        } else {
            let mut order = vec![FileId([0; 16]); n_files];
            let mut filled = vec![false; n_files];
            for stripe in 0..SIDECAR_STRIPES {
                let (line_no, line) = next("fstripe header")?;
                let k = stripe_header(line, "fstripe", stripe).ok_or({
                    CheckpointError::Malformed {
                        line: line_no,
                        expected: "an fstripe header in canonical order",
                    }
                })?;
                for _ in 0..k {
                    let (line_no, line) = next("file stripe entry")?;
                    let malformed = || CheckpointError::Malformed {
                        line: line_no,
                        expected: "a `<order> <fileID>` pair",
                    };
                    let (g, hex) = line.split_once(' ').ok_or_else(malformed)?;
                    let g = g.parse::<usize>().map_err(|_| malformed())?;
                    let mut id = parse_hex((line_no, hex))?;
                    if version == 3 {
                        id = unseal_file(key, g as u64, &id);
                    }
                    if g >= n_files || filled[g] || file_stripe(&id) != stripe {
                        return Err(malformed());
                    }
                    order[g] = id;
                    filled[g] = true;
                }
            }
            if filled.iter().any(|f| !f) {
                return Err(CheckpointError::Malformed {
                    line: 0,
                    expected: "every file order slot assigned",
                });
            }
            order
        };

        let (fig3_line_no, fig3_line) = next("fig3 count")?;
        let fig3_order = match fig3_line.strip_prefix("fig3 ") {
            Some("-") => None,
            Some(count) => {
                let n = count
                    .parse::<usize>()
                    .map_err(|_| CheckpointError::Malformed {
                        line: fig3_line_no,
                        expected: "fig3 count or '-'",
                    })?;
                let mut order = Vec::with_capacity(n);
                for i in 0..n {
                    let mut id = parse_hex(next("fig3 fileID line")?)?;
                    if version == 3 {
                        id = unseal_file(key, FIG3_SALT ^ i as u64, &id);
                    }
                    order.push(id);
                }
                Some(order)
            }
            None => {
                return Err(CheckpointError::Malformed {
                    line: fig3_line_no,
                    expected: "fig3 line",
                })
            }
        };

        let (end_line_no, end) = next("end marker")?;
        if end != "end" {
            return Err(CheckpointError::Malformed {
                line: end_line_no,
                expected: "end marker",
            });
        }
        Ok(Checkpoint {
            seed,
            virtual_us,
            next_checkpoint_us,
            records,
            writer_bytes,
            client_order,
            file_order,
            fig3_order,
        })
    }

    /// Writes the sidecar atomically: the bytes land in a temp file in
    /// the same directory, then rename onto `path`. A crash mid-write
    /// leaves the previous checkpoint intact.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        write_sidecar_bytes(&tmp, self.encode().as_bytes())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a sidecar written by [`Checkpoint::write_atomic`].
    pub fn read(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        Checkpoint::decode(&text)
    }
}

/// Number of canonical sidecar stripes. Fixed at sixteen regardless of
/// the run's `anon_shards`, so any sidecar restores at any shard count.
const SIDECAR_STRIPES: usize = 16;

/// Canonical client stripe: low four id bits (every shard partition for
/// `anon_shards <= 16` is a coarsening of these stripes).
fn client_stripe(id: u32) -> usize {
    (id as usize) & (SIDECAR_STRIPES - 1)
}

/// Canonical file stripe: low four bits of byte 0. Deliberately *not*
/// the run's byte-pair selector — the sidecar doesn't record the
/// selector, so the stripe key must not depend on it.
fn file_stripe(id: &FileId) -> usize {
    (id.byte(0) as usize) & (SIDECAR_STRIPES - 1)
}

/// Parses `"<kind> <stripe> <count>"`, insisting the stripe index equals
/// `expect` (stripes are written in canonical order).
fn stripe_header(line: &str, kind: &str, expect: usize) -> Option<usize> {
    let rest = line.strip_prefix(kind)?.strip_prefix(' ')?;
    let (s, k) = rest.split_once(' ')?;
    if s.parse::<usize>().ok()? != expect {
        return None;
    }
    k.parse::<usize>().ok()
}

/// Every sidecar byte funnels through here; the taint pass treats this
/// as the checkpoint sink, so anything reaching it must be sealed.
// etwlint: sink(checkpoint): sidecar bytes reach disk here
fn write_sidecar_bytes(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()
}

/// Mixes the seal key, a lane tag, and an entry's global order into one
/// keystream word (splitmix64 finalizer).
fn sidecar_mix(key: u64, lane: u64, g: u64) -> u64 {
    let mut z =
        key ^ lane.wrapping_mul(0xa076_1d64_78bd_642f) ^ g.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Distinguishes fig3 keystream positions from the file-order lane.
const FIG3_SALT: u64 = 0x8000_0000_0000_0000;

/// Derives the sidecar keystream key from plaintext header fields.
fn seal_key(seed: u64, virtual_us: u64, records: u64) -> u64 {
    seed ^ virtual_us.rotate_left(21) ^ records.rotate_left(42) ^ 0x5851_f42d_4c95_7f2d
}

/// XOR-seals one clientID for the v3 sidecar.
// etwlint: sanitize(raw-id): deterministic seal; the sidecar stores no cleartext clientID
fn seal32(key: u64, g: u64, raw: u32) -> u32 {
    raw ^ (sidecar_mix(key, 1, g) as u32)
}

/// Recovers the raw clientID from its sealed v3 form.
// etwlint: source(raw-id): unsealing reproduces the raw clientID
fn unseal32(key: u64, g: u64, sealed: u32) -> u32 {
    sealed ^ (sidecar_mix(key, 1, g) as u32)
}

/// XOR-seals one fileID for the v3 sidecar.
// etwlint: sanitize(raw-id): deterministic seal; the sidecar stores no cleartext fileID
fn seal_file(key: u64, g: u64, id: &FileId) -> [u8; 16] {
    let mut b = *id.as_bytes();
    mask_file(key, g, &mut b);
    b
}

/// Recovers the raw fileID from its sealed v3 form.
// etwlint: source(raw-id): unsealing reproduces the raw fileID
fn unseal_file(key: u64, g: u64, sealed: &FileId) -> FileId {
    let mut b = *sealed.as_bytes();
    mask_file(key, g, &mut b);
    FileId(b)
}

fn mask_file(key: u64, g: u64, b: &mut [u8; 16]) {
    let lo = sidecar_mix(key, 2, g).to_le_bytes();
    let hi = sidecar_mix(key, 3, g).to_le_bytes();
    for i in 0..8 {
        b[i] ^= lo[i];
        b[i + 8] ^= hi[i];
    }
}

fn push_hex_bytes(out: &mut String, bytes: &[u8; 16]) {
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out.push('\n');
}

#[cfg(test)]
fn push_hex(out: &mut String, id: &FileId) {
    push_hex_bytes(out, id.as_bytes());
}

fn parse_hex((line_no, line): (usize, &str)) -> Result<FileId, CheckpointError> {
    let malformed = CheckpointError::Malformed {
        line: line_no,
        expected: "a 32-hex-digit fileID",
    };
    let bytes = line.as_bytes();
    if bytes.len() != 32 {
        return Err(malformed);
    }
    let mut id = [0u8; 16];
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hex = std::str::from_utf8(pair).map_err(|_| CheckpointError::Malformed {
            line: line_no,
            expected: "a 32-hex-digit fileID",
        })?;
        id[i] = u8::from_str_radix(hex, 16).map_err(|_| CheckpointError::Malformed {
            line: line_no,
            expected: "a 32-hex-digit fileID",
        })?;
    }
    Ok(FileId(id))
}

fn keyed_u64((line_no, line): (usize, &str), key: &'static str) -> Result<u64, CheckpointError> {
    let malformed = || CheckpointError::Malformed {
        line: line_no,
        expected: key,
    };
    let rest = line.strip_prefix(key).ok_or_else(malformed)?;
    rest.trim().parse::<u64>().map_err(|_| malformed())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            seed: 0xED0,
            virtual_us: 123_456_789,
            next_checkpoint_us: 300_000_000,
            records: 4_242,
            writer_bytes: 987_654,
            client_order: vec![7, 0, 65_000, 3],
            file_order: vec![FileId([0xAB; 16]), FileId::of_identity(9)],
            fig3_order: Some(vec![FileId::of_identity(1)]),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let cp = sample();
        assert_eq!(Checkpoint::decode(&cp.encode()).unwrap(), cp);
        let without_fig3 = Checkpoint {
            fig3_order: None,
            ..sample()
        };
        assert_eq!(
            Checkpoint::decode(&without_fig3.encode()).unwrap(),
            without_fig3
        );
    }

    #[test]
    fn truncated_sidecar_rejected() {
        let text = sample().encode();
        // Cut anywhere before the end marker: must never half-load.
        for cut in [10, text.len() / 2, text.len() - 5] {
            let torn = &text[..cut];
            assert!(
                Checkpoint::decode(torn).is_err(),
                "accepted torn sidecar cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_header_rejected() {
        // An unknown future version is a typed error, not a panic or a
        // misparse.
        assert!(matches!(
            Checkpoint::decode("etwckpt 9\nseed 1\n"),
            Err(CheckpointError::BadHeader)
        ));
        assert!(matches!(
            Checkpoint::decode("not a checkpoint\n"),
            Err(CheckpointError::BadHeader)
        ));
        assert!(Checkpoint::decode("").is_err());
    }

    /// Renders `cp` in the flat v1 sidecar layout (what PR 4-era runs
    /// left on disk).
    fn encode_v1(cp: &Checkpoint) -> String {
        let mut out = String::new();
        out.push_str("etwckpt 1\n");
        out.push_str(&format!("seed {}\n", cp.seed));
        out.push_str(&format!("virtual_us {}\n", cp.virtual_us));
        out.push_str(&format!("next_checkpoint_us {}\n", cp.next_checkpoint_us));
        out.push_str(&format!("records {}\n", cp.records));
        out.push_str(&format!("writer_bytes {}\n", cp.writer_bytes));
        out.push_str(&format!("clients {}\n", cp.client_order.len()));
        for id in &cp.client_order {
            out.push_str(&format!("{id}\n"));
        }
        out.push_str(&format!("files {}\n", cp.file_order.len()));
        for id in &cp.file_order {
            push_hex(&mut out, id);
        }
        match &cp.fig3_order {
            None => out.push_str("fig3 -\n"),
            Some(order) => {
                out.push_str(&format!("fig3 {}\n", order.len()));
                for id in order {
                    push_hex(&mut out, id);
                }
            }
        }
        out.push_str("end\n");
        out
    }

    #[test]
    fn v1_sidecar_still_decodes() {
        let cp = sample();
        assert_eq!(Checkpoint::decode(&encode_v1(&cp)).unwrap(), cp);
        let without_fig3 = Checkpoint {
            fig3_order: None,
            ..sample()
        };
        assert_eq!(
            Checkpoint::decode(&encode_v1(&without_fig3)).unwrap(),
            without_fig3
        );
    }

    /// Renders `cp` in the v2 sidecar layout (PR 5-era runs: striped,
    /// ids in cleartext).
    fn encode_v2(cp: &Checkpoint) -> String {
        let mut out = String::new();
        out.push_str("etwckpt 2\n");
        out.push_str(&format!("seed {}\n", cp.seed));
        out.push_str(&format!("virtual_us {}\n", cp.virtual_us));
        out.push_str(&format!("next_checkpoint_us {}\n", cp.next_checkpoint_us));
        out.push_str(&format!("records {}\n", cp.records));
        out.push_str(&format!("writer_bytes {}\n", cp.writer_bytes));
        out.push_str(&format!("clients {}\n", cp.client_order.len()));
        let mut stripes: [Vec<usize>; SIDECAR_STRIPES] = Default::default();
        for (g, id) in cp.client_order.iter().enumerate() {
            stripes[client_stripe(*id)].push(g);
        }
        for (s, members) in stripes.iter().enumerate() {
            out.push_str(&format!("cstripe {s} {}\n", members.len()));
            for &g in members {
                out.push_str(&format!("{g} {}\n", cp.client_order[g]));
            }
        }
        out.push_str(&format!("files {}\n", cp.file_order.len()));
        let mut stripes: [Vec<usize>; SIDECAR_STRIPES] = Default::default();
        for (g, id) in cp.file_order.iter().enumerate() {
            stripes[file_stripe(id)].push(g);
        }
        for (s, members) in stripes.iter().enumerate() {
            out.push_str(&format!("fstripe {s} {}\n", members.len()));
            for &g in members {
                out.push_str(&format!("{g} "));
                push_hex(&mut out, &cp.file_order[g]);
            }
        }
        match &cp.fig3_order {
            None => out.push_str("fig3 -\n"),
            Some(order) => {
                out.push_str(&format!("fig3 {}\n", order.len()));
                for id in order {
                    push_hex(&mut out, id);
                }
            }
        }
        out.push_str("end\n");
        out
    }

    #[test]
    fn v2_sidecar_still_decodes() {
        let cp = sample();
        assert_eq!(Checkpoint::decode(&encode_v2(&cp)).unwrap(), cp);
        let without_fig3 = Checkpoint {
            fig3_order: None,
            ..sample()
        };
        assert_eq!(
            Checkpoint::decode(&encode_v2(&without_fig3)).unwrap(),
            without_fig3
        );
    }

    #[test]
    fn v3_striping_is_canonical_and_lossless() {
        // Exercise every client and file stripe with interleaved orders.
        let cp = Checkpoint {
            client_order: (0..64).map(|i| i * 37 % 256).collect(),
            file_order: (0..64)
                .map(|i| FileId([(i * 23 % 256) as u8; 16]))
                .collect(),
            ..sample()
        };
        let text = cp.encode();
        assert!(text.starts_with("etwckpt 3\n"));
        // All sixteen stripe headers of each family appear, in order.
        for s in 0..16 {
            assert!(text.contains(&format!("\ncstripe {s} ")));
            assert!(text.contains(&format!("\nfstripe {s} ")));
        }
        assert_eq!(Checkpoint::decode(&text).unwrap(), cp);
    }

    #[test]
    fn v3_sidecar_contains_no_cleartext_ids() {
        // Distinctive id values: the sealed sidecar must not contain
        // their decimal or hex spellings anywhere.
        let cp = Checkpoint {
            client_order: vec![0xDEAD_BEEF, 0xBAD_CAFE, 41_414_141],
            file_order: vec![FileId(*b"\xfe\xedsixteenbytes!\x99"), FileId([0xA7; 16])],
            fig3_order: Some(vec![FileId([0x5C; 16])]),
            ..sample()
        };
        let text = cp.encode();
        for raw in [0xDEAD_BEEFu32, 0xBAD_CAFE, 41_414_141] {
            assert!(
                !text.contains(&format!(" {raw}\n")),
                "cleartext clientID {raw} leaked into sidecar"
            );
        }
        for id in cp.file_order.iter().chain(cp.fig3_order.iter().flatten()) {
            let mut hex = String::new();
            push_hex(&mut hex, id);
            assert!(
                !text.contains(hex.trim_end()),
                "cleartext fileID {id} leaked into sidecar"
            );
        }
        // Still loss-free.
        assert_eq!(Checkpoint::decode(&text).unwrap(), cp);
    }

    #[test]
    fn v3_rejects_duplicate_or_missing_orders() {
        let cp = sample();
        let text = cp.encode();
        // Re-keying a stripe entry to an already-filled global order (or
        // one whose unsealed id lands in the wrong stripe) must be
        // caught, not silently overwrite. Flipping the order digit
        // changes the keystream position, so the unsealed id is garbage
        // for that stripe with overwhelming probability.
        let key = cp.seal_key();
        let sealed0 = format!("0 {}\n", seal32(key, 0, cp.client_order[0]));
        let dup = text.replacen(
            &sealed0,
            &format!("1 {}\n", seal32(key, 0, cp.client_order[0])),
            1,
        );
        assert!(Checkpoint::decode(&dup).is_err());
        // A stripe claiming fewer members than the header count leaves a
        // slot unassigned.
        let short = text.replacen("clients 4\n", "clients 5\n", 1);
        assert!(Checkpoint::decode(&short).is_err());
    }

    #[test]
    fn atomic_write_read_round_trip() {
        let dir = std::env::temp_dir().join("etw-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.etwckpt");
        let cp = sample();
        cp.write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::read(&path).unwrap(), cp);
        // Overwrite with a later checkpoint: reader sees the new one.
        let later = Checkpoint {
            records: 9_999,
            ..sample()
        };
        later.write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::read(&path).unwrap(), later);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
