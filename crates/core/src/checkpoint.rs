//! Resume checkpoints: a consistent cut of the campaign's sequential
//! state, serialized to a sidecar file next to the dataset.
//!
//! The campaign is a deterministic function of its seed, so a checkpoint
//! does not need to freeze the traffic generator or the decode workers —
//! replaying the frame stream from the start reproduces them exactly.
//! What *cannot* be replayed cheaply is re-writing the dataset, so the
//! checkpoint records everything needed to continue the output stream
//! byte-for-byte:
//!
//! * the anonymiser's appearance orders (clientIDs, fileIDs, and the
//!   optional Fig. 3 tracker) — its entire state, in replayable form;
//! * the count of records already written, so the resumed sink skips
//!   exactly that many messages;
//! * the dataset writer's byte offset, so the tail a crash left behind
//!   (possibly torn) is truncated before appending;
//! * the next checkpoint boundary, so a resumed run cuts the very same
//!   checkpoints an uninterrupted run would.
//!
//! The sidecar is a versioned line-oriented text format, written
//! atomically (temp file + rename) with a trailing `end` marker so a
//! torn write is detected, never silently half-loaded.
//!
//! Two versions exist. Version 1 (PR 4 and earlier) stores each
//! appearance order as one flat list of ids, the global order implicit
//! in line position. Version 2 mirrors the sharded anonymiser: ids are
//! grouped into sixteen canonical stripes (clientIDs by `raw & 15`,
//! fileIDs by `id.byte(0) & 15` — fixed stripe keys, deliberately
//! independent of the run's shard count and byte-pair selector so a
//! sidecar written at one configuration restores at any other), each
//! entry carrying its explicit global order. Both versions decode to the
//! same [`Checkpoint`]; encoding always writes version 2.

use crate::pipeline::PipelineCheckpoint;
use etw_edonkey::ids::FileId;
use std::io::Write;
use std::path::Path;

/// A campaign checkpoint: [`PipelineCheckpoint`] plus the dataset writer
/// offset and the identity of the run it belongs to.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Campaign seed, as a guard against resuming the wrong run.
    pub seed: u64,
    /// Timestamp of the last message consumed before the cut, µs.
    pub virtual_us: u64,
    /// Boundary the next checkpoint will be cut at, µs.
    pub next_checkpoint_us: u64,
    /// Records written so far (== messages consumed).
    pub records: u64,
    /// Dataset bytes written so far (header included).
    pub writer_bytes: u64,
    /// clientID appearance order.
    pub client_order: Vec<u32>,
    /// fileID appearance order.
    pub file_order: Vec<FileId>,
    /// Fig. 3 FIRST_TWO tracker appearance order, if tracking.
    pub fig3_order: Option<Vec<FileId>>,
}

/// Why a sidecar failed to load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Not an etwckpt file, or an unsupported version.
    BadHeader,
    /// The file ends before its `end` marker — a torn write.
    Truncated,
    /// A line failed to parse.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was expected there.
        expected: &'static str,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::BadHeader => {
                write!(f, "not an etwckpt file (or an unsupported version)")
            }
            CheckpointError::Truncated => {
                write!(f, "checkpoint truncated (missing end marker)")
            }
            CheckpointError::Malformed { line, expected } => {
                write!(f, "checkpoint line {line}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl Checkpoint {
    /// Pairs a pipeline cut with the run identity and writer offset.
    pub fn from_pipeline(seed: u64, cut: PipelineCheckpoint, writer_bytes: u64) -> Self {
        Checkpoint {
            seed,
            virtual_us: cut.virtual_us,
            next_checkpoint_us: cut.next_checkpoint_us,
            records: cut.records,
            writer_bytes,
            client_order: cut.client_order,
            file_order: cut.file_order,
            fig3_order: cut.fig3_order,
        }
    }

    /// Serializes to the sidecar text format (always version 2).
    pub fn encode(&self) -> String {
        let mut out =
            String::with_capacity(96 + self.client_order.len() * 14 + self.file_order.len() * 40);
        out.push_str("etwckpt 2\n");
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("virtual_us {}\n", self.virtual_us));
        out.push_str(&format!("next_checkpoint_us {}\n", self.next_checkpoint_us));
        out.push_str(&format!("records {}\n", self.records));
        out.push_str(&format!("writer_bytes {}\n", self.writer_bytes));

        out.push_str(&format!("clients {}\n", self.client_order.len()));
        let mut stripes: [Vec<usize>; SIDECAR_STRIPES] = Default::default();
        for (g, id) in self.client_order.iter().enumerate() {
            stripes[client_stripe(*id)].push(g);
        }
        for (s, members) in stripes.iter().enumerate() {
            out.push_str(&format!("cstripe {s} {}\n", members.len()));
            for &g in members {
                out.push_str(&format!("{g} {}\n", self.client_order[g]));
            }
        }

        out.push_str(&format!("files {}\n", self.file_order.len()));
        let mut stripes: [Vec<usize>; SIDECAR_STRIPES] = Default::default();
        for (g, id) in self.file_order.iter().enumerate() {
            stripes[file_stripe(id)].push(g);
        }
        for (s, members) in stripes.iter().enumerate() {
            out.push_str(&format!("fstripe {s} {}\n", members.len()));
            for &g in members {
                out.push_str(&format!("{g} "));
                push_hex(&mut out, &self.file_order[g]);
            }
        }

        match &self.fig3_order {
            None => out.push_str("fig3 -\n"),
            Some(order) => {
                out.push_str(&format!("fig3 {}\n", order.len()));
                for id in order {
                    push_hex(&mut out, id);
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses the sidecar text format, either version.
    pub fn decode(s: &str) -> Result<Checkpoint, CheckpointError> {
        let mut lines = s.lines().enumerate();
        let mut next = |expected: &'static str| -> Result<(usize, &str), CheckpointError> {
            match lines.next() {
                Some((i, line)) => Ok((i + 1, line)),
                None => {
                    if expected == "end marker" {
                        Err(CheckpointError::Truncated)
                    } else {
                        Err(CheckpointError::Malformed { line: 0, expected })
                    }
                }
            }
        };
        let (_, header) = next("etwckpt header")?;
        let version = match header {
            "etwckpt 1" => 1,
            "etwckpt 2" => 2,
            _ => return Err(CheckpointError::BadHeader),
        };
        let seed = keyed_u64(next("seed")?, "seed")?;
        let virtual_us = keyed_u64(next("virtual_us")?, "virtual_us")?;
        let next_checkpoint_us = keyed_u64(next("next_checkpoint_us")?, "next_checkpoint_us")?;
        let records = keyed_u64(next("records")?, "records")?;
        let writer_bytes = keyed_u64(next("writer_bytes")?, "writer_bytes")?;

        let n_clients = keyed_u64(next("clients count")?, "clients")? as usize;
        let client_order = if version == 1 {
            // v1: flat list, global order implicit in line position.
            let mut order = Vec::with_capacity(n_clients);
            for _ in 0..n_clients {
                let (line_no, line) = next("clientID line")?;
                let id = line
                    .parse::<u32>()
                    .map_err(|_| CheckpointError::Malformed {
                        line: line_no,
                        expected: "a clientID integer",
                    })?;
                order.push(id);
            }
            order
        } else {
            // v2: sixteen stripes of explicit `<global_order> <id>`
            // pairs; rebuild the flat order and insist every slot is
            // assigned exactly once.
            let mut order = vec![0u32; n_clients];
            let mut filled = vec![false; n_clients];
            for stripe in 0..SIDECAR_STRIPES {
                let (line_no, line) = next("cstripe header")?;
                let k = stripe_header(line, "cstripe", stripe).ok_or({
                    CheckpointError::Malformed {
                        line: line_no,
                        expected: "a cstripe header in canonical order",
                    }
                })?;
                for _ in 0..k {
                    let (line_no, line) = next("client stripe entry")?;
                    let malformed = || CheckpointError::Malformed {
                        line: line_no,
                        expected: "a `<order> <clientID>` pair",
                    };
                    let (g, id) = line.split_once(' ').ok_or_else(malformed)?;
                    let g = g.parse::<usize>().map_err(|_| malformed())?;
                    let id = id.parse::<u32>().map_err(|_| malformed())?;
                    if g >= n_clients || filled[g] || client_stripe(id) != stripe {
                        return Err(malformed());
                    }
                    order[g] = id;
                    filled[g] = true;
                }
            }
            if filled.iter().any(|f| !f) {
                return Err(CheckpointError::Malformed {
                    line: 0,
                    expected: "every client order slot assigned",
                });
            }
            order
        };

        let n_files = keyed_u64(next("files count")?, "files")? as usize;
        let file_order = if version == 1 {
            let mut order = Vec::with_capacity(n_files);
            for _ in 0..n_files {
                order.push(parse_hex(next("fileID line")?)?);
            }
            order
        } else {
            let mut order = vec![FileId([0; 16]); n_files];
            let mut filled = vec![false; n_files];
            for stripe in 0..SIDECAR_STRIPES {
                let (line_no, line) = next("fstripe header")?;
                let k = stripe_header(line, "fstripe", stripe).ok_or({
                    CheckpointError::Malformed {
                        line: line_no,
                        expected: "an fstripe header in canonical order",
                    }
                })?;
                for _ in 0..k {
                    let (line_no, line) = next("file stripe entry")?;
                    let malformed = || CheckpointError::Malformed {
                        line: line_no,
                        expected: "a `<order> <fileID>` pair",
                    };
                    let (g, hex) = line.split_once(' ').ok_or_else(malformed)?;
                    let g = g.parse::<usize>().map_err(|_| malformed())?;
                    let id = parse_hex((line_no, hex))?;
                    if g >= n_files || filled[g] || file_stripe(&id) != stripe {
                        return Err(malformed());
                    }
                    order[g] = id;
                    filled[g] = true;
                }
            }
            if filled.iter().any(|f| !f) {
                return Err(CheckpointError::Malformed {
                    line: 0,
                    expected: "every file order slot assigned",
                });
            }
            order
        };

        let (fig3_line_no, fig3_line) = next("fig3 count")?;
        let fig3_order = match fig3_line.strip_prefix("fig3 ") {
            Some("-") => None,
            Some(count) => {
                let n = count
                    .parse::<usize>()
                    .map_err(|_| CheckpointError::Malformed {
                        line: fig3_line_no,
                        expected: "fig3 count or '-'",
                    })?;
                let mut order = Vec::with_capacity(n);
                for _ in 0..n {
                    order.push(parse_hex(next("fig3 fileID line")?)?);
                }
                Some(order)
            }
            None => {
                return Err(CheckpointError::Malformed {
                    line: fig3_line_no,
                    expected: "fig3 line",
                })
            }
        };

        let (end_line_no, end) = next("end marker")?;
        if end != "end" {
            return Err(CheckpointError::Malformed {
                line: end_line_no,
                expected: "end marker",
            });
        }
        Ok(Checkpoint {
            seed,
            virtual_us,
            next_checkpoint_us,
            records,
            writer_bytes,
            client_order,
            file_order,
            fig3_order,
        })
    }

    /// Writes the sidecar atomically: the bytes land in a temp file in
    /// the same directory, then rename onto `path`. A crash mid-write
    /// leaves the previous checkpoint intact.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.encode().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads a sidecar written by [`Checkpoint::write_atomic`].
    pub fn read(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        Checkpoint::decode(&text)
    }
}

/// Number of canonical sidecar stripes. Fixed at sixteen regardless of
/// the run's `anon_shards`, so any sidecar restores at any shard count.
const SIDECAR_STRIPES: usize = 16;

/// Canonical client stripe: low four id bits (every shard partition for
/// `anon_shards <= 16` is a coarsening of these stripes).
fn client_stripe(id: u32) -> usize {
    (id as usize) & (SIDECAR_STRIPES - 1)
}

/// Canonical file stripe: low four bits of byte 0. Deliberately *not*
/// the run's byte-pair selector — the sidecar doesn't record the
/// selector, so the stripe key must not depend on it.
fn file_stripe(id: &FileId) -> usize {
    (id.byte(0) as usize) & (SIDECAR_STRIPES - 1)
}

/// Parses `"<kind> <stripe> <count>"`, insisting the stripe index equals
/// `expect` (stripes are written in canonical order).
fn stripe_header(line: &str, kind: &str, expect: usize) -> Option<usize> {
    let rest = line.strip_prefix(kind)?.strip_prefix(' ')?;
    let (s, k) = rest.split_once(' ')?;
    if s.parse::<usize>().ok()? != expect {
        return None;
    }
    k.parse::<usize>().ok()
}

fn push_hex(out: &mut String, id: &FileId) {
    for i in 0..16 {
        out.push_str(&format!("{:02x}", id.byte(i)));
    }
    out.push('\n');
}

fn parse_hex((line_no, line): (usize, &str)) -> Result<FileId, CheckpointError> {
    let malformed = CheckpointError::Malformed {
        line: line_no,
        expected: "a 32-hex-digit fileID",
    };
    let bytes = line.as_bytes();
    if bytes.len() != 32 {
        return Err(malformed);
    }
    let mut id = [0u8; 16];
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hex = std::str::from_utf8(pair).map_err(|_| CheckpointError::Malformed {
            line: line_no,
            expected: "a 32-hex-digit fileID",
        })?;
        id[i] = u8::from_str_radix(hex, 16).map_err(|_| CheckpointError::Malformed {
            line: line_no,
            expected: "a 32-hex-digit fileID",
        })?;
    }
    Ok(FileId(id))
}

fn keyed_u64((line_no, line): (usize, &str), key: &'static str) -> Result<u64, CheckpointError> {
    let malformed = || CheckpointError::Malformed {
        line: line_no,
        expected: key,
    };
    let rest = line.strip_prefix(key).ok_or_else(malformed)?;
    rest.trim().parse::<u64>().map_err(|_| malformed())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            seed: 0xED0,
            virtual_us: 123_456_789,
            next_checkpoint_us: 300_000_000,
            records: 4_242,
            writer_bytes: 987_654,
            client_order: vec![7, 0, 65_000, 3],
            file_order: vec![FileId([0xAB; 16]), FileId::of_identity(9)],
            fig3_order: Some(vec![FileId::of_identity(1)]),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let cp = sample();
        assert_eq!(Checkpoint::decode(&cp.encode()).unwrap(), cp);
        let without_fig3 = Checkpoint {
            fig3_order: None,
            ..sample()
        };
        assert_eq!(
            Checkpoint::decode(&without_fig3.encode()).unwrap(),
            without_fig3
        );
    }

    #[test]
    fn truncated_sidecar_rejected() {
        let text = sample().encode();
        // Cut anywhere before the end marker: must never half-load.
        for cut in [10, text.len() / 2, text.len() - 5] {
            let torn = &text[..cut];
            assert!(
                Checkpoint::decode(torn).is_err(),
                "accepted torn sidecar cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_header_rejected() {
        // An unknown future version is a typed error, not a panic or a
        // misparse.
        assert!(matches!(
            Checkpoint::decode("etwckpt 9\nseed 1\n"),
            Err(CheckpointError::BadHeader)
        ));
        assert!(matches!(
            Checkpoint::decode("not a checkpoint\n"),
            Err(CheckpointError::BadHeader)
        ));
        assert!(Checkpoint::decode("").is_err());
    }

    /// Renders `cp` in the flat v1 sidecar layout (what PR 4-era runs
    /// left on disk).
    fn encode_v1(cp: &Checkpoint) -> String {
        let mut out = String::new();
        out.push_str("etwckpt 1\n");
        out.push_str(&format!("seed {}\n", cp.seed));
        out.push_str(&format!("virtual_us {}\n", cp.virtual_us));
        out.push_str(&format!("next_checkpoint_us {}\n", cp.next_checkpoint_us));
        out.push_str(&format!("records {}\n", cp.records));
        out.push_str(&format!("writer_bytes {}\n", cp.writer_bytes));
        out.push_str(&format!("clients {}\n", cp.client_order.len()));
        for id in &cp.client_order {
            out.push_str(&format!("{id}\n"));
        }
        out.push_str(&format!("files {}\n", cp.file_order.len()));
        for id in &cp.file_order {
            push_hex(&mut out, id);
        }
        match &cp.fig3_order {
            None => out.push_str("fig3 -\n"),
            Some(order) => {
                out.push_str(&format!("fig3 {}\n", order.len()));
                for id in order {
                    push_hex(&mut out, id);
                }
            }
        }
        out.push_str("end\n");
        out
    }

    #[test]
    fn v1_sidecar_still_decodes() {
        let cp = sample();
        assert_eq!(Checkpoint::decode(&encode_v1(&cp)).unwrap(), cp);
        let without_fig3 = Checkpoint {
            fig3_order: None,
            ..sample()
        };
        assert_eq!(
            Checkpoint::decode(&encode_v1(&without_fig3)).unwrap(),
            without_fig3
        );
    }

    #[test]
    fn v2_striping_is_canonical_and_lossless() {
        // Exercise every client and file stripe with interleaved orders.
        let cp = Checkpoint {
            client_order: (0..64).map(|i| i * 37 % 256).collect(),
            file_order: (0..64)
                .map(|i| FileId([(i * 23 % 256) as u8; 16]))
                .collect(),
            ..sample()
        };
        let text = cp.encode();
        assert!(text.starts_with("etwckpt 2\n"));
        // All sixteen stripe headers of each family appear, in order.
        for s in 0..16 {
            assert!(text.contains(&format!("\ncstripe {s} ")));
            assert!(text.contains(&format!("\nfstripe {s} ")));
        }
        assert_eq!(Checkpoint::decode(&text).unwrap(), cp);
    }

    #[test]
    fn v2_rejects_duplicate_or_missing_orders() {
        let cp = sample();
        let text = cp.encode();
        // Duplicating a stripe entry's global order must be caught, not
        // silently overwrite.
        let dup = text.replacen("0 7\n", "1 7\n", 1);
        assert!(matches!(
            Checkpoint::decode(&dup),
            Err(CheckpointError::Malformed { .. })
        ));
        // A stripe claiming fewer members than the header count leaves a
        // slot unassigned.
        let short = text.replacen("clients 4\n", "clients 5\n", 1);
        assert!(Checkpoint::decode(&short).is_err());
    }

    #[test]
    fn atomic_write_read_round_trip() {
        let dir = std::env::temp_dir().join("etw-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.etwckpt");
        let cp = sample();
        cp.write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::read(&path).unwrap(), cp);
        // Overwrite with a later checkpoint: reader sees the new one.
        let later = Checkpoint {
            records: 9_999,
            ..sample()
        };
        later.write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::read(&path).unwrap(), later);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
