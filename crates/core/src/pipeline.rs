//! The capture-machine pipeline (paper Fig. 1).
//!
//! ```text
//! frames ──► route by (src,dst,ident) ──► N decode workers ──► reorder ──► anonymise ──► sink
//!            (fragments stay together)     eth/ip/udp +          (seq)       (stateful,
//!                                          two-step eDonkey                  sequential)
//! ```
//!
//! The paper's constraint is that the whole path must run in real time
//! (§2.2: anonymisation "must be done in real-time during the capture").
//! Decoding is stateless per datagram and parallelises across workers;
//! the anonymiser is inherently sequential (order-of-appearance encoding
//! is a running fold), which is precisely why the paper engineered its
//! O(1) data structures. A sequence-number reorder buffer between the
//! two restores deterministic capture order regardless of worker
//! interleaving.

use crate::wirepath::{Direction, Recovered, WireDecoder};
use bytes::Bytes;
use etw_anonymize::fileid::{BucketedArrays, FileIdAnonymizer};
use etw_anonymize::scheme::{AnonRecord, PaperScheme};
use etw_edonkey::decoder::{DecodeOutcome, Decoder, DecoderStats};
use etw_edonkey::ids::ClientId;
use etw_edonkey::messages::Message;
use etw_netsim::clock::VirtualTime;
use etw_netsim::frag::ReassemblyStats;
use etw_telemetry::channel::{metered_bounded, MeteredReceiver, MeteredSender};
use etw_telemetry::{Counter, Gauge, Histogram, Registry};
use std::collections::BTreeMap;

/// One captured ethernet frame with its timestamp.
#[derive(Clone, Debug)]
pub struct TimedFrame {
    /// Capture timestamp.
    pub ts: VirtualTime,
    /// Raw frame bytes.
    pub bytes: Vec<u8>,
}

/// Counters accumulated across the pipeline.
#[derive(Clone, Copy, Default, Debug)]
pub struct PipelineStats {
    /// Frames entering the pipeline.
    pub frames: u64,
    /// Frames that were not UDP (TCP and friends).
    pub not_udp: u64,
    /// UDP datagrams on unrelated ports.
    pub other_port: u64,
    /// Link/network-layer parse failures.
    pub parse_errors: u64,
    /// Complete UDP datagrams recovered (after reassembly).
    pub udp_datagrams: u64,
    /// Datagrams that arrived fragmented.
    pub fragmented_datagrams: u64,
    /// eDonkey decoder accounting (two-step decoder).
    pub decoder: DecoderStats,
    /// IP reassembly accounting.
    pub reassembly: ReassemblyStats,
    /// Anonymised records produced.
    pub records: u64,
    /// Queries among the records.
    pub query_records: u64,
    /// Records decoded from client→server datagrams.
    pub to_server: u64,
    /// Records decoded from server→client datagrams.
    pub from_server: u64,
}

/// A decoded message with its envelope, in capture order.
#[derive(Clone, Debug)]
struct DecodedMsg {
    ts: VirtualTime,
    peer: ClientId,
    direction: Direction,
    msg: Message,
}

enum WorkerOut {
    /// Exactly one per input frame.
    Step(u64, Option<DecodedMsg>),
}

/// Runs the full pipeline over `frames`, invoking `on_record` for every
/// anonymised record in deterministic capture order. Returns the final
/// statistics, the anonymisation scheme (with its accumulated state) and
/// the optional FIRST_TWO-bytes fileID store used for Fig. 3.
pub fn run_capture_pipeline<I>(
    frames: I,
    n_workers: usize,
    scheme: PaperScheme,
    fig3: Option<BucketedArrays>,
    on_record: impl FnMut(AnonRecord),
) -> (PipelineStats, PaperScheme, Option<BucketedArrays>)
where
    I: Iterator<Item = TimedFrame> + Send,
{
    run_capture_pipeline_observed(
        frames,
        n_workers,
        scheme,
        fig3,
        &Registry::disabled(),
        on_record,
    )
}

/// Per-thread handles for the decode stage.
#[derive(Clone)]
struct DecodeTelemetry {
    frames: Counter,
    service_ns: Histogram,
}

/// Handles for the sequential sink stage (reorder + anonymise).
struct SinkTelemetry {
    reorder_depth: Gauge,
    reorder_depth_hwm: Gauge,
    anonymize_ns: Histogram,
    records: Counter,
    queries: Counter,
    to_server: Counter,
    from_server: Counter,
}

/// [`run_capture_pipeline`] with live telemetry: every stage reports
/// throughput, service time, and queueing into `registry` while the
/// pipeline runs, under these names:
///
/// * `stage.producer.frames_total` — frames routed to workers;
/// * `chan.decode_in.*` / `chan.decode_out.*` — queue depth, messages,
///   and backpressure stalls of the worker input and output channels
///   (input metrics aggregate over all workers);
/// * `stage.decode.frames_total`, `stage.decode.service_ns` — decode
///   worker throughput and per-frame service time;
/// * `stage.reorder.depth`, `stage.reorder.depth_hwm` — reorder-buffer
///   occupancy (a growing value means one worker lags its siblings);
/// * `stage.anonymize.service_ns` — per-record anonymiser service time;
/// * `stage.sink.records_total`, `stage.sink.queries_total`,
///   `stage.sink.to_server_total`, `stage.sink.from_server_total`.
///
/// With a disabled registry every instrument degenerates to a no-op and
/// this is the same pipeline as [`run_capture_pipeline`].
pub fn run_capture_pipeline_observed<I>(
    frames: I,
    n_workers: usize,
    mut scheme: PaperScheme,
    mut fig3: Option<BucketedArrays>,
    registry: &Registry,
    mut on_record: impl FnMut(AnonRecord),
) -> (PipelineStats, PaperScheme, Option<BucketedArrays>)
where
    I: Iterator<Item = TimedFrame> + Send,
{
    assert!(n_workers > 0);
    let mut stats = PipelineStats::default();

    crossbeam::thread::scope(|scope| {
        let (out_tx, out_rx) = metered_bounded::<WorkerOut>(4096, registry, "decode_out");
        let mut worker_txs = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        let decode_telemetry = DecodeTelemetry {
            frames: registry.counter("stage.decode.frames_total"),
            service_ns: registry.histogram("stage.decode.service_ns"),
        };
        for _ in 0..n_workers {
            // All worker input channels share the "decode_in" metrics,
            // so depth reads as frames queued across the stage.
            let (tx, rx) = metered_bounded::<(u64, TimedFrame)>(1024, registry, "decode_in");
            worker_txs.push(tx);
            let out_tx = out_tx.clone();
            let telemetry = decode_telemetry.clone();
            handles.push(scope.spawn(move |_| worker_loop(rx, out_tx, telemetry)));
        }
        drop(out_tx);

        // Producer: route frames so that all fragments of one datagram
        // land on the same worker (reassembly is per-worker state).
        let produced = registry.counter("stage.producer.frames_total");
        let producer = scope.spawn(move |_| {
            let mut seq = 0u64;
            for frame in frames {
                let w = route(&frame.bytes, n_workers);
                worker_txs[w]
                    .send((seq, frame))
                    // etwlint: allow(no-panic-hot-path): a worker hanging
                    // up mid-run means it already panicked; propagating
                    // beats silently dropping the rest of the trace.
                    .expect("worker hung up early");
                produced.inc();
                seq += 1;
            }
            seq
        });

        // Sink: restore sequence order, then anonymise sequentially.
        let sink = SinkTelemetry {
            reorder_depth: registry.gauge("stage.reorder.depth"),
            reorder_depth_hwm: registry.gauge("stage.reorder.depth_hwm"),
            anonymize_ns: registry.histogram("stage.anonymize.service_ns"),
            records: registry.counter("stage.sink.records_total"),
            queries: registry.counter("stage.sink.queries_total"),
            to_server: registry.counter("stage.sink.to_server_total"),
            from_server: registry.counter("stage.sink.from_server_total"),
        };
        let mut reorder: BTreeMap<u64, Option<DecodedMsg>> = BTreeMap::new();
        let mut next_seq = 0u64;
        for WorkerOut::Step(seq, decoded) in out_rx.iter() {
            reorder.insert(seq, decoded);
            while let Some(decoded) = reorder.remove(&next_seq) {
                next_seq += 1;
                let Some(d) = decoded else { continue };
                match d.direction {
                    Direction::ToServer => {
                        stats.to_server += 1;
                        sink.to_server.inc();
                    }
                    Direction::FromServer => {
                        stats.from_server += 1;
                        sink.from_server.inc();
                    }
                }
                if let Some(fig3) = fig3.as_mut() {
                    for id in message_file_ids(&d.msg) {
                        fig3.anonymize(id);
                    }
                }
                let t = sink.anonymize_ns.start();
                let record = scheme.anonymize(d.ts.0, d.peer, &d.msg);
                sink.anonymize_ns.record_since(t);
                stats.records += 1;
                sink.records.inc();
                if record.msg.is_query() {
                    stats.query_records += 1;
                    sink.queries.inc();
                }
                on_record(record);
            }
            let depth = reorder.len() as i64;
            sink.reorder_depth.set(depth);
            if depth > sink.reorder_depth_hwm.get() {
                sink.reorder_depth_hwm.set(depth);
            }
        }
        debug_assert!(reorder.is_empty(), "holes in the sequence space");

        // etwlint: allow(no-panic-hot-path): join() only errs when the
        // joined thread panicked; re-raising is panic propagation, not a
        // new failure mode.
        let total_frames = producer.join().expect("producer panicked");
        stats.frames = total_frames;
        for h in handles {
            // etwlint: allow(no-panic-hot-path): panic propagation, as above
            let w = h.join().expect("worker panicked");
            stats.not_udp += w.not_udp;
            stats.other_port += w.other_port;
            stats.parse_errors += w.parse_errors;
            stats.udp_datagrams += w.udp_datagrams;
            stats.fragmented_datagrams += w.fragmented_datagrams;
            stats.decoder.merge(&w.decoder);
            merge_reassembly(&mut stats.reassembly, &w.reassembly);
        }
    })
    // etwlint: allow(no-panic-hot-path): crossbeam scope() errs only when
    // a child panicked; re-raising is panic propagation.
    .expect("pipeline scope panicked");

    (stats, scheme, fig3)
}

#[derive(Default)]
struct WorkerStats {
    not_udp: u64,
    other_port: u64,
    parse_errors: u64,
    udp_datagrams: u64,
    fragmented_datagrams: u64,
    decoder: DecoderStats,
    reassembly: ReassemblyStats,
}

fn worker_loop(
    rx: MeteredReceiver<(u64, TimedFrame)>,
    out: MeteredSender<WorkerOut>,
    telemetry: DecodeTelemetry,
) -> WorkerStats {
    let mut wire = WireDecoder::new();
    let mut decoder = Decoder::new();
    let mut ws = WorkerStats::default();
    for (seq, frame) in rx.iter() {
        telemetry.frames.inc();
        let t = telemetry.service_ns.start();
        let decoded = match wire.push(frame.ts, &frame.bytes) {
            Recovered::Udp {
                peer,
                direction,
                payload,
                was_fragmented,
            } => {
                ws.udp_datagrams += 1;
                if was_fragmented {
                    ws.fragmented_datagrams += 1;
                }
                decode_payload(&mut decoder, frame.ts, peer, direction, &payload)
            }
            Recovered::FragmentPending => None,
            Recovered::NotUdp => {
                ws.not_udp += 1;
                None
            }
            Recovered::OtherPort => {
                ws.other_port += 1;
                None
            }
            Recovered::ParseError => {
                ws.parse_errors += 1;
                None
            }
        };
        telemetry.service_ns.record_since(t);
        if out.send(WorkerOut::Step(seq, decoded)).is_err() {
            break;
        }
    }
    ws.decoder = decoder.stats();
    ws.reassembly = wire.reassembly_stats();
    ws
}

fn decode_payload(
    decoder: &mut Decoder,
    ts: VirtualTime,
    peer: ClientId,
    direction: Direction,
    payload: &Bytes,
) -> Option<DecodedMsg> {
    match decoder.push(payload) {
        DecodeOutcome::Ok(msg) => Some(DecodedMsg {
            ts,
            peer,
            direction,
            msg,
        }),
        DecodeOutcome::StructurallyInvalid(_)
        | DecodeOutcome::DecodeFailed(_)
        | DecodeOutcome::NotEdonkey => None,
    }
}

/// Routing key: hash of (src, dst, ident) straight out of the IP header
/// bytes, so fragments of one datagram always share a worker. Frames too
/// short to carry an IP header all go to worker 0 (they will be counted
/// as parse errors there).
fn route(frame: &[u8], n_workers: usize) -> usize {
    if frame.len() < 34 {
        return 0;
    }
    // Ethernet header is 14 bytes; IPv4: ident at +4, src at +12, dst at +16.
    let ip = &frame[14..];
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for &b in ip[4..6].iter().chain(&ip[12..20]) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % n_workers as u64) as usize
}

fn merge_reassembly(a: &mut ReassemblyStats, b: &ReassemblyStats) {
    a.whole += b.whole;
    a.fragments += b.fragments;
    a.reassembled += b.reassembled;
    a.timed_out += b.timed_out;
    a.duplicates += b.duplicates;
}

/// All fileIDs referenced by a message (for the Fig. 3 tracker).
fn message_file_ids(msg: &Message) -> Vec<&etw_edonkey::ids::FileId> {
    match msg {
        Message::GetSources { file_ids } => file_ids.iter().collect(),
        Message::FoundSources { file_id, .. } => vec![file_id],
        Message::SearchResponse { results } => results.iter().map(|e| &e.file_id).collect(),
        Message::OfferFiles { files } => files.iter().map(|e| &e.file_id).collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wirepath::{encapsulate, tcp_noise_frame, Direction};
    use etw_anonymize::fileid::ByteSelector;
    use etw_edonkey::ids::FileId;

    fn frames_for(msgs: &[(u32, Message)]) -> Vec<TimedFrame> {
        let mut out = Vec::new();
        for (i, (client, msg)) in msgs.iter().enumerate() {
            for f in encapsulate(
                msg.encode(),
                ClientId(*client),
                4672,
                Direction::ToServer,
                i as u16,
                1500,
            ) {
                out.push(TimedFrame {
                    ts: VirtualTime::from_secs(i as u64),
                    bytes: f.to_bytes(),
                });
            }
        }
        out
    }

    fn run(frames: Vec<TimedFrame>, workers: usize) -> (PipelineStats, Vec<AnonRecord>) {
        let mut records = Vec::new();
        let (stats, _, _) = run_capture_pipeline(
            frames.into_iter(),
            workers,
            PaperScheme::paper(16),
            None,
            |r| records.push(r),
        );
        (stats, records)
    }

    #[test]
    fn single_message_flows_through() {
        let frames = frames_for(&[(100, Message::StatusRequest { challenge: 1 })]);
        let (stats, records) = run(frames, 2);
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.udp_datagrams, 1);
        assert_eq!(stats.decoder.decoded, 1);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].peer, 0);
    }

    #[test]
    fn order_is_deterministic_across_worker_counts() {
        let msgs: Vec<(u32, Message)> = (0..200)
            .map(|i| {
                (
                    (i % 37) as u32,
                    Message::GetSources {
                        file_ids: vec![FileId::of_identity(i as u64 % 13)],
                    },
                )
            })
            .collect();
        let (_, r1) = run(frames_for(&msgs), 1);
        let (_, r4) = run(frames_for(&msgs), 4);
        assert_eq!(r1.len(), 200);
        assert_eq!(r1, r4, "worker count changed anonymised output");
    }

    #[test]
    fn fragmented_announcements_survive_parallel_decode() {
        // Large OfferFiles messages fragment; routing must keep the
        // fragments on one worker.
        use etw_edonkey::messages::FileEntry;
        use etw_edonkey::tags::{special, Tag, TagList};
        let files: Vec<FileEntry> = (0..60u8)
            .map(|i| FileEntry {
                file_id: FileId([i; 16]),
                client_id: ClientId(55),
                port: 4662,
                tags: TagList(vec![
                    Tag::str(special::FILENAME, format!("some file name {i}.mp3")),
                    Tag::u32(special::FILESIZE, 4_000_000),
                ]),
            })
            .collect();
        let msgs: Vec<(u32, Message)> = (0..40)
            .map(|i| {
                (
                    i as u32,
                    Message::OfferFiles {
                        files: files.clone(),
                    },
                )
            })
            .collect();
        let frames = frames_for(&msgs);
        assert!(frames.len() > 80, "expected fragmentation");
        let (stats, records) = run(frames, 4);
        assert_eq!(stats.decoder.decoded, 40);
        assert_eq!(records.len(), 40);
        assert_eq!(stats.reassembly.reassembled, 40);
        assert_eq!(stats.fragmented_datagrams, 40);
    }

    #[test]
    fn noise_is_classified_not_decoded() {
        let mut frames = frames_for(&[(1, Message::GetServerList)]);
        frames.push(TimedFrame {
            ts: VirtualTime::ZERO,
            bytes: tcp_noise_frame(9, 10, 50).to_bytes(),
        });
        frames.push(TimedFrame {
            ts: VirtualTime::ZERO,
            bytes: vec![0xff; 10],
        });
        let (stats, records) = run(frames, 2);
        assert_eq!(stats.frames, 3);
        assert_eq!(stats.not_udp, 1);
        assert_eq!(stats.parse_errors, 1);
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn fig3_tracker_sees_file_ids() {
        let frames = frames_for(&[
            (
                1,
                Message::GetSources {
                    file_ids: vec![FileId::forged(0, [0x00, 0x00])],
                },
            ),
            (
                2,
                Message::GetSources {
                    file_ids: vec![FileId::forged(1, [0x00, 0x00])],
                },
            ),
        ]);
        let (_, _, fig3) = run_capture_pipeline(
            frames.into_iter(),
            2,
            PaperScheme::paper(16),
            Some(BucketedArrays::new(ByteSelector::FIRST_TWO)),
            |_| {},
        );
        let fig3 = fig3.unwrap();
        assert_eq!(fig3.distinct(), 2);
        assert_eq!(fig3.bucket_sizes()[0], 2);
    }

    #[test]
    fn empty_input() {
        let (stats, records) = run(Vec::new(), 3);
        assert_eq!(stats.frames, 0);
        assert!(records.is_empty());
    }

    #[test]
    fn observed_pipeline_reports_consistent_stage_metrics() {
        let msgs: Vec<(u32, Message)> = (0..50)
            .map(|i| {
                (
                    i as u32,
                    Message::StatusRequest {
                        challenge: i as u32,
                    },
                )
            })
            .collect();
        let frames = frames_for(&msgs);
        let registry = Registry::new();
        let mut records = Vec::new();
        let (stats, _, _) = run_capture_pipeline_observed(
            frames.into_iter(),
            2,
            PaperScheme::paper(16),
            None,
            &registry,
            |r| records.push(r),
        );
        let snap = registry.snapshot();
        // Every frame is seen once per stage.
        assert_eq!(snap.counter("stage.producer.frames_total"), stats.frames);
        assert_eq!(snap.counter("chan.decode_in.sent_total"), stats.frames);
        assert_eq!(snap.counter("chan.decode_out.sent_total"), stats.frames);
        assert_eq!(snap.counter("stage.decode.frames_total"), stats.frames);
        assert_eq!(
            snap.histogram("stage.decode.service_ns").unwrap().count,
            stats.frames
        );
        // Sink accounting matches the pipeline stats, direction included.
        assert_eq!(snap.counter("stage.sink.records_total"), stats.records);
        assert_eq!(
            snap.counter("stage.sink.to_server_total")
                + snap.counter("stage.sink.from_server_total"),
            stats.records
        );
        assert_eq!(stats.to_server + stats.from_server, stats.records);
        assert_eq!(
            stats.to_server, stats.records,
            "all test frames are queries"
        );
        assert_eq!(
            snap.histogram("stage.anonymize.service_ns").unwrap().count,
            stats.records
        );
        // Queues fully drained at exit.
        assert_eq!(snap.gauge("stage.reorder.depth"), 0);
        assert_eq!(snap.gauge("chan.decode_in.depth"), 0);
        assert_eq!(snap.gauge("chan.decode_out.depth"), 0);
    }

    #[test]
    fn direction_counting_sees_both_directions() {
        // Hand-build one frame in each direction.
        let mut frames = Vec::new();
        for (dir, client) in [(Direction::ToServer, 7), (Direction::FromServer, 7)] {
            for f in encapsulate(
                Message::StatusRequest { challenge: 1 }.encode(),
                ClientId(client),
                4672,
                dir,
                1,
                1500,
            ) {
                frames.push(TimedFrame {
                    ts: VirtualTime::ZERO,
                    bytes: f.to_bytes(),
                });
            }
        }
        let (stats, records) = run(frames, 1);
        assert_eq!(records.len(), 2);
        assert_eq!(stats.to_server, 1);
        assert_eq!(stats.from_server, 1);
    }
}
