//! The capture-machine pipeline (paper Fig. 1).
//!
//! ```text
//! frames ──► route by (src,dst,ident) ──► N decode workers ──► reorder ──► anonymise ──► sink
//!            (fragments stay together)     eth/ip/udp +          (seq)       (stateful,
//!                                          two-step eDonkey                  sequential)
//! ```
//!
//! The paper's constraint is that the whole path must run in real time
//! (§2.2: anonymisation "must be done in real-time during the capture").
//! Decoding is stateless per datagram and parallelises across workers;
//! the anonymiser is inherently sequential (order-of-appearance encoding
//! is a running fold), which is precisely why the paper engineered its
//! O(1) data structures. A sequence-number reorder buffer between the
//! two restores deterministic capture order regardless of worker
//! interleaving.

use crate::wirepath::{Direction, Recovered, WireDecoder, SERVER_IP};
use bytes::Bytes;
use etw_anonymize::fileid::{BucketedArrays, FileIdAnonymizer, ProbeStats};
use etw_anonymize::scheme::{AnonRecord, PaperScheme};
use etw_anonymize::shard::{build_sharded, collect_ids, shard_count_valid, MAX_SHARDS};
use etw_edonkey::decoder::{DecodeOutcome, Decoder, DecoderStats};
use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::Message;
use etw_faults::{InjectedWorkerCrash, LinkDirection, LinkFrame, WorkerFaultPlan};
use etw_netsim::clock::VirtualTime;
use etw_netsim::frag::ReassemblyStats;
use etw_telemetry::channel::{metered_bounded, MeteredReceiver, MeteredSender};
use etw_telemetry::{Counter, Gauge, Histogram, Registry};
use etw_trace::ring::{FlightRecorder, SpanRing};
use etw_trace::{
    file as trace_file, wall_now_ns, SpanEvent, SpanKind, StageId, StageProfile, StageTimer,
};
use etw_xmlout::encode;
use etw_xmlout::writer::DatasetWriter;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// One captured ethernet frame with its timestamp.
#[derive(Clone, Debug)]
pub struct TimedFrame {
    /// Capture timestamp.
    pub ts: VirtualTime,
    /// Raw frame bytes.
    pub bytes: Vec<u8>,
}

impl LinkFrame for TimedFrame {
    fn ts_us(&self) -> u64 {
        self.ts.0
    }
    fn set_ts_us(&mut self, us: u64) {
        self.ts = VirtualTime(us);
    }
    fn direction(&self) -> LinkDirection {
        // Ethernet header is 14 bytes; IPv4 destination at +16. Frames
        // too short to tell default to the client→server side.
        if self.bytes.len() >= 34 {
            let d = &self.bytes[30..34];
            let dst = u32::from_be_bytes([d[0], d[1], d[2], d[3]]);
            if dst == SERVER_IP {
                return LinkDirection::ToServer;
            }
            return LinkDirection::FromServer;
        }
        LinkDirection::ToServer
    }
    fn wire_len(&self) -> usize {
        self.bytes.len()
    }
    fn truncate_wire(&mut self, keep: usize) {
        self.bytes.truncate(keep);
    }
    fn swap_wire(&mut self, other: &mut Self) {
        std::mem::swap(&mut self.bytes, &mut other.bytes);
    }
}

/// Counters accumulated across the pipeline.
#[derive(Clone, Copy, Default, Debug)]
pub struct PipelineStats {
    /// Frames entering the pipeline.
    pub frames: u64,
    /// Frames that were not UDP (TCP and friends).
    pub not_udp: u64,
    /// UDP datagrams on unrelated ports.
    pub other_port: u64,
    /// Link/network-layer parse failures.
    pub parse_errors: u64,
    /// Complete UDP datagrams recovered (after reassembly).
    pub udp_datagrams: u64,
    /// Datagrams that arrived fragmented.
    pub fragmented_datagrams: u64,
    /// eDonkey decoder accounting (two-step decoder).
    pub decoder: DecoderStats,
    /// IP reassembly accounting.
    pub reassembly: ReassemblyStats,
    /// Anonymised records produced.
    pub records: u64,
    /// Queries among the records.
    pub query_records: u64,
    /// Records decoded from client→server datagrams.
    pub to_server: u64,
    /// Records decoded from server→client datagrams.
    pub from_server: u64,
    /// Frames shed (dropped-and-counted) by the producer under overload
    /// instead of blocking the capture.
    pub shed: u64,
}

/// Where a resumed pipeline picks up: produced by a checkpoint, consumed
/// by [`PipelineOptions::resume`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ResumePoint {
    /// Messages already consumed (and written) by the interrupted run;
    /// the resumed sink replays and skips exactly this many.
    pub records: u64,
    /// Timestamp of the last consumed message, µs.
    pub virtual_us: u64,
    /// The next checkpoint boundary the interrupted run would have cut,
    /// stored so the resumed run cuts the very same boundaries.
    pub next_checkpoint_us: u64,
}

/// Knobs for the fault-tolerant pipeline entry point.
#[derive(Clone, Debug, Default)]
pub struct PipelineOptions {
    /// Cut a checkpoint whenever virtual time crosses a multiple of this
    /// interval (0 = no checkpoints).
    pub checkpoint_interval_us: u64,
    /// Resume from an earlier checkpoint instead of starting fresh.
    pub resume: Option<ResumePoint>,
    /// Worker crash injection and overload shedding schedule.
    pub faults: Option<WorkerFaultPlan>,
    /// Stage-span flight recorder: every stage thread keeps its last N
    /// span events in a lock-free ring and fault events dump the merged
    /// recorder to disk. `None` = tracing off (zero cost).
    pub trace: Option<TraceOptions>,
}

/// Configuration of the stage-span flight recorder
/// ([`PipelineOptions::trace`]).
#[derive(Clone, Debug)]
pub struct TraceOptions {
    /// Span events retained per stage-thread ring. The recorder's memory
    /// is fixed at `lanes × ring_slots × 40` bytes for the whole run.
    pub ring_slots: usize,
    /// Directory receiving `flight_<n>_<reason>_<virtual-µs>.etwtrace`
    /// dumps when a worker crashes, degrades, the producer starts
    /// shedding, or a checkpoint is cut. `None` records in memory only.
    pub dump_dir: Option<PathBuf>,
    /// Cap on dump files per run, so a crash storm cannot fill the disk.
    pub max_dumps: u32,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            ring_slots: 256,
            dump_dir: None,
            max_dumps: 64,
        }
    }
}

// Ring-lane layout of one pipeline run:
// `[producer, decode×W, seq, anon, format, write, assemble, shard×S]`.
// Lanes for stages a particular tail does not spawn stay empty and
// merge away for free at dump time.
fn lane_decode(w: usize) -> usize {
    1 + w
}
fn lane_seq(n_workers: usize) -> usize {
    1 + n_workers
}
fn lane_anon(n_workers: usize) -> usize {
    2 + n_workers
}
fn lane_format(n_workers: usize) -> usize {
    3 + n_workers
}
fn lane_write(n_workers: usize) -> usize {
    4 + n_workers
}
fn lane_assemble(n_workers: usize) -> usize {
    5 + n_workers
}
fn lane_shard(n_workers: usize, s: usize) -> usize {
    6 + n_workers + s
}

/// Per-shard ledger handles for the anonymiser pool, feeding the
/// `etwtool monitor` shard-balance panel. The aggregate `anon.shard.*`
/// counters answer "how much work"; these answer "how evenly": skew in
/// `batches_total`/`busy_ns_total` across shards exposes a hot shard,
/// and `queue_depth` (maintained at the broadcast send and the worker
/// receive) exposes the backlog behind it. Built outside the worker
/// loops so the name formatting never allocates per batch.
struct ShardLaneMetrics {
    batches: Counter,
    client_ids: Counter,
    file_ids: Counter,
    busy_ns: Counter,
    queue_depth: Gauge,
}

fn shard_lane_metrics(registry: &Registry, sindex: usize) -> ShardLaneMetrics {
    ShardLaneMetrics {
        batches: registry.counter(&format!("anon.shard{sindex}.batches_total")),
        client_ids: registry.counter(&format!("anon.shard{sindex}.client_ids_total")),
        file_ids: registry.counter(&format!("anon.shard{sindex}.file_ids_total")),
        busy_ns: registry.counter(&format!("anon.shard{sindex}.busy_ns_total")),
        queue_depth: registry.gauge(&format!("anon.shard{sindex}.queue_depth")),
    }
}

/// Shared flight-recorder state for one pipeline run. Each stage thread
/// writes its own single-writer ring (lane); any thread may trigger a
/// dump, which seqlock-snapshots every lane and writes one `.etwtrace`
/// file without pausing the writers.
struct TraceCtx {
    recorder: FlightRecorder,
    dump_dir: Option<PathBuf>,
    dumps_left: AtomicU32,
    dump_seq: AtomicU32,
    dumps: Counter,
    dumps_dropped: Counter,
}

impl TraceCtx {
    fn new(
        t: &TraceOptions,
        n_workers: usize,
        n_shards: usize,
        registry: &Registry,
    ) -> Arc<TraceCtx> {
        Arc::new(TraceCtx {
            recorder: FlightRecorder::new(6 + n_workers + n_shards, t.ring_slots),
            dump_dir: t.dump_dir.clone(),
            dumps_left: AtomicU32::new(t.max_dumps),
            dump_seq: AtomicU32::new(0),
            dumps: registry.counter("trace.dumps_total"),
            dumps_dropped: registry.counter("trace.dumps_dropped_total"),
        })
    }

    fn lane(self: &Arc<Self>, index: usize, worker: u16) -> TraceLane {
        TraceLane {
            ring: self.recorder.ring(index),
            ctx: Arc::clone(self),
            worker,
        }
    }

    /// Snapshots every lane and writes one flight dump, if the per-run
    /// budget allows and a dump directory was configured.
    fn dump(&self, reason: &str, virtual_us: u64) {
        let Some(dir) = &self.dump_dir else { return };
        let took = self
            .dumps_left
            // ordering: Relaxed — the budget is a plain counter; no data
            // is published through it (rings publish via their seqlocks).
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
        if took.is_err() {
            self.dumps_dropped.inc();
            return;
        }
        // ordering: Relaxed — only uniqueness of the file ordinal matters.
        let n = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let events = self.recorder.dump();
        // etwlint: allow(no-alloc-hot-loop): fault path — dumps are
        // budgeted and never fire on the steady-state path.
        let path = dir.join(format!("flight_{n:03}_{reason}_{virtual_us}.etwtrace"));
        if trace_file::write_file(&path, &events).is_ok() {
            self.dumps.inc();
        }
    }
}

/// One stage thread's handle into the flight recorder.
#[derive(Clone)]
struct TraceLane {
    ctx: Arc<TraceCtx>,
    ring: Arc<SpanRing>,
    worker: u16,
}

/// Per-thread stage instrumentation: the registry-backed
/// [`StageProfile`] (queue-wait vs service histograms, busy/idle
/// counters, utilisation gauge) plus an optional flight-recorder lane.
/// Every method degenerates to a no-op when the registry is disabled
/// and tracing is off.
struct StageTrace {
    stage: StageId,
    profile: StageProfile,
    lane: Option<TraceLane>,
}

impl StageTrace {
    fn new(registry: &Registry, stage: StageId, lane: Option<TraceLane>) -> StageTrace {
        StageTrace {
            stage,
            profile: StageProfile::new(registry, stage),
            lane,
        }
    }

    /// Starts the wait phase; call before blocking on the input queue.
    fn begin(&self) -> StageTimer {
        self.profile.begin()
    }

    /// Wait ended, service begins. Returns the wall clock at service
    /// start for the flight-recorder span (0 when untraced).
    fn service_begin(&self, t: &mut StageTimer) -> u64 {
        self.profile.note_wait(t);
        if self.lane.is_some() {
            wall_now_ns()
        } else {
            0
        }
    }

    /// Service ended: closes the histogram sample and records the span.
    fn service_end(&self, t: &mut StageTimer, arg: u32, virtual_us: u64, wall0: u64, items: u64) {
        self.profile.note_service(t, items);
        if let Some(lane) = &self.lane {
            let end = wall_now_ns();
            lane.ring.record(SpanEvent::new(
                self.stage,
                SpanKind::Service,
                lane.worker,
                arg,
                virtual_us,
                end,
                end.saturating_sub(wall0),
            ));
        }
    }

    /// Records an instantaneous (zero-duration) event in the lane.
    fn event(&self, kind: SpanKind, arg: u32, virtual_us: u64) {
        if let Some(lane) = &self.lane {
            lane.ring.record(SpanEvent::new(
                self.stage,
                kind,
                lane.worker,
                arg,
                virtual_us,
                wall_now_ns(),
                0,
            ));
        }
    }

    /// Records `kind`, then dumps the merged recorder (budgeted).
    fn event_dump(&self, kind: SpanKind, reason: &str, arg: u32, virtual_us: u64) {
        self.event(kind, arg, virtual_us);
        if let Some(lane) = &self.lane {
            lane.ctx.dump(reason, virtual_us);
        }
    }
}

/// Sizing knobs for the batched tail ([`run_capture_pipeline_batched`]).
#[derive(Clone, Copy, Debug)]
pub struct TailConfig {
    /// Records staged per batch before the sequential stage anonymises
    /// them as one unit and hands them to the formatter. Larger batches
    /// amortise channel traffic and counter updates; smaller batches cut
    /// the latency between decode and disk. The default keeps a batch
    /// comfortably inside L2 while leaving per-batch overhead in the
    /// noise.
    pub batch_records: usize,
    /// Capacity, in batches, of the formatter and writer queues. Bounds
    /// how far formatting may run ahead of the disk (and with the
    /// recycling pools, the total number of live batch buffers).
    pub batch_queue: usize,
    /// Anonymiser shards (power of two, `1..=16`). `1` keeps the serial
    /// anonymiser in the sequential stage; `>1` fans each batch out to a
    /// shard pool split along the paper's clientID/fileID partition and
    /// reassembles in sequence (byte-identical output, see
    /// [`etw_anonymize::shard`]).
    pub anon_shards: usize,
}

impl Default for TailConfig {
    fn default() -> Self {
        TailConfig {
            batch_records: 256,
            batch_queue: 4,
            anon_shards: 1,
        }
    }
}

/// A consistent cut of the sequential stage's state, taken between two
/// messages. Everything a resumed run needs to continue the anonymised
/// dataset byte-for-byte.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineCheckpoint {
    /// Timestamp of the last message consumed before the cut, µs.
    pub virtual_us: u64,
    /// Boundary the *next* checkpoint will be cut at.
    pub next_checkpoint_us: u64,
    /// Messages consumed so far (== records written so far).
    pub records: u64,
    /// clientID appearance order of the anonymiser.
    // etwlint: source(raw-id): checkpoint cut carries the raw clientID order
    pub client_order: Vec<u32>,
    /// fileID appearance order of the anonymiser.
    // etwlint: source(raw-id): checkpoint cut carries the raw fileID order
    pub file_order: Vec<FileId>,
    /// Appearance order of the Fig. 3 FIRST_TWO tracker, if enabled.
    // etwlint: source(raw-id): tracker order is raw fileIDs
    pub fig3_order: Option<Vec<FileId>>,
}

/// A decoded message with its envelope, in capture order.
#[derive(Clone, Debug)]
struct DecodedMsg {
    ts: VirtualTime,
    // etwlint: source(raw-id): wire clientID of the peer
    peer: ClientId,
    direction: Direction,
    // etwlint: source(raw-id): decoded message embeds raw ids
    msg: Message,
}

/// One decode step, exactly one per input frame: the frame's sequence
/// number and its decoded message (or `None` for noise, fragments and
/// tombstones). The front channels move these in [`FRAME_BATCH`]-sized
/// batches — per-frame sends would cost a channel round-trip (and, on a
/// loaded host, a context switch) per captured frame, which at capture
/// rates dwarfs the decode work itself.
type WorkerStep = (u64, Option<DecodedMsg>);

/// Frames (producer → workers) and steps (workers → sequencer) per
/// batch on the decode front's channels.
const FRAME_BATCH: usize = 256;

/// Capacity, in batches, of each worker's input queue and of the shared
/// worker-output queue. In frames this bounds roughly the same buffering
/// as the old per-frame caps (1024 and 4096).
const FRAME_QUEUE: usize = 8;

/// Runs the full pipeline over `frames`, invoking `on_record` for every
/// anonymised record in deterministic capture order. Returns the final
/// statistics, the anonymisation scheme (with its accumulated state) and
/// the optional FIRST_TWO-bytes fileID store used for Fig. 3.
pub fn run_capture_pipeline<I>(
    frames: I,
    n_workers: usize,
    scheme: PaperScheme,
    fig3: Option<BucketedArrays>,
    on_record: impl FnMut(AnonRecord),
) -> (PipelineStats, PaperScheme, Option<BucketedArrays>)
where
    I: Iterator<Item = TimedFrame> + Send,
{
    run_capture_pipeline_observed(
        frames,
        n_workers,
        scheme,
        fig3,
        &Registry::disabled(),
        on_record,
    )
}

/// Per-thread handles for the decode stage.
#[derive(Clone)]
struct DecodeTelemetry {
    frames: Counter,
    service_ns: Histogram,
}

/// Handles for the sequential sink stage (reorder + anonymise).
struct SinkTelemetry {
    reorder_depth: Gauge,
    reorder_depth_hwm: Gauge,
    anonymize_ns: Histogram,
    records: Counter,
    queries: Counter,
    to_server: Counter,
    from_server: Counter,
}

/// [`run_capture_pipeline`] with live telemetry: every stage reports
/// throughput, service time, and queueing into `registry` while the
/// pipeline runs, under these names:
///
/// * `stage.producer.frames_total` — frames routed to workers;
/// * `chan.decode_in.*` / `chan.decode_out.*` — queue depth, messages,
///   and backpressure stalls of the worker input and output channels
///   (input metrics aggregate over all workers);
/// * `stage.decode.frames_total`, `stage.decode.service_ns` — decode
///   worker throughput and per-frame service time;
/// * `stage.reorder.depth`, `stage.reorder.depth_hwm` — reorder-buffer
///   occupancy (a growing value means one worker lags its siblings);
/// * `stage.anonymize.service_ns` — per-record anonymiser service time;
/// * `stage.sink.records_total`, `stage.sink.queries_total`,
///   `stage.sink.to_server_total`, `stage.sink.from_server_total`.
///
/// With a disabled registry every instrument degenerates to a no-op and
/// this is the same pipeline as [`run_capture_pipeline`].
pub fn run_capture_pipeline_observed<I>(
    frames: I,
    n_workers: usize,
    scheme: PaperScheme,
    fig3: Option<BucketedArrays>,
    registry: &Registry,
    on_record: impl FnMut(AnonRecord),
) -> (PipelineStats, PaperScheme, Option<BucketedArrays>)
where
    I: Iterator<Item = TimedFrame> + Send,
{
    run_capture_pipeline_with(
        frames,
        n_workers,
        scheme,
        fig3,
        registry,
        &PipelineOptions::default(),
        on_record,
        |_| {},
    )
}

/// [`run_capture_pipeline_observed`] plus the fault-tolerance surface:
///
/// * **Supervised workers** — with [`PipelineOptions::faults`], each
///   decode worker wraps its per-frame work in `catch_unwind`. A crashed
///   worker is restarted in place with fresh decoder state; during an
///   exponential-backoff window it tombstones frames (emits the
///   sequence step with no message) so the sink never stalls, and after
///   `max_restarts` it degrades permanently. All events count under
///   `faults.worker.*`.
/// * **Load shedding** — inside the plan's overload windows the producer
///   drops-and-counts frames (`pipeline.shed_total`) *before* sequence
///   assignment, keeping one in `shed_keep_every`. Shedding upstream of
///   the sequence space keeps the decision deterministic: a resumed run
///   sheds the exact same frames.
/// * **Checkpoints** — with a nonzero interval, the sequential sink cuts
///   a [`PipelineCheckpoint`] the moment it meets the first message at
///   or past the boundary (so the cut state is exactly "everything
///   before this message"), then arms the next boundary past that
///   message's timestamp.
/// * **Resume** — with [`PipelineOptions::resume`], the sink replays the
///   deterministic frame stream but skips the first `records` messages
///   without touching anonymiser state (that state was restored from
///   the checkpoint), then continues exactly where the interrupted run
///   left off.
#[allow(clippy::too_many_arguments)]
pub fn run_capture_pipeline_with<I>(
    frames: I,
    n_workers: usize,
    mut scheme: PaperScheme,
    mut fig3: Option<BucketedArrays>,
    registry: &Registry,
    opts: &PipelineOptions,
    mut on_record: impl FnMut(AnonRecord),
    mut on_checkpoint: impl FnMut(PipelineCheckpoint),
) -> (PipelineStats, PaperScheme, Option<BucketedArrays>)
where
    I: Iterator<Item = TimedFrame> + Send,
{
    assert!(n_workers > 0);
    let mut stats = PipelineStats::default();
    if opts
        .faults
        .as_ref()
        .is_some_and(|plan| plan.crash_every > 0)
    {
        silence_injected_crashes();
    }

    let trace_ctx = opts
        .trace
        .as_ref()
        .map(|t| TraceCtx::new(t, n_workers, 0, registry));
    crossbeam::thread::scope(|scope| {
        let (out_rx, producer, handles) = spawn_front(
            scope,
            frames,
            n_workers,
            registry,
            opts.faults.clone(),
            trace_ctx.clone(),
        );

        // Sink: restore sequence order, then anonymise sequentially.
        let seq_trace = StageTrace::new(
            registry,
            StageId::Reorder,
            trace_ctx.as_ref().map(|c| c.lane(lane_seq(n_workers), 0)),
        );
        let sink = SinkTelemetry {
            reorder_depth: registry.gauge("stage.reorder.depth"),
            reorder_depth_hwm: registry.gauge("stage.reorder.depth_hwm"),
            anonymize_ns: registry.histogram("stage.anonymize.service_ns"),
            records: registry.counter("stage.sink.records_total"),
            queries: registry.counter("stage.sink.queries_total"),
            to_server: registry.counter("stage.sink.to_server_total"),
            from_server: registry.counter("stage.sink.from_server_total"),
        };
        let cp_interval = opts.checkpoint_interval_us;
        let (skip, mut last_ts, mut next_cp) = match &opts.resume {
            Some(r) => (r.records, r.virtual_us, r.next_checkpoint_us),
            None => (0, 0, cp_interval),
        };
        // Messages consumed since *stream* start, skipped ones included,
        // so checkpoint record counts agree between full and resumed runs.
        let mut consumed = 0u64;
        let mut reorder: BTreeMap<u64, Option<DecodedMsg>> = BTreeMap::new();
        let mut next_seq = 0u64;
        let mut pt = seq_trace.begin();
        while let Ok(batch) = out_rx.recv() {
            let w0 = seq_trace.service_begin(&mut pt);
            let items = batch.len() as u64;
            for (seq, decoded) in batch {
                reorder.insert(seq, decoded);
            }
            while let Some(decoded) = reorder.remove(&next_seq) {
                next_seq += 1;
                let Some(d) = decoded else { continue };
                if cp_interval > 0 && d.ts.0 >= next_cp {
                    // Cut *before* consuming this message: the state is
                    // exactly "everything through the previous message".
                    // During the resume skip phase this never fires: the
                    // restored boundary lies past every skipped message.
                    next_cp = (d.ts.0 / cp_interval + 1) * cp_interval;
                    seq_trace.event_dump(
                        SpanKind::Checkpoint,
                        "checkpoint",
                        consumed as u32,
                        last_ts,
                    );
                    on_checkpoint(PipelineCheckpoint {
                        virtual_us: last_ts,
                        next_checkpoint_us: next_cp,
                        records: consumed,
                        client_order: scheme.client_encoder().appearance_order(),
                        file_order: scheme.file_encoder().appearance_order(),
                        fig3_order: fig3.as_ref().map(|f| f.appearance_order()),
                    });
                }
                consumed += 1;
                last_ts = d.ts.0;
                if consumed <= skip {
                    // Resume replay: this message was already written by
                    // the interrupted run and its effects live in the
                    // restored anonymiser state. Touch nothing.
                    continue;
                }
                match d.direction {
                    Direction::ToServer => {
                        stats.to_server += 1;
                        sink.to_server.inc();
                    }
                    Direction::FromServer => {
                        stats.from_server += 1;
                        sink.from_server.inc();
                    }
                }
                if let Some(fig3) = fig3.as_mut() {
                    for id in message_file_ids(&d.msg) {
                        fig3.anonymize(id);
                    }
                }
                let t = sink.anonymize_ns.start();
                let record = scheme.anonymize(d.ts.0, d.peer, &d.msg);
                sink.anonymize_ns.record_since(t);
                stats.records += 1;
                sink.records.inc();
                if record.msg.is_query() {
                    stats.query_records += 1;
                    sink.queries.inc();
                }
                on_record(record);
            }
            let depth = reorder.len() as i64;
            sink.reorder_depth.set(depth);
            if depth > sink.reorder_depth_hwm.get() {
                sink.reorder_depth_hwm.set(depth);
            }
            seq_trace.service_end(&mut pt, depth as u32, last_ts, w0, items);
        }
        debug_assert!(reorder.is_empty(), "holes in the sequence space");

        // etwlint: allow(no-panic-hot-path): join() only errs when the
        // joined thread panicked; re-raising is panic propagation, not a
        // new failure mode.
        let (total_frames, shed_count) = producer.join().expect("producer panicked");
        stats.frames = total_frames;
        stats.shed = shed_count;
        for h in handles {
            // etwlint: allow(no-panic-hot-path): panic propagation, as above
            let w = h.join().expect("worker panicked");
            stats.not_udp += w.not_udp;
            stats.other_port += w.other_port;
            stats.parse_errors += w.parse_errors;
            stats.udp_datagrams += w.udp_datagrams;
            stats.fragmented_datagrams += w.fragmented_datagrams;
            stats.decoder.merge(&w.decoder);
            merge_reassembly(&mut stats.reassembly, &w.reassembly);
        }
    })
    // etwlint: allow(no-panic-hot-path): crossbeam scope() errs only when
    // a child panicked; re-raising is panic propagation.
    .expect("pipeline scope panicked");

    (stats, scheme, fig3)
}

/// A unit of work for the formatter stage, in strict capture order.
enum FormatItem {
    /// A run of anonymised records to render.
    Batch(Vec<AnonRecord>),
    /// A checkpoint cut; forwarded to the writer so it is stamped with
    /// the exact dataset offset of everything enqueued before it.
    Checkpoint(PipelineCheckpoint),
}

/// A unit of work for the writer stage, in strict capture order.
enum WriteItem {
    /// Rendered bytes covering `records` records.
    Bytes {
        /// The batch's rendered bytes (recycled back to the formatter).
        buf: Vec<u8>,
        /// Records the bytes cover, for the writer's record counter.
        records: u64,
    },
    /// A checkpoint reaching its stamping point.
    Checkpoint(PipelineCheckpoint),
}

/// Handles for the formatter stage.
struct FormatTelemetry {
    batches: Counter,
    records: Counter,
    bytes: Counter,
    service_ns: Histogram,
}

/// Handles for the writer stage.
struct WriteTelemetry {
    batches: Counter,
    bytes: Counter,
    flush_ns: Histogram,
}

/// Anonymises the staged run of messages as one batch and hands it to
/// the formatter, recycling record buffers through `rec_pool`. The
/// per-record counter touches of the serial tail are hoisted here into
/// one `add` per batch, and `stage.anonymize.service_ns` is recorded
/// once per batch. `dirs` carries the `(to_server, from_server)` split
/// accumulated while staging. Returns `false` when the tail has shut
/// down (the writer hit an io error); the caller then stops batching
/// but keeps draining the decode stage so the front never stalls.
#[allow(clippy::too_many_arguments)]
fn flush_tail_batch(
    staging: &mut Vec<DecodedMsg>,
    scheme: &mut PaperScheme,
    rec_pool: &crossbeam::channel::Receiver<Vec<AnonRecord>>,
    fmt_tx: &MeteredSender<FormatItem>,
    sink: &SinkTelemetry,
    stats: &mut PipelineStats,
    dirs: &mut (u64, u64),
) -> bool {
    if staging.is_empty() {
        return true;
    }
    let mut recs = rec_pool
        .try_recv()
        .unwrap_or_else(|| Vec::with_capacity(staging.len()));
    let t = sink.anonymize_ns.start();
    let summary =
        scheme.anonymize_batch(staging.iter().map(|d| (d.ts.0, d.peer, &d.msg)), &mut recs);
    sink.anonymize_ns.record_since(t);
    staging.clear();
    stats.records += summary.records;
    stats.query_records += summary.queries;
    sink.records.add(summary.records);
    sink.queries.add(summary.queries);
    sink.to_server.add(dirs.0);
    sink.from_server.add(dirs.1);
    stats.to_server += dirs.0;
    stats.from_server += dirs.1;
    *dirs = (0, 0);
    fmt_tx.send(FormatItem::Batch(recs)).is_ok()
}

/// [`run_capture_pipeline_with`] with the serial tail replaced by the
/// batched, overlapped one. Four stages run concurrently downstream of
/// the decode workers:
///
/// ```text
/// reorder ──► anonymise batches ──► format (zero-alloc encoder, ──► write (flush in
///   (seq)     (stateful, seq)        reusable byte buffers)          sequence + stamp
///                                                                    checkpoints)
/// ```
///
/// * The reorder stage restores capture order from the decode workers'
///   out-of-order completions and forwards ordered runs of decoded
///   messages over the metered `ord_in` channel, so the only work left
///   on the serial drain path is a `BTreeMap` insert/remove.
/// * The anonymiser stage owns the encoder state: it counts consumed
///   messages (checkpoint cuts, resume replay), stages
///   [`TailConfig::batch_records`] messages, anonymises each run with
///   [`PaperScheme::anonymize_batch`] (per-record telemetry hoisted into
///   per-batch aggregates) and sends the batch over the metered
///   `fmt_in` channel.
/// * The formatter renders each batch into a recycled byte buffer with
///   [`encode::encode_batch`] — byte-identical to
///   [`DatasetWriter::write_record`], zero heap allocations per record
///   in steady state — reporting under `stage.format.*`.
/// * The writer flushes completed buffers strictly in sequence through
///   [`DatasetWriter::write_encoded`] (`stage.write.*`), so the output
///   is byte-identical to the serial tail and `.etwckpt` offsets stay
///   valid: a checkpoint cut travels through both queues as a marker
///   and `on_checkpoint` fires on the writer thread with
///   [`DatasetWriter::bytes_written`] at exactly the cut's offset.
///
/// Checkpoint cuts flush the staged run first, so the captured encoder
/// state covers precisely "everything before the boundary message", as
/// in the serial tail. On a writer io error the pipeline drains the
/// decode stage without formatting further and returns the error.
#[allow(clippy::too_many_arguments)]
pub fn run_capture_pipeline_batched<I, W>(
    frames: I,
    n_workers: usize,
    mut scheme: PaperScheme,
    mut fig3: Option<BucketedArrays>,
    registry: &Registry,
    opts: &PipelineOptions,
    tail: TailConfig,
    writer: DatasetWriter<W>,
    on_checkpoint: impl FnMut(PipelineCheckpoint, u64) + Send,
) -> io::Result<(
    PipelineStats,
    PaperScheme,
    Option<BucketedArrays>,
    DatasetWriter<W>,
)>
where
    I: Iterator<Item = TimedFrame> + Send,
    W: Write + Send,
{
    assert!(n_workers > 0);
    assert!(tail.batch_records > 0 && tail.batch_queue > 0);
    assert!(
        shard_count_valid(tail.anon_shards),
        "anon_shards must be a power of two in 1..={MAX_SHARDS}, got {}",
        tail.anon_shards
    );
    if tail.anon_shards > 1 {
        return run_capture_pipeline_sharded(
            frames,
            n_workers,
            scheme,
            fig3,
            registry,
            opts,
            tail,
            writer,
            on_checkpoint,
        );
    }
    let mut stats = PipelineStats::default();
    if opts
        .faults
        .as_ref()
        .is_some_and(|plan| plan.crash_every > 0)
    {
        silence_injected_crashes();
    }

    let trace_ctx = opts
        .trace
        .as_ref()
        .map(|t| TraceCtx::new(t, n_workers, 0, registry));
    let (writer, io_err, scheme, fig3) = crossbeam::thread::scope(|scope| {
        let (out_rx, producer, handles) = spawn_front(
            scope,
            frames,
            n_workers,
            registry,
            opts.faults.clone(),
            trace_ctx.clone(),
        );

        // Tail plumbing: batches flow seq → format → write over metered
        // channels; emptied buffers flow back through unmetered pools so
        // steady state re-uses the same allocations forever. Pool
        // capacity covers every buffer that can be in flight at once
        // (the queues plus one in each stage's hands), so `try_send`
        // back into a pool can only drop a buffer on the error path.
        let pool_cap = tail.batch_queue + 2;
        let (fmt_tx, fmt_rx) = metered_bounded::<FormatItem>(tail.batch_queue, registry, "fmt_in");
        let (write_tx, write_rx) =
            metered_bounded::<WriteItem>(tail.batch_queue, registry, "write_in");
        // etwlint: allow(no-unbounded-channel): bounded recycling pool, not a work queue — try_send/try_recv only, never blocks
        let (rec_pool_tx, rec_pool_rx) = crossbeam::channel::bounded::<Vec<AnonRecord>>(pool_cap);
        // etwlint: allow(no-unbounded-channel): bounded recycling pool, as above
        let (buf_pool_tx, buf_pool_rx) = crossbeam::channel::bounded::<Vec<u8>>(pool_cap);
        for _ in 0..pool_cap {
            let _ = rec_pool_tx.try_send(Vec::with_capacity(tail.batch_records));
            let _ = buf_pool_tx.try_send(Vec::with_capacity(tail.batch_records * 64));
        }

        let formatter = spawn_tail_formatter(
            scope,
            registry,
            fmt_rx,
            write_tx,
            rec_pool_tx.clone(),
            buf_pool_rx,
            true,
            trace_ctx
                .as_ref()
                .map(|c| c.lane(lane_format(n_workers), 0)),
        );
        let writer_thread = spawn_tail_writer(
            scope,
            registry,
            write_rx,
            buf_pool_tx,
            writer,
            on_checkpoint,
            trace_ctx.as_ref().map(|c| c.lane(lane_write(n_workers), 0)),
        );

        // Ordered runs flow reorder → anonymiser over `ord_in`; the
        // emptied chunk vectors recycle back through a pool so the
        // serial drain path never allocates in steady state.
        let (ord_tx, ord_rx) =
            metered_bounded::<Vec<DecodedMsg>>(tail.batch_queue, registry, "ord_in");
        // etwlint: allow(no-unbounded-channel): bounded recycling pool, as above
        let (msg_pool_tx, msg_pool_rx) = crossbeam::channel::bounded::<Vec<DecodedMsg>>(pool_cap);
        for _ in 0..pool_cap {
            let _ = msg_pool_tx.try_send(Vec::with_capacity(tail.batch_records));
        }

        // Anonymiser stage: owns the encoder state, the consumed-record
        // count (checkpoint cuts, resume replay) and the staging buffer.
        // Formerly fused with the reorder loop; hoisting it off the
        // serial drain path shortens the batched tail's critical section
        // to the BTreeMap insert/remove (carried ROADMAP item from PR 5).
        let anon_trace = StageTrace::new(
            registry,
            StageId::Anonymize,
            trace_ctx.as_ref().map(|c| c.lane(lane_anon(n_workers), 0)),
        );
        let sink = SinkTelemetry {
            reorder_depth: registry.gauge("stage.reorder.depth"),
            reorder_depth_hwm: registry.gauge("stage.reorder.depth_hwm"),
            anonymize_ns: registry.histogram("stage.anonymize.service_ns"),
            records: registry.counter("stage.sink.records_total"),
            queries: registry.counter("stage.sink.queries_total"),
            to_server: registry.counter("stage.sink.to_server_total"),
            from_server: registry.counter("stage.sink.from_server_total"),
        };
        let cp_interval = opts.checkpoint_interval_us;
        let (skip, resume_ts, resume_cp) = match &opts.resume {
            Some(r) => (r.records, r.virtual_us, r.next_checkpoint_us),
            None => (0, 0, cp_interval),
        };
        let anonymizer = {
            scope.spawn(move |_| {
                let mut stats = PipelineStats::default();
                let mut last_ts = resume_ts;
                let mut next_cp = resume_cp;
                let mut consumed = 0u64;
                let mut staging: Vec<DecodedMsg> = Vec::with_capacity(tail.batch_records);
                let mut dirs = (0u64, 0u64);
                let mut tail_failed = false;
                let mut pt = anon_trace.begin();
                while let Ok(mut chunk) = ord_rx.recv() {
                    let w0 = anon_trace.service_begin(&mut pt);
                    let items = chunk.len() as u64;
                    for d in chunk.drain(..) {
                        if cp_interval > 0 && d.ts.0 >= next_cp {
                            // Cut *before* consuming this message. The
                            // staged run is flushed first so the orders
                            // captured below cover exactly "everything
                            // before the boundary", and the marker rides
                            // the same ordered queues, so the writer
                            // stamps it at exactly that offset.
                            next_cp = (d.ts.0 / cp_interval + 1) * cp_interval;
                            anon_trace.event_dump(
                                SpanKind::Checkpoint,
                                "checkpoint",
                                consumed as u32,
                                last_ts,
                            );
                            if !tail_failed {
                                tail_failed = !flush_tail_batch(
                                    &mut staging,
                                    &mut scheme,
                                    &rec_pool_rx,
                                    &fmt_tx,
                                    &sink,
                                    &mut stats,
                                    &mut dirs,
                                );
                            }
                            if !tail_failed {
                                tail_failed = fmt_tx
                                    .send(FormatItem::Checkpoint(PipelineCheckpoint {
                                        virtual_us: last_ts,
                                        next_checkpoint_us: next_cp,
                                        records: consumed,
                                        client_order: scheme.client_encoder().appearance_order(),
                                        file_order: scheme.file_encoder().appearance_order(),
                                        fig3_order: fig3.as_ref().map(|f| f.appearance_order()),
                                    }))
                                    .is_err();
                            }
                        }
                        consumed += 1;
                        last_ts = d.ts.0;
                        if consumed <= skip {
                            // Resume replay: already written by the
                            // interrupted run; its effects live in the
                            // restored state.
                            continue;
                        }
                        if tail_failed {
                            // Writer is gone: keep consuming so the
                            // reorder stage drains instead of
                            // deadlocking the producer.
                            continue;
                        }
                        match d.direction {
                            Direction::ToServer => dirs.0 += 1,
                            Direction::FromServer => dirs.1 += 1,
                        }
                        if let Some(fig3) = fig3.as_mut() {
                            for id in message_file_ids(&d.msg) {
                                fig3.anonymize(id);
                            }
                        }
                        staging.push(d);
                        if staging.len() >= tail.batch_records {
                            tail_failed = !flush_tail_batch(
                                &mut staging,
                                &mut scheme,
                                &rec_pool_rx,
                                &fmt_tx,
                                &sink,
                                &mut stats,
                                &mut dirs,
                            );
                        }
                    }
                    let _ = msg_pool_tx.try_send(chunk);
                    anon_trace.service_end(&mut pt, staging.len() as u32, last_ts, w0, items);
                }
                if !tail_failed {
                    // Final partial batch.
                    flush_tail_batch(
                        &mut staging,
                        &mut scheme,
                        &rec_pool_rx,
                        &fmt_tx,
                        &sink,
                        &mut stats,
                        &mut dirs,
                    );
                }
                drop(fmt_tx);
                (scheme, fig3, stats)
            })
        };

        // Reorder stage: restore sequence order, forward ordered runs.
        // This loop is the batched tail's only remaining serial section,
        // so it does nothing but the reorder-buffer drain and the chunk
        // hand-off.
        let seq_trace = StageTrace::new(
            registry,
            StageId::Reorder,
            trace_ctx.as_ref().map(|c| c.lane(lane_seq(n_workers), 0)),
        );
        let reorder_depth = registry.gauge("stage.reorder.depth");
        let reorder_depth_hwm = registry.gauge("stage.reorder.depth_hwm");
        let mut reorder: BTreeMap<u64, Option<DecodedMsg>> = BTreeMap::new();
        let mut next_seq = 0u64;
        let mut seen_ts = resume_ts;
        let mut ord_failed = false;
        let mut chunk: Vec<DecodedMsg> = msg_pool_rx
            .try_recv()
            .unwrap_or_else(|| Vec::with_capacity(tail.batch_records));
        let mut pt = seq_trace.begin();
        while let Ok(batch) = out_rx.recv() {
            let w0 = seq_trace.service_begin(&mut pt);
            let items = batch.len() as u64;
            for (seq, decoded) in batch {
                reorder.insert(seq, decoded);
            }
            while let Some(decoded) = reorder.remove(&next_seq) {
                next_seq += 1;
                let Some(d) = decoded else { continue };
                seen_ts = d.ts.0;
                if ord_failed {
                    // Anonymiser is gone (it only exits after `ord_in`
                    // closes or a panic): keep consuming so the decode
                    // front drains instead of deadlocking the producer.
                    continue;
                }
                chunk.push(d);
                if chunk.len() >= tail.batch_records {
                    let full = std::mem::replace(
                        &mut chunk,
                        msg_pool_rx
                            .try_recv()
                            .unwrap_or_else(|| Vec::with_capacity(tail.batch_records)),
                    );
                    ord_failed = ord_tx.send(full).is_err();
                }
            }
            let depth = reorder.len() as i64;
            reorder_depth.set(depth);
            if depth > reorder_depth_hwm.get() {
                reorder_depth_hwm.set(depth);
            }
            seq_trace.service_end(&mut pt, depth as u32, seen_ts, w0, items);
        }
        debug_assert!(reorder.is_empty(), "holes in the sequence space");
        if !ord_failed && !chunk.is_empty() {
            let _ = ord_tx.send(chunk);
        }
        drop(ord_tx);

        // etwlint: allow(no-panic-hot-path): join() only errs when the
        // joined thread panicked; re-raising is panic propagation, not a
        // new failure mode.
        let (scheme, fig3, anon_stats) = anonymizer.join().expect("anonymizer panicked");
        stats.records += anon_stats.records;
        stats.query_records += anon_stats.query_records;
        stats.to_server += anon_stats.to_server;
        stats.from_server += anon_stats.from_server;

        // etwlint: allow(no-panic-hot-path): panic propagation, as above
        formatter.join().expect("formatter panicked");
        // etwlint: allow(no-panic-hot-path): panic propagation, as above
        let (w, io_err) = writer_thread.join().expect("writer panicked");
        // etwlint: allow(no-panic-hot-path): panic propagation, as above
        let (total_frames, shed_count) = producer.join().expect("producer panicked");
        stats.frames = total_frames;
        stats.shed = shed_count;
        for h in handles {
            // etwlint: allow(no-panic-hot-path): panic propagation, as above
            let worker = h.join().expect("worker panicked");
            stats.not_udp += worker.not_udp;
            stats.other_port += worker.other_port;
            stats.parse_errors += worker.parse_errors;
            stats.udp_datagrams += worker.udp_datagrams;
            stats.fragmented_datagrams += worker.fragmented_datagrams;
            stats.decoder.merge(&worker.decoder);
            merge_reassembly(&mut stats.reassembly, &worker.reassembly);
        }
        (w, io_err, scheme, fig3)
    })
    // etwlint: allow(no-panic-hot-path): crossbeam scope() errs only when
    // a child panicked; re-raising is panic propagation.
    .expect("pipeline scope panicked");

    match io_err {
        Some(e) => Err(e),
        None => Ok((stats, scheme, fig3, writer)),
    }
}

/// Spawns the formatter stage: renders record batches into recycled byte
/// buffers with the zero-alloc encoder and forwards them (and checkpoint
/// markers) to the writer in order. With `clear_records` the emptied
/// record vectors go back to the pool cleared (the serial-anonymiser
/// tail); without it they keep their contents, because the sharded
/// assembler overwrites records in place and the stale records *are* its
/// allocation pool.
#[allow(clippy::too_many_arguments)]
fn spawn_tail_formatter<'scope, 'env>(
    scope: &crossbeam::thread::Scope<'scope, 'env>,
    registry: &Registry,
    fmt_rx: MeteredReceiver<FormatItem>,
    write_tx: MeteredSender<WriteItem>,
    rec_pool_back: crossbeam::channel::Sender<Vec<AnonRecord>>,
    buf_pool_rx: crossbeam::channel::Receiver<Vec<u8>>,
    clear_records: bool,
    lane: Option<TraceLane>,
) -> crossbeam::thread::ScopedJoinHandle<'scope, ()> {
    let fmt = FormatTelemetry {
        batches: registry.counter("stage.format.batches_total"),
        records: registry.counter("stage.format.records_total"),
        bytes: registry.counter("stage.format.bytes_total"),
        service_ns: registry.histogram("stage.format.service_ns"),
    };
    let trace = StageTrace::new(registry, StageId::Format, lane);
    scope.spawn(move |_| {
        let mut pt = trace.begin();
        while let Ok(item) = fmt_rx.recv() {
            let w0 = trace.service_begin(&mut pt);
            let ok = match item {
                FormatItem::Batch(mut recs) => {
                    let mut buf = buf_pool_rx
                        .try_recv()
                        .unwrap_or_else(|| Vec::with_capacity(recs.len() * 64));
                    buf.clear();
                    let t = fmt.service_ns.start();
                    encode::encode_batch(&mut buf, &recs);
                    fmt.service_ns.record_since(t);
                    fmt.batches.inc();
                    fmt.records.add(recs.len() as u64);
                    fmt.bytes.add(buf.len() as u64);
                    let records = recs.len() as u64;
                    let last_us = recs.last().map_or(0, |r| r.ts_us);
                    if clear_records {
                        recs.clear();
                    }
                    let _ = rec_pool_back.try_send(recs);
                    trace.service_end(&mut pt, records as u32, last_us, w0, records);
                    write_tx.send(WriteItem::Bytes { buf, records }).is_ok()
                }
                FormatItem::Checkpoint(cp) => {
                    trace.service_end(&mut pt, cp.records as u32, cp.virtual_us, w0, 0);
                    write_tx.send(WriteItem::Checkpoint(cp)).is_ok()
                }
            };
            if !ok {
                break;
            }
        }
    })
}

/// Spawns the writer stage: flushes buffers in sequence, stamps
/// checkpoints with the exact dataset offset, recycles buffers. On an io
/// error it keeps draining (without writing) so upstream never stalls.
#[allow(clippy::too_many_arguments)]
fn spawn_tail_writer<'scope, 'env, W, F>(
    scope: &crossbeam::thread::Scope<'scope, 'env>,
    registry: &Registry,
    write_rx: MeteredReceiver<WriteItem>,
    buf_pool_tx: crossbeam::channel::Sender<Vec<u8>>,
    writer: DatasetWriter<W>,
    mut on_checkpoint: F,
    lane: Option<TraceLane>,
) -> crossbeam::thread::ScopedJoinHandle<'scope, (DatasetWriter<W>, Option<io::Error>)>
where
    W: Write + Send + 'scope,
    F: FnMut(PipelineCheckpoint, u64) + Send + 'scope,
{
    let wt = WriteTelemetry {
        batches: registry.counter("stage.write.batches_total"),
        bytes: registry.counter("stage.write.bytes_total"),
        flush_ns: registry.histogram("stage.write.flush_ns"),
    };
    let trace = StageTrace::new(registry, StageId::Write, lane);
    scope.spawn(move |_| {
        let mut w = writer;
        let mut io_err: Option<io::Error> = None;
        let mut pt = trace.begin();
        while let Ok(item) = write_rx.recv() {
            let w0 = trace.service_begin(&mut pt);
            match item {
                WriteItem::Bytes { mut buf, records } => {
                    if io_err.is_none() {
                        let t = wt.flush_ns.start();
                        match w.write_encoded(&buf, records) {
                            Ok(()) => {
                                wt.flush_ns.record_since(t);
                                wt.batches.inc();
                                wt.bytes.add(buf.len() as u64);
                            }
                            Err(e) => io_err = Some(e),
                        }
                    }
                    buf.clear();
                    let _ = buf_pool_tx.try_send(buf);
                    trace.service_end(&mut pt, records as u32, 0, w0, records);
                }
                WriteItem::Checkpoint(cp) => {
                    if io_err.is_none() {
                        let virtual_us = cp.virtual_us;
                        let records = cp.records;
                        on_checkpoint(cp, w.bytes_written());
                        trace.service_end(&mut pt, records as u32, virtual_us, w0, 0);
                    }
                }
            }
        }
        (w, io_err)
    })
}

/// One staged run of messages travelling to the shard pool and the
/// assembler. The flat id arrays are the visit pass's output: every
/// clientID/fileID the anonymiser will touch, in encoder order, so the
/// shards scan plain arrays instead of message trees. Shared by `Arc`:
/// each shard reads it, the assembler reads it last and reclaims the
/// buffers.
struct ShardBatch {
    /// Batch sequence number (assembler matches shard results to it).
    seq: u64,
    msgs: Vec<DecodedMsg>,
    client_ids: Vec<u32>,
    file_ids: Vec<FileId>,
}

/// Sparse resolutions from one shard for one batch: `(index into the
/// batch's id array, striped provisional)`.
struct ShardResult {
    seq: u64,
    clients: Vec<(u32, u32)>,
    files: Vec<(u32, u64)>,
}

/// A recycled pair of resolution vectors (clients, files) from the
/// shard workers' shared free-list.
type ResVecs = (Vec<(u32, u32)>, Vec<(u32, u64)>);
/// The shard workers' shared resolution-vector free-list.
type ResPool = std::sync::Arc<std::sync::Mutex<Vec<ResVecs>>>;

/// Work for the assembler, in strict capture order.
enum AsmItem {
    Batch(std::sync::Arc<ShardBatch>),
    /// A checkpoint cut; the assembler owns the appearance orders, so it
    /// fills them in and forwards the completed checkpoint down the
    /// ordered queues.
    Checkpoint {
        virtual_us: u64,
        next_checkpoint_us: u64,
        records: u64,
        fig3_order: Option<Vec<FileId>>,
    },
}

/// The sharded tail (`TailConfig::anon_shards > 1`): the sequential
/// stage runs the visit pass per staged batch and fans the batch out to
/// `anon_shards` shard workers (clientIDs split by low id bits, fileIDs
/// by low bucket-index bits, see [`etw_anonymize::shard`]); the
/// assembler gathers every shard's resolutions in batch order, remaps
/// striped provisionals to global appearance orders, constructs records
/// with allocation reuse, and feeds the same formatter/writer stages as
/// the serial-anonymiser tail. Output and checkpoints are byte-identical
/// to [`run_capture_pipeline_batched`] at `anon_shards = 1`.
///
/// ```text
///                      ┌► shard 0 ─┐
/// reorder ─► visit ────┼► ...      ├─► assemble ─► format ─► write
///   (seq)    (ids)     └► shard S ─┘   (remap +
///                 └────────────────────► construct, seq)
/// ```
#[allow(clippy::too_many_arguments)]
fn run_capture_pipeline_sharded<I, W>(
    frames: I,
    n_workers: usize,
    scheme: PaperScheme,
    mut fig3: Option<BucketedArrays>,
    registry: &Registry,
    opts: &PipelineOptions,
    tail: TailConfig,
    writer: DatasetWriter<W>,
    on_checkpoint: impl FnMut(PipelineCheckpoint, u64) + Send,
) -> io::Result<(
    PipelineStats,
    PaperScheme,
    Option<BucketedArrays>,
    DatasetWriter<W>,
)>
where
    I: Iterator<Item = TimedFrame> + Send,
    W: Write + Send,
{
    let n_shards = tail.anon_shards;
    let width_bits = scheme.client_encoder().width_bits();
    let selector = scheme.file_encoder().selector();
    // Split the (possibly checkpoint-restored) serial encoder state into
    // shard + assembler state by replaying the appearance orders.
    let client_order = scheme.client_encoder().appearance_order();
    let file_order = scheme.file_encoder().appearance_order();
    let (shard_sets, assembler) =
        build_sharded(width_bits, selector, n_shards, &client_order, &file_order);
    drop(scheme);

    let mut stats = PipelineStats::default();
    if opts
        .faults
        .as_ref()
        .is_some_and(|plan| plan.crash_every > 0)
    {
        silence_injected_crashes();
    }
    let trace_ctx = opts
        .trace
        .as_ref()
        .map(|t| TraceCtx::new(t, n_workers, n_shards, registry));
    let (writer, io_err, asm) = crossbeam::thread::scope(|scope| {
        let (out_rx, producer, handles) = spawn_front(
            scope,
            frames,
            n_workers,
            registry,
            opts.faults.clone(),
            trace_ctx.clone(),
        );

        // Tail plumbing. Metered, bounded work queues; unmetered bounded
        // pool channels flow emptied buffers back upstream so steady
        // state reuses the same allocations forever.
        let pool_cap = tail.batch_queue + 2;
        let (fmt_tx, fmt_rx) = metered_bounded::<FormatItem>(tail.batch_queue, registry, "fmt_in");
        let (write_tx, write_rx) =
            metered_bounded::<WriteItem>(tail.batch_queue, registry, "write_in");
        // etwlint: allow(no-unbounded-channel): bounded recycling pool, not a work queue — try_send/try_recv only, never blocks
        let (rec_pool_tx, rec_pool_rx) = crossbeam::channel::bounded::<Vec<AnonRecord>>(pool_cap);
        // etwlint: allow(no-unbounded-channel): bounded recycling pool, as above
        let (buf_pool_tx, buf_pool_rx) = crossbeam::channel::bounded::<Vec<u8>>(pool_cap);
        // etwlint: allow(no-unbounded-channel): bounded recycling pool, as above
        let (batch_pool_tx, batch_pool_rx) = crossbeam::channel::bounded::<ShardBatch>(pool_cap);
        // The resolution-vector pool is shared by all shard workers, so
        // it is a mutexed free-list rather than a channel (the channel
        // stub is single-consumer). Uncontended in steady state: shards
        // pop, the assembler pushes, each holds the lock for two Vec
        // moves.
        let res_pool: ResPool =
            std::sync::Arc::new(std::sync::Mutex::new(Vec::with_capacity(2 * n_shards + 2)));
        for _ in 0..pool_cap {
            let _ = rec_pool_tx.try_send(Vec::with_capacity(tail.batch_records));
            let _ = buf_pool_tx.try_send(Vec::with_capacity(tail.batch_records * 64));
        }

        let formatter = spawn_tail_formatter(
            scope,
            registry,
            fmt_rx,
            write_tx,
            rec_pool_tx.clone(),
            buf_pool_rx,
            false,
            trace_ctx
                .as_ref()
                .map(|c| c.lane(lane_format(n_workers), 0)),
        );
        let writer_thread = spawn_tail_writer(
            scope,
            registry,
            write_rx,
            buf_pool_tx,
            writer,
            on_checkpoint,
            trace_ctx.as_ref().map(|c| c.lane(lane_write(n_workers), 0)),
        );

        // Shard pool: every worker owns a disjoint slice of both id
        // spaces and resolves each batch independently — no shared
        // state, no locks. All input channels share the "shard_in"
        // metrics (like "decode_in"); results funnel into "shard_out".
        let (shard_out_tx, shard_out_rx) =
            metered_bounded::<ShardResult>(2 * n_shards, registry, "shard_out");
        let shard_batches = registry.counter("anon.shard.batches_total");
        let shard_cids = registry.counter("anon.shard.client_ids_total");
        let shard_fids = registry.counter("anon.shard.file_ids_total");
        let shard_ns = registry.histogram("stage.shard.service_ns");
        let mut shard_txs = Vec::with_capacity(n_shards);
        let mut shard_handles = Vec::with_capacity(n_shards);
        for (sindex, mut set) in shard_sets.into_iter().enumerate() {
            let (tx, rx) = metered_bounded::<std::sync::Arc<ShardBatch>>(
                tail.batch_queue,
                registry,
                "shard_in",
            );
            let lane_metrics = shard_lane_metrics(registry, sindex);
            shard_txs.push((tx, lane_metrics.queue_depth.clone()));
            let out = shard_out_tx.clone();
            let res_pool = res_pool.clone();
            let (batches, cids, fids, ns) = (
                shard_batches.clone(),
                shard_cids.clone(),
                shard_fids.clone(),
                shard_ns.clone(),
            );
            let trace = StageTrace::new(
                registry,
                StageId::Shard,
                trace_ctx
                    .as_ref()
                    .map(|c| c.lane(lane_shard(n_workers, sindex), sindex as u16)),
            );
            shard_handles.push(scope.spawn(move |_| {
                let mut pt = trace.begin();
                while let Ok(batch) = rx.recv() {
                    lane_metrics.queue_depth.add(-1);
                    let w0 = trace.service_begin(&mut pt);
                    let (mut cres, mut fres) = res_pool
                        .lock()
                        // etwlint: allow(no-panic-hot-path): lock poisoning implies another pipeline thread already panicked
                        .expect("res pool poisoned")
                        .pop()
                        .unwrap_or_default();
                    let t = ns.start();
                    set.resolve_batch(&batch.client_ids, &batch.file_ids, &mut cres, &mut fres);
                    if let Some(t0) = t {
                        let busy = t0.elapsed().as_nanos() as u64;
                        ns.record(busy);
                        lane_metrics.busy_ns.add(busy);
                    }
                    batches.inc();
                    lane_metrics.batches.inc();
                    cids.add(cres.len() as u64);
                    fids.add(fres.len() as u64);
                    lane_metrics.client_ids.add(cres.len() as u64);
                    lane_metrics.file_ids.add(fres.len() as u64);
                    let last_us = batch.msgs.last().map_or(0, |d| d.ts.0);
                    let r = ShardResult {
                        seq: batch.seq,
                        clients: cres,
                        files: fres,
                    };
                    trace.service_end(&mut pt, batch.seq as u32, last_us, w0, 1);
                    if out.send(r).is_err() {
                        break;
                    }
                }
                set
            }));
        }
        drop(shard_out_tx);

        // Assembler: strict batch order. For each batch, gather all
        // shards' resolutions (stashing early arrivals for later seqs),
        // scatter + remap to final appearance orders, construct records
        // in place, and hand them to the formatter.
        let (asm_tx, asm_rx) = metered_bounded::<AsmItem>(tail.batch_queue, registry, "asm_in");
        let asm_ns = registry.histogram("stage.assemble.service_ns");
        let asm_trace = StageTrace::new(
            registry,
            StageId::Assemble,
            trace_ctx
                .as_ref()
                .map(|c| c.lane(lane_assemble(n_workers), 0)),
        );
        let asm_thread = scope.spawn(move |_| {
            let mut asm = assembler;
            let mut stash: BTreeMap<u64, Vec<ShardResult>> = BTreeMap::new();
            let mut failed = false;
            let mut pt = asm_trace.begin();
            while let Ok(item) = asm_rx.recv() {
                let w0 = asm_trace.service_begin(&mut pt);
                match item {
                    AsmItem::Batch(arc) => {
                        let mut got = stash.remove(&arc.seq).unwrap_or_default();
                        while got.len() < n_shards {
                            match shard_out_rx.recv() {
                                Ok(r) if r.seq == arc.seq => got.push(r),
                                Ok(r) => stash.entry(r.seq).or_default().push(r),
                                // Shards only hang up early on panic;
                                // stop assembling, keep draining.
                                Err(_) => break,
                            }
                        }
                        if got.len() < n_shards {
                            failed = true;
                        }
                        if failed {
                            continue;
                        }
                        let t = asm_ns.start();
                        asm.begin_batch(arc.client_ids.len(), arc.file_ids.len());
                        for r in &got {
                            asm.apply_clients(&r.clients);
                            asm.apply_files(&r.files);
                        }
                        asm.finish_batch(&arc.client_ids, &arc.file_ids);
                        // The pooled record vector keeps its previous
                        // batch's records: construct overwrites them in
                        // place (see anonymize_batch_reuse).
                        let mut recs = rec_pool_rx.try_recv().unwrap_or_default();
                        asm.construct(arc.msgs.iter().map(|d| (d.ts.0, d.peer, &d.msg)), &mut recs);
                        asm_ns.record_since(t);
                        {
                            // etwlint: allow(no-panic-hot-path): lock
                            // poisoning implies a prior panic, as above.
                            let mut pool = res_pool.lock().expect("res pool poisoned");
                            for r in got {
                                if pool.len() < 2 * n_shards + 2 {
                                    pool.push((r.clients, r.files));
                                }
                            }
                        }
                        failed = fmt_tx.send(FormatItem::Batch(recs)).is_err();
                        let (bseq, last_us) = (arc.seq, arc.msgs.last().map_or(0, |d| d.ts.0));
                        // All shards have dropped their handles by the
                        // time their results are in; reclaim the batch
                        // buffers (racy against a shard's loop tail —
                        // a failed unwrap just allocates fresh later).
                        if let Ok(b) = std::sync::Arc::try_unwrap(arc) {
                            let _ = batch_pool_tx.try_send(b);
                        }
                        asm_trace.service_end(&mut pt, bseq as u32, last_us, w0, 1);
                    }
                    AsmItem::Checkpoint {
                        virtual_us,
                        next_checkpoint_us,
                        records,
                        fig3_order,
                    } => {
                        if failed {
                            continue;
                        }
                        failed = fmt_tx
                            .send(FormatItem::Checkpoint(PipelineCheckpoint {
                                virtual_us,
                                next_checkpoint_us,
                                records,
                                // etwlint: allow(no-alloc-hot-loop): checkpoint cut — runs once per interval, not per record
                                client_order: asm.client_order().to_vec(),
                                // etwlint: allow(no-alloc-hot-loop): checkpoint cut, as above
                                file_order: asm.file_order().to_vec(),
                                fig3_order,
                            }))
                            .is_err();
                        asm_trace.service_end(&mut pt, records as u32, virtual_us, w0, 0);
                    }
                }
            }
            asm
        });

        // Sequential stage: restore capture order, run the visit pass
        // while staging, fan out batches.
        let seq_trace = StageTrace::new(
            registry,
            StageId::Reorder,
            trace_ctx.as_ref().map(|c| c.lane(lane_seq(n_workers), 0)),
        );
        let sink = SinkTelemetry {
            reorder_depth: registry.gauge("stage.reorder.depth"),
            reorder_depth_hwm: registry.gauge("stage.reorder.depth_hwm"),
            anonymize_ns: registry.histogram("stage.anonymize.service_ns"),
            records: registry.counter("stage.sink.records_total"),
            queries: registry.counter("stage.sink.queries_total"),
            to_server: registry.counter("stage.sink.to_server_total"),
            from_server: registry.counter("stage.sink.from_server_total"),
        };
        let cp_interval = opts.checkpoint_interval_us;
        let (skip, mut last_ts, mut next_cp) = match &opts.resume {
            Some(r) => (r.records, r.virtual_us, r.next_checkpoint_us),
            None => (0, 0, cp_interval),
        };
        let mut consumed = 0u64;
        let mut reorder: BTreeMap<u64, Option<DecodedMsg>> = BTreeMap::new();
        let mut next_seq = 0u64;
        let fresh_batch = || ShardBatch {
            seq: 0,
            msgs: Vec::with_capacity(tail.batch_records),
            client_ids: Vec::new(),
            file_ids: Vec::new(),
        };
        let mut cur = fresh_batch();
        let mut batch_seq = 0u64;
        let mut queries = 0u64;
        let mut dirs = (0u64, 0u64);
        let mut tail_failed = false;
        // Stages the current run: account it, stamp its sequence number
        // and fan it out to every shard plus the assembler.
        let flush = |cur: &mut ShardBatch,
                     queries: &mut u64,
                     dirs: &mut (u64, u64),
                     batch_seq: &mut u64,
                     stats: &mut PipelineStats|
         -> bool {
            if cur.msgs.is_empty() {
                return true;
            }
            let records = cur.msgs.len() as u64;
            stats.records += records;
            stats.query_records += *queries;
            stats.to_server += dirs.0;
            stats.from_server += dirs.1;
            sink.records.add(records);
            sink.queries.add(*queries);
            sink.to_server.add(dirs.0);
            sink.from_server.add(dirs.1);
            *queries = 0;
            *dirs = (0, 0);
            cur.seq = *batch_seq;
            *batch_seq += 1;
            let mut next = batch_pool_rx.try_recv().unwrap_or_else(&fresh_batch);
            next.msgs.clear();
            next.client_ids.clear();
            next.file_ids.clear();
            let arc = std::sync::Arc::new(std::mem::replace(cur, next));
            for (tx, depth) in &shard_txs {
                if tx.send(arc.clone()).is_err() {
                    return false;
                }
                depth.add(1);
            }
            asm_tx.send(AsmItem::Batch(arc)).is_ok()
        };
        let mut pt = seq_trace.begin();
        while let Ok(batch) = out_rx.recv() {
            let w0 = seq_trace.service_begin(&mut pt);
            let items = batch.len() as u64;
            for (seq, decoded) in batch {
                reorder.insert(seq, decoded);
            }
            while let Some(decoded) = reorder.remove(&next_seq) {
                next_seq += 1;
                let Some(d) = decoded else { continue };
                if cp_interval > 0 && d.ts.0 >= next_cp {
                    // Cut *before* consuming this message, staged run
                    // flushed first — exactly as the serial tail. The
                    // assembler completes the marker with the orders.
                    next_cp = (d.ts.0 / cp_interval + 1) * cp_interval;
                    seq_trace.event_dump(
                        SpanKind::Checkpoint,
                        "checkpoint",
                        consumed as u32,
                        last_ts,
                    );
                    if !tail_failed {
                        tail_failed = !flush(
                            &mut cur,
                            &mut queries,
                            &mut dirs,
                            &mut batch_seq,
                            &mut stats,
                        );
                    }
                    if !tail_failed {
                        tail_failed = asm_tx
                            .send(AsmItem::Checkpoint {
                                virtual_us: last_ts,
                                next_checkpoint_us: next_cp,
                                records: consumed,
                                fig3_order: fig3.as_ref().map(|f| f.appearance_order()),
                            })
                            .is_err();
                    }
                }
                consumed += 1;
                last_ts = d.ts.0;
                if consumed <= skip {
                    // Resume replay: already written by the interrupted
                    // run; its effects live in the restored state.
                    continue;
                }
                if tail_failed {
                    // Tail is gone: keep consuming so the decode front
                    // drains instead of deadlocking the producer.
                    continue;
                }
                match d.direction {
                    Direction::ToServer => dirs.0 += 1,
                    Direction::FromServer => dirs.1 += 1,
                }
                if let Some(fig3) = fig3.as_mut() {
                    for id in message_file_ids(&d.msg) {
                        fig3.anonymize(id);
                    }
                }
                queries += u64::from(d.msg.is_client_to_server());
                let t = sink.anonymize_ns.start();
                collect_ids(d.peer, &d.msg, &mut cur.client_ids, &mut cur.file_ids);
                sink.anonymize_ns.record_since(t);
                cur.msgs.push(d);
                if cur.msgs.len() >= tail.batch_records {
                    tail_failed = !flush(
                        &mut cur,
                        &mut queries,
                        &mut dirs,
                        &mut batch_seq,
                        &mut stats,
                    );
                }
            }
            let depth = reorder.len() as i64;
            sink.reorder_depth.set(depth);
            if depth > sink.reorder_depth_hwm.get() {
                sink.reorder_depth_hwm.set(depth);
            }
            seq_trace.service_end(&mut pt, depth as u32, last_ts, w0, items);
        }
        debug_assert!(reorder.is_empty(), "holes in the sequence space");
        if !tail_failed {
            // Final partial batch.
            flush(
                &mut cur,
                &mut queries,
                &mut dirs,
                &mut batch_seq,
                &mut stats,
            );
        }
        drop(shard_txs);
        drop(asm_tx);

        // Shutdown order follows the data: shards, assembler, formatter,
        // writer, then the front.
        let mut probe = ProbeStats::default();
        for h in shard_handles {
            // etwlint: allow(no-panic-hot-path): join() only errs when
            // the joined thread panicked; re-raising is panic
            // propagation, not a new failure mode.
            let set = h.join().expect("shard worker panicked");
            let p = set.files.probe_stats();
            probe.probes += p.probes;
            probe.comparisons += p.comparisons;
            probe.max_probe_depth = probe.max_probe_depth.max(p.max_probe_depth);
            probe.inserts += p.inserts;
            probe.shifted += p.shifted;
            probe.max_shift = probe.max_shift.max(p.max_shift);
        }
        // Aggregate shard probe work: the per-shard bucket state dies
        // with the workers (the returned scheme is rebuilt from orders,
        // which zeroes its stats), so the campaign-facing numbers live
        // under anon.shard.* instead of anon.fileid.*.
        registry
            .counter("anon.shard.probes_total")
            .add(probe.probes);
        registry
            .counter("anon.shard.comparisons_total")
            .add(probe.comparisons);
        registry
            .gauge("anon.shard.max_probe_depth")
            .set(probe.max_probe_depth as i64);
        registry
            .counter("anon.shard.inserts_total")
            .add(probe.inserts);
        registry
            .counter("anon.shard.shifted_total")
            .add(probe.shifted);
        registry
            .gauge("anon.shard.max_shift")
            .set(probe.max_shift as i64);
        // etwlint: allow(no-panic-hot-path): panic propagation, as above
        let asm = asm_thread.join().expect("assembler panicked");
        // etwlint: allow(no-panic-hot-path): panic propagation, as above
        formatter.join().expect("formatter panicked");
        // etwlint: allow(no-panic-hot-path): panic propagation, as above
        let (w, io_err) = writer_thread.join().expect("writer panicked");
        // etwlint: allow(no-panic-hot-path): panic propagation, as above
        let (total_frames, shed_count) = producer.join().expect("producer panicked");
        stats.frames = total_frames;
        stats.shed = shed_count;
        for h in handles {
            // etwlint: allow(no-panic-hot-path): panic propagation, as above
            let worker = h.join().expect("worker panicked");
            stats.not_udp += worker.not_udp;
            stats.other_port += worker.other_port;
            stats.parse_errors += worker.parse_errors;
            stats.udp_datagrams += worker.udp_datagrams;
            stats.fragmented_datagrams += worker.fragmented_datagrams;
            stats.decoder.merge(&worker.decoder);
            merge_reassembly(&mut stats.reassembly, &worker.reassembly);
        }
        (w, io_err, asm)
    })
    // etwlint: allow(no-panic-hot-path): crossbeam scope() errs only when
    // a child panicked; re-raising is panic propagation.
    .expect("pipeline scope panicked");

    // Rebuild a serial-equivalent scheme from the assembler's final
    // orders: distinct counts and bucket sizes match the serial run
    // exactly (probe stats were aggregated above).
    let scheme =
        PaperScheme::from_orders(width_bits, selector, asm.client_order(), asm.file_order());
    match io_err {
        Some(e) => Err(e),
        None => Ok((stats, scheme, fig3, writer)),
    }
}

/// Spawns the parallel front of the pipeline — the routing producer and
/// the decode workers — into `scope`, wiring shared stage telemetry.
/// Returns the sequenced worker-output channel plus the join handles:
/// the producer yields `(frames_routed, frames_shed)`, each worker its
/// accumulated [`WorkerStats`]. Both the serial and the batched tail sit
/// downstream of this same front, so fault injection, shedding and
/// sequence assignment behave identically in the two.
type FrontHandles<'scope> = (
    MeteredReceiver<Vec<WorkerStep>>,
    crossbeam::thread::ScopedJoinHandle<'scope, (u64, u64)>,
    Vec<crossbeam::thread::ScopedJoinHandle<'scope, WorkerStats>>,
);

fn spawn_front<'scope, 'env, I>(
    scope: &crossbeam::thread::Scope<'scope, 'env>,
    frames: I,
    n_workers: usize,
    registry: &Registry,
    faults: Option<WorkerFaultPlan>,
    trace_ctx: Option<Arc<TraceCtx>>,
) -> FrontHandles<'scope>
where
    I: Iterator<Item = TimedFrame> + Send + 'scope,
{
    let (out_tx, out_rx) =
        metered_bounded::<Vec<WorkerStep>>(2 * FRAME_QUEUE, registry, "decode_out");
    let mut worker_txs = Vec::with_capacity(n_workers);
    let mut handles = Vec::with_capacity(n_workers);
    let decode_telemetry = DecodeTelemetry {
        frames: registry.counter("stage.decode.frames_total"),
        service_ns: registry.histogram("stage.decode.service_ns"),
    };
    let fault_telemetry = WorkerFaultTelemetry {
        crashes: registry.counter("faults.worker.crashes_total"),
        restarts: registry.counter("faults.worker.restarts_total"),
        backoff_dropped: registry.counter("faults.worker.backoff_dropped_total"),
        degraded: registry.counter("faults.worker.degraded_total"),
        tombstoned: registry.counter("faults.worker.tombstoned_total"),
    };
    for windex in 0..n_workers {
        // All worker input channels share the "decode_in" metrics,
        // so depth reads as batches queued across the stage.
        let (tx, rx) =
            metered_bounded::<Vec<(u64, TimedFrame)>>(FRAME_QUEUE, registry, "decode_in");
        worker_txs.push(tx);
        let out_tx = out_tx.clone();
        let telemetry = decode_telemetry.clone();
        let trace = StageTrace::new(
            registry,
            StageId::Decode,
            trace_ctx
                .as_ref()
                .map(|c| c.lane(lane_decode(windex), windex as u16)),
        );
        let supervision = faults
            .clone()
            .map(|plan| (windex, plan, fault_telemetry.clone()));
        handles.push(scope.spawn(move |_| worker_loop(rx, out_tx, telemetry, trace, supervision)));
    }
    drop(out_tx);

    // Producer: route frames so that all fragments of one datagram
    // land on the same worker (reassembly is per-worker state).
    // Overload shedding happens here, before sequence assignment:
    // the sequence space stays dense and the decision depends only
    // on the (deterministic) frame stream, never on queue timing.
    let produced = registry.counter("stage.producer.frames_total");
    let shed = registry.counter("pipeline.shed_total");
    let producer_lane = trace_ctx.as_ref().map(|c| c.lane(0, 0));
    let producer_plan = faults;
    let producer = scope.spawn(move |_| {
        let mut seq = 0u64;
        let mut offered = 0u64;
        let mut shed_count = 0u64;
        // Shed dumps are deduplicated per overload *burst*: within a
        // window the kept-every-Nth frames interleave with shed ones,
        // so contiguity can't delimit the burst — a virtual-time gap
        // larger than any intra-window stride can.
        const SHED_BURST_GAP_US: u64 = 5_000_000;
        let mut last_shed_us: Option<u64> = None;
        // Per-worker frame batches: routed frames accumulate locally and
        // ship [`FRAME_BATCH`] at a time, so the channel (and on a busy
        // host, the scheduler) is paid per batch, not per frame.
        let mut batches: Vec<Vec<(u64, TimedFrame)>> = (0..n_workers)
            .map(|_| Vec::with_capacity(FRAME_BATCH))
            .collect();
        for frame in frames {
            offered += 1;
            if let Some(plan) = &producer_plan {
                if plan.should_shed(frame.ts.0, offered) {
                    shed.inc();
                    shed_count += 1;
                    if let Some(lane) = &producer_lane {
                        lane.ring.record(SpanEvent::new(
                            StageId::Producer,
                            SpanKind::Shed,
                            0,
                            offered as u32,
                            frame.ts.0,
                            wall_now_ns(),
                            0,
                        ));
                        let new_burst = last_shed_us
                            .is_none_or(|t| frame.ts.0.saturating_sub(t) > SHED_BURST_GAP_US);
                        if new_burst {
                            lane.ctx.dump("shed", frame.ts.0);
                        }
                    }
                    last_shed_us = Some(frame.ts.0);
                    continue;
                }
            }
            let w = route(&frame.bytes, n_workers);
            batches[w].push((seq, frame));
            if batches[w].len() >= FRAME_BATCH {
                let full = std::mem::replace(&mut batches[w], Vec::with_capacity(FRAME_BATCH));
                worker_txs[w]
                    .send(full)
                    // etwlint: allow(no-panic-hot-path): a worker hanging
                    // up mid-run means it already panicked; propagating
                    // beats silently dropping the rest of the trace.
                    .expect("worker hung up early");
            }
            produced.inc();
            seq += 1;
        }
        for (w, batch) in batches.into_iter().enumerate() {
            if !batch.is_empty() {
                // etwlint: allow(no-panic-hot-path): panic propagation, as above
                worker_txs[w].send(batch).expect("worker hung up early");
            }
        }
        (seq, shed_count)
    });

    (out_rx, producer, handles)
}

/// Keep injected worker crashes out of stderr: they are scheduled fault
/// events, not bugs. Genuine panics still reach the previous hook. The
/// hook is process-global, so it is installed once and filters only by
/// payload type.
fn silence_injected_crashes() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<InjectedWorkerCrash>()
                .is_none()
            {
                previous(info);
            }
        }));
    });
}

#[derive(Default)]
struct WorkerStats {
    not_udp: u64,
    other_port: u64,
    parse_errors: u64,
    udp_datagrams: u64,
    fragmented_datagrams: u64,
    decoder: DecoderStats,
    reassembly: ReassemblyStats,
}

/// Counters for supervised-worker fault events (shared by all workers).
#[derive(Clone)]
struct WorkerFaultTelemetry {
    crashes: Counter,
    restarts: Counter,
    backoff_dropped: Counter,
    degraded: Counter,
    tombstoned: Counter,
}

fn worker_loop(
    rx: MeteredReceiver<Vec<(u64, TimedFrame)>>,
    out: MeteredSender<Vec<WorkerStep>>,
    telemetry: DecodeTelemetry,
    trace: StageTrace,
    supervision: Option<(usize, WorkerFaultPlan, WorkerFaultTelemetry)>,
) -> WorkerStats {
    let mut wire = WireDecoder::new();
    let mut decoder = Decoder::new();
    let mut ws = WorkerStats::default();
    let mut received = 0u64;
    let mut restarts = 0u32;
    let mut backoff_left = 0u64;
    let mut degraded = false;
    let mut pt = trace.begin();
    'batches: while let Ok(batch) = rx.recv() {
        let w0 = trace.service_begin(&mut pt);
        let t = telemetry.service_ns.start();
        let items = batch.len() as u64;
        let mut last_us = 0u64;
        let mut steps: Vec<WorkerStep> = Vec::with_capacity(batch.len());
        for (seq, frame) in batch {
            received += 1;
            telemetry.frames.inc();
            let decoded = match &supervision {
                None => process_frame(&mut wire, &mut decoder, &mut ws, &frame),
                Some((windex, plan, faults)) => {
                    if degraded {
                        // Out of restart budget: tombstone everything rather
                        // than stop the capture ("never stop the capture").
                        faults.tombstoned.inc();
                        None
                    } else if backoff_left > 0 {
                        backoff_left -= 1;
                        faults.backoff_dropped.inc();
                        faults.tombstoned.inc();
                        None
                    } else {
                        let crash_due = plan.crash_due(*windex, received);
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            if crash_due {
                                std::panic::panic_any(InjectedWorkerCrash);
                            }
                            process_frame(&mut wire, &mut decoder, &mut ws, &frame)
                        }));
                        match outcome {
                            Ok(d) => d,
                            Err(_) => {
                                faults.crashes.inc();
                                faults.tombstoned.inc();
                                // Salvage the dead instance's accounting,
                                // then restart with fresh decoder state: a
                                // crash mid-frame may have left reassembly
                                // or stream state poisoned.
                                ws.decoder.merge(&decoder.stats());
                                merge_reassembly(&mut ws.reassembly, &wire.reassembly_stats());
                                wire = WireDecoder::new();
                                decoder = Decoder::new();
                                trace.event_dump(
                                    SpanKind::Crash,
                                    "crash",
                                    received as u32,
                                    frame.ts.0,
                                );
                                if restarts >= plan.max_restarts {
                                    degraded = true;
                                    faults.degraded.inc();
                                    trace.event_dump(
                                        SpanKind::Degraded,
                                        "degraded",
                                        restarts,
                                        frame.ts.0,
                                    );
                                } else {
                                    restarts += 1;
                                    faults.restarts.inc();
                                    backoff_left = plan.backoff_after(restarts);
                                    trace.event(SpanKind::Restart, restarts, frame.ts.0);
                                }
                                None
                            }
                        }
                    }
                }
            };
            last_us = frame.ts.0;
            steps.push((seq, decoded));
        }
        telemetry.service_ns.record_since(t);
        trace.service_end(&mut pt, received as u32, last_us, w0, items);
        if out.send(steps).is_err() {
            break 'batches;
        }
    }
    ws.decoder.merge(&decoder.stats());
    merge_reassembly(&mut ws.reassembly, &wire.reassembly_stats());
    ws
}

fn process_frame(
    wire: &mut WireDecoder,
    decoder: &mut Decoder,
    ws: &mut WorkerStats,
    frame: &TimedFrame,
) -> Option<DecodedMsg> {
    match wire.push(frame.ts, &frame.bytes) {
        Recovered::Udp {
            peer,
            direction,
            payload,
            was_fragmented,
        } => {
            ws.udp_datagrams += 1;
            if was_fragmented {
                ws.fragmented_datagrams += 1;
            }
            decode_payload(decoder, frame.ts, peer, direction, &payload)
        }
        Recovered::FragmentPending => None,
        Recovered::NotUdp => {
            ws.not_udp += 1;
            None
        }
        Recovered::OtherPort => {
            ws.other_port += 1;
            None
        }
        Recovered::ParseError => {
            ws.parse_errors += 1;
            None
        }
    }
}

fn decode_payload(
    decoder: &mut Decoder,
    ts: VirtualTime,
    peer: ClientId,
    direction: Direction,
    payload: &Bytes,
) -> Option<DecodedMsg> {
    match decoder.push(payload) {
        DecodeOutcome::Ok(msg) => Some(DecodedMsg {
            ts,
            peer,
            direction,
            msg,
        }),
        DecodeOutcome::StructurallyInvalid(_)
        | DecodeOutcome::DecodeFailed(_)
        | DecodeOutcome::NotEdonkey => None,
    }
}

/// Routing key: hash of (src, dst, ident) straight out of the IP header
/// bytes, so fragments of one datagram always share a worker. Frames too
/// short to carry an IP header all go to worker 0 (they will be counted
/// as parse errors there).
fn route(frame: &[u8], n_workers: usize) -> usize {
    if frame.len() < 34 {
        return 0;
    }
    // Ethernet header is 14 bytes; IPv4: ident at +4, src at +12, dst at +16.
    let ip = &frame[14..];
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for &b in ip[4..6].iter().chain(&ip[12..20]) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % n_workers as u64) as usize
}

fn merge_reassembly(a: &mut ReassemblyStats, b: &ReassemblyStats) {
    a.whole += b.whole;
    a.fragments += b.fragments;
    a.reassembled += b.reassembled;
    a.timed_out += b.timed_out;
    a.duplicates += b.duplicates;
}

/// All fileIDs referenced by a message (for the Fig. 3 tracker).
fn message_file_ids(msg: &Message) -> Vec<&etw_edonkey::ids::FileId> {
    match msg {
        Message::GetSources { file_ids } => file_ids.iter().collect(),
        Message::FoundSources { file_id, .. } => vec![file_id],
        Message::SearchResponse { results } => results.iter().map(|e| &e.file_id).collect(),
        Message::OfferFiles { files } => files.iter().map(|e| &e.file_id).collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wirepath::{encapsulate, tcp_noise_frame, Direction};
    use etw_anonymize::fileid::ByteSelector;
    use etw_edonkey::ids::FileId;

    fn frames_for(msgs: &[(u32, Message)]) -> Vec<TimedFrame> {
        let mut out = Vec::new();
        for (i, (client, msg)) in msgs.iter().enumerate() {
            for f in encapsulate(
                msg.encode(),
                ClientId(*client),
                4672,
                Direction::ToServer,
                i as u16,
                1500,
            ) {
                out.push(TimedFrame {
                    ts: VirtualTime::from_secs(i as u64),
                    bytes: f.to_bytes(),
                });
            }
        }
        out
    }

    fn run(frames: Vec<TimedFrame>, workers: usize) -> (PipelineStats, Vec<AnonRecord>) {
        let mut records = Vec::new();
        let (stats, _, _) = run_capture_pipeline(
            frames.into_iter(),
            workers,
            PaperScheme::paper(16),
            None,
            |r| records.push(r),
        );
        (stats, records)
    }

    #[test]
    fn single_message_flows_through() {
        let frames = frames_for(&[(100, Message::StatusRequest { challenge: 1 })]);
        let (stats, records) = run(frames, 2);
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.udp_datagrams, 1);
        assert_eq!(stats.decoder.decoded, 1);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].peer, 0);
    }

    #[test]
    fn order_is_deterministic_across_worker_counts() {
        let msgs: Vec<(u32, Message)> = (0..200)
            .map(|i| {
                (
                    (i % 37) as u32,
                    Message::GetSources {
                        file_ids: vec![FileId::of_identity(i as u64 % 13)],
                    },
                )
            })
            .collect();
        let (_, r1) = run(frames_for(&msgs), 1);
        let (_, r4) = run(frames_for(&msgs), 4);
        assert_eq!(r1.len(), 200);
        assert_eq!(r1, r4, "worker count changed anonymised output");
    }

    #[test]
    fn fragmented_announcements_survive_parallel_decode() {
        // Large OfferFiles messages fragment; routing must keep the
        // fragments on one worker.
        use etw_edonkey::messages::FileEntry;
        use etw_edonkey::tags::{special, Tag, TagList};
        let files: Vec<FileEntry> = (0..60u8)
            .map(|i| FileEntry {
                file_id: FileId([i; 16]),
                client_id: ClientId(55),
                port: 4662,
                tags: TagList(vec![
                    Tag::str(special::FILENAME, format!("some file name {i}.mp3")),
                    Tag::u32(special::FILESIZE, 4_000_000),
                ]),
            })
            .collect();
        let msgs: Vec<(u32, Message)> = (0..40)
            .map(|i| {
                (
                    i as u32,
                    Message::OfferFiles {
                        files: files.clone(),
                    },
                )
            })
            .collect();
        let frames = frames_for(&msgs);
        assert!(frames.len() > 80, "expected fragmentation");
        let (stats, records) = run(frames, 4);
        assert_eq!(stats.decoder.decoded, 40);
        assert_eq!(records.len(), 40);
        assert_eq!(stats.reassembly.reassembled, 40);
        assert_eq!(stats.fragmented_datagrams, 40);
    }

    #[test]
    fn noise_is_classified_not_decoded() {
        let mut frames = frames_for(&[(1, Message::GetServerList)]);
        frames.push(TimedFrame {
            ts: VirtualTime::ZERO,
            bytes: tcp_noise_frame(9, 10, 50).to_bytes(),
        });
        frames.push(TimedFrame {
            ts: VirtualTime::ZERO,
            bytes: vec![0xff; 10],
        });
        let (stats, records) = run(frames, 2);
        assert_eq!(stats.frames, 3);
        assert_eq!(stats.not_udp, 1);
        assert_eq!(stats.parse_errors, 1);
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn fig3_tracker_sees_file_ids() {
        let frames = frames_for(&[
            (
                1,
                Message::GetSources {
                    file_ids: vec![FileId::forged(0, [0x00, 0x00])],
                },
            ),
            (
                2,
                Message::GetSources {
                    file_ids: vec![FileId::forged(1, [0x00, 0x00])],
                },
            ),
        ]);
        let (_, _, fig3) = run_capture_pipeline(
            frames.into_iter(),
            2,
            PaperScheme::paper(16),
            Some(BucketedArrays::new(ByteSelector::FIRST_TWO)),
            |_| {},
        );
        let fig3 = fig3.unwrap();
        assert_eq!(fig3.distinct(), 2);
        assert_eq!(fig3.bucket_sizes()[0], 2);
    }

    #[test]
    fn empty_input() {
        let (stats, records) = run(Vec::new(), 3);
        assert_eq!(stats.frames, 0);
        assert!(records.is_empty());
    }

    #[test]
    fn observed_pipeline_reports_consistent_stage_metrics() {
        let msgs: Vec<(u32, Message)> = (0..50)
            .map(|i| {
                (
                    i as u32,
                    Message::StatusRequest {
                        challenge: i as u32,
                    },
                )
            })
            .collect();
        let frames = frames_for(&msgs);
        let registry = Registry::new();
        let mut records = Vec::new();
        let (stats, _, _) = run_capture_pipeline_observed(
            frames.into_iter(),
            2,
            PaperScheme::paper(16),
            None,
            &registry,
            |r| records.push(r),
        );
        let snap = registry.snapshot();
        // Every frame is seen once per stage; the decode channels tick
        // per *batch* (frames ride in Vecs), so their counters are
        // bounded by the frame count and agree with each other — the
        // worker emits exactly one out-batch per in-batch.
        assert_eq!(snap.counter("stage.producer.frames_total"), stats.frames);
        let in_batches = snap.counter("chan.decode_in.sent_total");
        let out_batches = snap.counter("chan.decode_out.sent_total");
        assert!(in_batches > 0 && in_batches <= stats.frames);
        assert_eq!(out_batches, in_batches);
        assert_eq!(snap.counter("stage.decode.frames_total"), stats.frames);
        assert_eq!(
            snap.histogram("stage.decode.service_ns").unwrap().count,
            out_batches
        );
        // Sink accounting matches the pipeline stats, direction included.
        assert_eq!(snap.counter("stage.sink.records_total"), stats.records);
        assert_eq!(
            snap.counter("stage.sink.to_server_total")
                + snap.counter("stage.sink.from_server_total"),
            stats.records
        );
        assert_eq!(stats.to_server + stats.from_server, stats.records);
        assert_eq!(
            stats.to_server, stats.records,
            "all test frames are queries"
        );
        assert_eq!(
            snap.histogram("stage.anonymize.service_ns").unwrap().count,
            stats.records
        );
        // Queues fully drained at exit.
        assert_eq!(snap.gauge("stage.reorder.depth"), 0);
        assert_eq!(snap.gauge("chan.decode_in.depth"), 0);
        assert_eq!(snap.gauge("chan.decode_out.depth"), 0);
    }

    fn query_msgs(n: usize) -> Vec<(u32, Message)> {
        (0..n)
            .map(|i| {
                (
                    (i % 40) as u32,
                    Message::GetSources {
                        file_ids: vec![FileId::of_identity(i as u64 % 17)],
                    },
                )
            })
            .collect()
    }

    #[test]
    fn producer_sheds_deterministically_during_overload() {
        // 200 one-frame messages at ts = 0..200 s; overload covers
        // [50 s, 100 s) and keeps every 2nd offered frame.
        let frames = frames_for(&query_msgs(200));
        let plan = WorkerFaultPlan {
            crash_every: 0,
            max_restarts: 0,
            backoff_frames: 0,
            backoff_cap: 0,
            overload: vec![etw_faults::Window {
                start_us: 50_000_000,
                end_us: 100_000_000,
            }],
            shed_keep_every: 2,
        };
        let opts = PipelineOptions {
            checkpoint_interval_us: 0,
            resume: None,
            faults: Some(plan),
            trace: None,
        };
        let registry = Registry::new();
        let run_once = |registry: &Registry| {
            let mut records = Vec::new();
            let (stats, _, _) = run_capture_pipeline_with(
                frames.clone().into_iter(),
                3,
                PaperScheme::paper(16),
                None,
                registry,
                &opts,
                |r| records.push(r),
                |_| {},
            );
            (stats, records)
        };
        let (stats, records) = run_once(&registry);
        // 50 frames fall in the window; ordinals there alternate
        // keep/shed, so half are shed.
        assert_eq!(stats.shed, 25);
        assert_eq!(stats.frames, 175);
        assert_eq!(stats.frames + stats.shed, 200, "frames conserve");
        assert_eq!(records.len(), 175, "survivors all decode");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pipeline.shed_total"), stats.shed);
        assert_eq!(snap.counter("stage.producer.frames_total"), stats.frames);
        // Shedding is a pure function of the frame stream: re-running
        // sheds the exact same frames.
        let (stats2, records2) = run_once(&Registry::disabled());
        assert_eq!(stats2.shed, stats.shed);
        assert_eq!(records2, records);
    }

    #[test]
    fn traced_faulty_run_dumps_flight_files_and_output_is_unchanged() {
        let frames = frames_for(&query_msgs(300));
        let plan = WorkerFaultPlan {
            crash_every: 40,
            max_restarts: 1,
            backoff_frames: 2,
            backoff_cap: 8,
            overload: vec![etw_faults::Window {
                start_us: 50_000_000,
                end_us: 80_000_000,
            }],
            shed_keep_every: 2,
        };
        let dir = std::env::temp_dir().join("etw-trace-flight-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let base = PipelineOptions {
            checkpoint_interval_us: 60_000_000,
            resume: None,
            faults: Some(plan),
            trace: None,
        };
        let traced = PipelineOptions {
            trace: Some(TraceOptions {
                ring_slots: 64,
                dump_dir: Some(dir.clone()),
                max_dumps: 16,
            }),
            ..base.clone()
        };
        let run = |opts: &PipelineOptions| {
            let mut records = Vec::new();
            let (stats, _, _) = run_capture_pipeline_with(
                frames.clone().into_iter(),
                2,
                PaperScheme::paper(16),
                None,
                &Registry::new(),
                opts,
                |r| records.push(r),
                |_| {},
            );
            (stats, records)
        };
        let (stats_plain, recs_plain) = run(&base);
        let (stats_traced, recs_traced) = run(&traced);
        // Tracing is a pure observer: identical stats and records.
        assert_eq!(recs_traced, recs_plain);
        assert_eq!(stats_traced.shed, stats_plain.shed);
        assert_eq!(stats_traced.records, stats_plain.records);

        // Crashes, the shed burst and checkpoint cuts each dumped a
        // flight file; every dump parses and the merged events include
        // service spans and the fault markers.
        let mut dumps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        dumps.sort();
        assert!(!dumps.is_empty(), "no flight dumps written");
        let names: Vec<String> = dumps
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        for reason in ["_crash_", "_shed_", "_checkpoint_"] {
            assert!(
                names.iter().any(|n| n.contains(reason)),
                "no {reason} dump among {names:?}"
            );
        }
        let mut kinds = std::collections::BTreeSet::new();
        for p in &dumps {
            let events = trace_file::read_file(p).unwrap();
            assert!(!events.is_empty(), "empty flight dump {p:?}");
            for ev in &events {
                kinds.insert(ev.kind().expect("valid kind").name());
            }
        }
        assert!(kinds.contains("service"), "kinds: {kinds:?}");
        assert!(kinds.contains("CRASH"), "kinds: {kinds:?}");
        assert!(kinds.contains("checkpoint"), "kinds: {kinds:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn supervised_workers_crash_restart_then_degrade() {
        let frames = frames_for(&query_msgs(400));
        let plan = WorkerFaultPlan {
            crash_every: 25,
            max_restarts: 2,
            backoff_frames: 2,
            backoff_cap: 8,
            overload: Vec::new(),
            shed_keep_every: 0,
        };
        let opts = PipelineOptions {
            checkpoint_interval_us: 0,
            resume: None,
            faults: Some(plan),
            trace: None,
        };
        let registry = Registry::new();
        let mut records = Vec::new();
        let (stats, _, _) = run_capture_pipeline_with(
            frames.into_iter(),
            2,
            PaperScheme::paper(16),
            None,
            &registry,
            &opts,
            |r| records.push(r),
            |_| {},
        );
        let snap = registry.snapshot();
        let crashes = snap.counter("faults.worker.crashes_total");
        let restarts = snap.counter("faults.worker.restarts_total");
        let degraded = snap.counter("faults.worker.degraded_total");
        let tombstoned = snap.counter("faults.worker.tombstoned_total");
        let backoff = snap.counter("faults.worker.backoff_dropped_total");
        assert!(crashes > 0, "no crashes fired");
        assert!(restarts > 0, "no restarts happened");
        assert_eq!(degraded, 2, "both workers exhaust their budget");
        assert!(backoff > 0);
        // Every frame still produced exactly one sequence step: the sink
        // never stalls and the channels drain fully (decode_out ticks
        // per batch, so it is bounded by the frame count).
        assert_eq!(stats.frames, 400);
        let out_batches = snap.counter("chan.decode_out.sent_total");
        assert!(out_batches > 0 && out_batches <= stats.frames);
        assert_eq!(snap.counter("stage.decode.frames_total"), stats.frames);
        // Tombstoned frames are exactly the records gap (every survivor
        // in this workload decodes to a record).
        assert_eq!(stats.records, records.len() as u64);
        assert_eq!(stats.records + tombstoned, stats.frames);
        // Tombstones decompose into crash-consumed, backoff-dropped and
        // degraded-mode frames.
        let degraded_frames = tombstoned - crashes - backoff;
        assert!(degraded_frames > 0, "degraded workers saw no traffic");
    }

    #[test]
    fn checkpoints_cut_at_boundaries_and_resume_reproduces_tail() {
        let frames = frames_for(&query_msgs(300));
        let opts = PipelineOptions {
            checkpoint_interval_us: 60_000_000, // every virtual minute
            resume: None,
            faults: None,
            trace: None,
        };
        let mut full = Vec::new();
        let mut cuts = Vec::new();
        let (stats, _, _) = run_capture_pipeline_with(
            frames.clone().into_iter(),
            2,
            PaperScheme::paper(16),
            None,
            &Registry::disabled(),
            &opts,
            |r| full.push(r),
            |cp| cuts.push(cp),
        );
        assert_eq!(stats.records, 300);
        assert!(cuts.len() >= 4, "expected several checkpoint cuts");
        for w in cuts.windows(2) {
            assert!(w[0].records < w[1].records, "cuts advance");
            assert!(w[0].next_checkpoint_us <= w[1].virtual_us + 60_000_000);
        }
        // A cut's state is "everything before the boundary": each
        // checkpoint at boundary k*60s holds exactly the messages with
        // ts < boundary (one message per second here).
        let first = &cuts[0];
        assert_eq!(first.records, 60);
        assert_eq!(first.virtual_us, 59_000_000);

        // Resume from a middle checkpoint and replay: the tail must match
        // the uninterrupted run record-for-record, and the later cuts
        // must be identical too.
        let cp = cuts[1].clone();
        let scheme = PaperScheme::from_orders(
            16,
            ByteSelector::ALTERNATIVE,
            &cp.client_order,
            &cp.file_order,
        );
        let resume_opts = PipelineOptions {
            checkpoint_interval_us: 60_000_000,
            resume: Some(ResumePoint {
                records: cp.records,
                virtual_us: cp.virtual_us,
                next_checkpoint_us: cp.next_checkpoint_us,
            }),
            faults: None,
            trace: None,
        };
        let mut tail = Vec::new();
        let mut tail_cuts = Vec::new();
        let (rstats, _, _) = run_capture_pipeline_with(
            frames.into_iter(),
            4, // different worker count: output must not care
            scheme,
            None,
            &Registry::disabled(),
            &resume_opts,
            |r| tail.push(r),
            |c| tail_cuts.push(c),
        );
        assert_eq!(rstats.records, 300 - cp.records);
        assert_eq!(&full[cp.records as usize..], &tail[..]);
        assert_eq!(&cuts[2..], &tail_cuts[..], "resumed cuts diverge");
    }

    /// Serial reference: pipeline → `write_record`, checkpoints stamped
    /// with the writer offset as `repro soak` does.
    fn serial_dataset(
        frames: Vec<TimedFrame>,
        workers: usize,
        opts: &PipelineOptions,
    ) -> (Vec<u8>, Vec<(PipelineCheckpoint, u64)>, PipelineStats) {
        use std::cell::RefCell;
        let writer = RefCell::new(DatasetWriter::new(Vec::new()).unwrap());
        let cps = RefCell::new(Vec::new());
        let (stats, _, _) = run_capture_pipeline_with(
            frames.into_iter(),
            workers,
            PaperScheme::paper(16),
            None,
            &Registry::disabled(),
            opts,
            |r| writer.borrow_mut().write_record(&r).unwrap(),
            |cp| {
                let bytes = writer.borrow().bytes_written();
                cps.borrow_mut().push((cp, bytes));
            },
        );
        let bytes = writer.into_inner().finish().unwrap();
        (bytes, cps.into_inner(), stats)
    }

    fn batched_dataset(
        frames: Vec<TimedFrame>,
        workers: usize,
        opts: &PipelineOptions,
        tail: TailConfig,
        registry: &Registry,
    ) -> (Vec<u8>, Vec<(PipelineCheckpoint, u64)>, PipelineStats) {
        let mut cps = Vec::new();
        let (stats, _, _, writer) = run_capture_pipeline_batched(
            frames.into_iter(),
            workers,
            PaperScheme::paper(16),
            None,
            registry,
            opts,
            tail,
            DatasetWriter::new(Vec::new()).unwrap(),
            |cp, bytes| cps.push((cp, bytes)),
        )
        .unwrap();
        let bytes = writer.finish().unwrap();
        (bytes, cps, stats)
    }

    fn mixed_msgs(n: usize) -> Vec<(u32, Message)> {
        use etw_edonkey::search::SearchExpr;
        (0..n)
            .map(|i| {
                let m = match i % 4 {
                    0 => Message::GetSources {
                        file_ids: vec![FileId::of_identity(i as u64 % 17)],
                    },
                    1 => Message::SearchRequest {
                        expr: SearchExpr::keyword("pink floyd"),
                    },
                    2 => Message::StatusRequest {
                        challenge: i as u32,
                    },
                    _ => Message::GetServerList,
                };
                ((i % 31) as u32, m)
            })
            .collect()
    }

    #[test]
    fn batched_tail_is_byte_identical_to_serial() {
        let frames = frames_for(&mixed_msgs(300));
        let opts = PipelineOptions {
            checkpoint_interval_us: 60_000_000,
            resume: None,
            faults: None,
            trace: None,
        };
        let (serial, serial_cps, sstats) = serial_dataset(frames.clone(), 2, &opts);
        assert!(serial_cps.len() >= 3, "want several checkpoint cuts");
        // Batch size, queue depth and worker count must all be
        // invisible in the output — including the partial final batch
        // and a batch size of one.
        for (workers, tail) in [
            (
                1,
                TailConfig {
                    batch_records: 1,
                    batch_queue: 1,
                    anon_shards: 1,
                },
            ),
            (
                3,
                TailConfig {
                    batch_records: 7,
                    batch_queue: 2,
                    anon_shards: 1,
                },
            ),
            (2, TailConfig::default()),
            // Sharded anonymiser: the shard count must be invisible too,
            // including a batch size of one and the awkward batch 7.
            (
                2,
                TailConfig {
                    batch_records: 1,
                    batch_queue: 1,
                    anon_shards: 2,
                },
            ),
            (
                3,
                TailConfig {
                    batch_records: 7,
                    batch_queue: 2,
                    anon_shards: 4,
                },
            ),
            (
                1,
                TailConfig {
                    batch_records: 64,
                    batch_queue: 2,
                    anon_shards: 8,
                },
            ),
        ] {
            let (batched, cps, bstats) =
                batched_dataset(frames.clone(), workers, &opts, tail, &Registry::disabled());
            assert!(batched == serial, "diverged with {tail:?}");
            assert_eq!(cps, serial_cps, "checkpoints diverged with {tail:?}");
            assert_eq!(bstats.records, sstats.records);
            assert_eq!(bstats.query_records, sstats.query_records);
            assert_eq!(bstats.to_server, sstats.to_server);
            assert_eq!(bstats.from_server, sstats.from_server);
        }
    }

    #[test]
    fn batched_tail_reports_format_and_write_stages() {
        let frames = frames_for(&mixed_msgs(200));
        let registry = Registry::new();
        let (bytes, _, stats) = batched_dataset(
            frames,
            2,
            &PipelineOptions::default(),
            TailConfig {
                batch_records: 32,
                batch_queue: 4,
                anon_shards: 1,
            },
            &registry,
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("stage.format.records_total"), stats.records);
        assert_eq!(snap.counter("stage.sink.records_total"), stats.records);
        let batches = snap.counter("stage.format.batches_total");
        assert_eq!(batches, stats.records.div_ceil(32));
        assert_eq!(snap.counter("stage.write.batches_total"), batches);
        // Everything formatted got written; the dataset is header +
        // formatted bytes + footer.
        let body = snap.counter("stage.format.bytes_total");
        assert_eq!(snap.counter("stage.write.bytes_total"), body);
        assert!(body > 0 && (body as usize) < bytes.len());
        assert_eq!(
            snap.histogram("stage.format.service_ns").unwrap().count,
            batches
        );
        assert_eq!(
            snap.histogram("stage.write.flush_ns").unwrap().count,
            batches
        );
        // Tail queues fully drained at exit.
        assert_eq!(snap.gauge("chan.fmt_in.depth"), 0);
        assert_eq!(snap.gauge("chan.write_in.depth"), 0);
    }

    #[test]
    fn sharded_tail_reports_shard_and_assemble_stages() {
        let frames = frames_for(&mixed_msgs(200));
        let registry = Registry::new();
        let (bytes, _, stats) = batched_dataset(
            frames,
            2,
            &PipelineOptions::default(),
            TailConfig {
                batch_records: 32,
                batch_queue: 4,
                anon_shards: 4,
            },
            &registry,
        );
        assert!(!bytes.is_empty());
        let snap = registry.snapshot();
        let batches = stats.records.div_ceil(32);
        // Every batch visits every shard; the assembler reassembles each
        // exactly once.
        assert_eq!(snap.counter("anon.shard.batches_total"), batches * 4);
        assert_eq!(
            snap.histogram("stage.shard.service_ns").unwrap().count,
            batches * 4
        );
        assert_eq!(
            snap.histogram("stage.assemble.service_ns").unwrap().count,
            batches
        );
        // Each id is resolved by exactly one shard, so the summed
        // resolution counts cover at least one clientID per record (the
        // peer) without double counting.
        assert!(snap.counter("anon.shard.client_ids_total") >= stats.records);
        // The mixed workload carries fileIDs, so the aggregated bucket
        // probe work is visible.
        assert!(snap.counter("anon.shard.inserts_total") > 0);
        assert!(snap.counter("anon.shard.probes_total") > 0);
        // Record accounting still runs through the shared tail stages.
        assert_eq!(snap.counter("stage.format.records_total"), stats.records);
        assert_eq!(snap.counter("stage.sink.records_total"), stats.records);
        // All shard-pool queues fully drained at exit.
        assert_eq!(snap.gauge("chan.shard_in.depth"), 0);
        assert_eq!(snap.gauge("chan.shard_out.depth"), 0);
        assert_eq!(snap.gauge("chan.asm_in.depth"), 0);
        // Per-shard balance ledgers (the monitor panel's feed): each
        // shard saw every batch exactly once, the per-shard resolution
        // counts tile the aggregates, and every backlog drained.
        let mut cid_sum = 0;
        let mut fid_sum = 0;
        for s in 0..4 {
            assert_eq!(
                snap.counter(&format!("anon.shard{s}.batches_total")),
                batches,
                "shard {s} batch count"
            );
            cid_sum += snap.counter(&format!("anon.shard{s}.client_ids_total"));
            fid_sum += snap.counter(&format!("anon.shard{s}.file_ids_total"));
            assert_eq!(snap.gauge(&format!("anon.shard{s}.queue_depth")), 0);
        }
        assert_eq!(cid_sum, snap.counter("anon.shard.client_ids_total"));
        assert_eq!(fid_sum, snap.counter("anon.shard.file_ids_total"));
    }

    #[test]
    fn sharded_tail_rejects_bad_shard_count() {
        let result = std::panic::catch_unwind(|| {
            batched_dataset(
                frames_for(&mixed_msgs(4)),
                1,
                &PipelineOptions::default(),
                TailConfig {
                    batch_records: 8,
                    batch_queue: 2,
                    anon_shards: 3,
                },
                &Registry::disabled(),
            )
        });
        assert!(result.is_err(), "non-power-of-two shard count must panic");
    }

    #[test]
    fn batched_tail_resumes_from_serial_checkpoint() {
        // A checkpoint cut by the serial tail restores into the batched
        // one (and vice versa): the cut protocol is tail-agnostic.
        let frames = frames_for(&mixed_msgs(300));
        let opts = PipelineOptions {
            checkpoint_interval_us: 60_000_000,
            resume: None,
            faults: None,
            trace: None,
        };
        let (full, cps, _) = serial_dataset(frames.clone(), 2, &opts);
        let (cp, cp_bytes) = cps[1].clone();
        let scheme = PaperScheme::from_orders(
            16,
            ByteSelector::ALTERNATIVE,
            &cp.client_order,
            &cp.file_order,
        );
        let resume_opts = PipelineOptions {
            checkpoint_interval_us: 60_000_000,
            resume: Some(ResumePoint {
                records: cp.records,
                virtual_us: cp.virtual_us,
                next_checkpoint_us: cp.next_checkpoint_us,
            }),
            faults: None,
            trace: None,
        };
        let prefix = full[..cp_bytes as usize].to_vec();
        let mut tail_cps = Vec::new();
        let (_, _, _, writer) = run_capture_pipeline_batched(
            frames.into_iter(),
            4,
            scheme,
            None,
            &Registry::disabled(),
            &resume_opts,
            TailConfig {
                batch_records: 5,
                batch_queue: 2,
                anon_shards: 4,
            },
            DatasetWriter::resume(prefix, cp.records, cp_bytes),
            |c, b| tail_cps.push((c, b)),
        )
        .unwrap();
        let rebuilt = writer.finish().unwrap();
        assert!(rebuilt == full, "resumed batched dataset diverges");
        assert_eq!(&cps[2..], &tail_cps[..]);
    }

    #[test]
    fn direction_counting_sees_both_directions() {
        // Hand-build one frame in each direction.
        let mut frames = Vec::new();
        for (dir, client) in [(Direction::ToServer, 7), (Direction::FromServer, 7)] {
            for f in encapsulate(
                Message::StatusRequest { challenge: 1 }.encode(),
                ClientId(client),
                4672,
                dir,
                1,
                1500,
            ) {
                frames.push(TimedFrame {
                    ts: VirtualTime::ZERO,
                    bytes: f.to_bytes(),
                });
            }
        }
        let (stats, records) = run(frames, 1);
        assert_eq!(records.len(), 2);
        assert_eq!(stats.to_server, 1);
        assert_eq!(stats.from_server, 1);
    }
}
