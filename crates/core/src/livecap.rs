//! Live capture of the serving loop's own traffic.
//!
//! The paper's setup (§2.2) is a capture machine sniffing the UDP
//! traffic of a live eDonkey server, feeding a decode→anonymise
//! pipeline, *measuring* whatever it failed to keep up with. This
//! module is that capture machine for the loopback soak: a
//! [`PacketTap`] installed on [`etw_server::net::ServerNet`] pushes
//! every datagram that actually crossed the socket into a bounded
//! channel; a collector thread re-encapsulates the payloads into
//! ethernet frames — the exact input format of the unchanged capture
//! pipeline. When the collector cannot keep up, the tap drops and
//! *counts* (`capture.live.tap_dropped_total`): capture loss here is
//! measured, never simulated.
//!
//! Identity comes from the swarm's [`Roster`]: the swarm registers
//! every session's socket address before traffic flows, the collector
//! maps peer address → clientID the way the paper's capture point knew
//! its clients by source address.

use crate::pipeline::TimedFrame;
use crate::wirepath::{encapsulate, Direction};
use etw_faults::LinkDirection;
use etw_netsim::clock::VirtualTime;
use etw_server::net::PacketTap;
use etw_server::swarm::Roster;
use etw_telemetry::channel::{metered_bounded, MeteredReceiver, MeteredSender};
use etw_telemetry::{Counter, Registry};
use std::net::SocketAddr;
use std::thread::JoinHandle;

/// One datagram as the tap saw it on the wire.
struct RawPacket {
    dir: LinkDirection,
    peer: SocketAddr,
    bytes: Vec<u8>,
    now_us: u64,
}

/// The server-thread half: never blocks. A full channel means the
/// collector fell behind, and the datagram is lost *to the capture*
/// (the server already served it) — exactly the loss mode the paper
/// had to account for.
struct ChannelTap {
    tx: MeteredSender<RawPacket>,
    packets: Counter,
    dropped: Counter,
}

impl PacketTap for ChannelTap {
    fn packet(&mut self, dir: LinkDirection, peer: SocketAddr, payload: &[u8], now_us: u64) {
        self.packets.inc();
        let pkt = RawPacket {
            dir,
            peer,
            bytes: payload.to_vec(),
            now_us,
        };
        if self.tx.try_send(pkt).is_err() {
            self.dropped.inc();
        }
    }
}

/// What the collector gathered once the tap closed.
#[derive(Debug)]
pub struct CapturedTraffic {
    /// Ethernet frames in capture order, ready for the pipeline.
    pub frames: Vec<TimedFrame>,
    /// Datagrams the tap saw on the wire.
    pub tapped: u64,
    /// Datagrams lost because the capture channel was full.
    pub tap_dropped: u64,
    /// Datagrams from peers missing from the roster (skipped).
    pub unmapped: u64,
    /// The wall-clock µs of the first captured datagram (capture epoch).
    pub epoch_us: u64,
}

impl CapturedTraffic {
    /// Measured capture loss, as a fraction of datagrams on the wire.
    pub fn loss_fraction(&self) -> f64 {
        if self.tapped == 0 {
            0.0
        } else {
            self.tap_dropped as f64 / self.tapped as f64
        }
    }
}

/// A running live capture: the tap to install on the server, and the
/// collector thread assembling frames behind it.
pub struct LiveCapture {
    handle: JoinHandle<CapturedTraffic>,
    packets: Counter,
    dropped: Counter,
}

impl LiveCapture {
    /// Starts the collector and returns `(capture, tap)`; hand the tap
    /// to [`etw_server::net::ServerNet::with_tap`]. `queue_cap` bounds
    /// the capture channel — small caps under load produce *real*,
    /// counted capture loss.
    pub fn start(
        registry: &Registry,
        roster: &Roster,
        queue_cap: usize,
    ) -> (LiveCapture, Box<dyn PacketTap>) {
        let (tx, rx) = metered_bounded::<RawPacket>(queue_cap, registry, "live_tap");
        let packets = registry.counter("capture.live.tap_packets_total");
        let dropped = registry.counter("capture.live.tap_dropped_total");
        let unmapped = registry.counter("capture.live.unmapped_total");
        let tap = Box::new(ChannelTap {
            tx,
            packets: packets.clone(),
            dropped: dropped.clone(),
        });
        let roster = Roster::clone(roster);
        let handle = std::thread::Builder::new()
            .name("etw-livecap".into())
            .spawn(move || collect(rx, roster, unmapped))
            .expect("spawn live-capture collector");
        (
            LiveCapture {
                handle,
                packets,
                dropped,
            },
            tap,
        )
    }

    /// Joins the collector. Call only after the tap has been dropped
    /// (the server is shut down), or this blocks forever.
    pub fn finish(self) -> CapturedTraffic {
        let mut captured = match self.handle.join() {
            Ok(c) => c,
            Err(_) => CapturedTraffic {
                frames: Vec::new(),
                tapped: 0,
                tap_dropped: 0,
                unmapped: 0,
                epoch_us: 0,
            },
        };
        captured.tapped = self.packets.get();
        captured.tap_dropped = self.dropped.get();
        captured
    }
}

/// The collector loop: peer → clientID via the roster, payload →
/// ethernet frames via the same wire path the simulator uses, capture
/// timestamps on the soak's shared µs axis, rebased to the first
/// datagram.
fn collect(rx: MeteredReceiver<RawPacket>, roster: Roster, unmapped: Counter) -> CapturedTraffic {
    let mut frames = Vec::new();
    let mut ident: u16 = 1;
    let mut epoch_us: Option<u64> = None;
    let mut last_ts = 0u64;
    let mut skipped = 0u64;
    while let Ok(p) = rx.recv() {
        let cid = match roster.lock().get(&p.peer) {
            Some(c) => *c,
            None => {
                unmapped.inc();
                skipped += 1;
                continue;
            }
        };
        let epoch = *epoch_us.get_or_insert(p.now_us);
        // Monotonic clamp: the tap stamps before the channel, so a
        // reordered pair of threads cannot move time backwards.
        let mut ts = p.now_us.saturating_sub(epoch);
        if ts < last_ts {
            ts = last_ts;
        }
        last_ts = ts;
        let dir = match p.dir {
            LinkDirection::ToServer => Direction::ToServer,
            LinkDirection::FromServer => Direction::FromServer,
        };
        for f in encapsulate(p.bytes, cid, p.peer.port(), dir, ident, 1500) {
            frames.push(TimedFrame {
                ts: VirtualTime(ts),
                bytes: f.to_bytes(),
            });
        }
        ident = ident.wrapping_add(1);
        if ident == 0 {
            ident = 1;
        }
    }
    CapturedTraffic {
        frames,
        tapped: 0,
        tap_dropped: 0,
        unmapped: skipped,
        epoch_us: epoch_us.unwrap_or(0),
    }
}
