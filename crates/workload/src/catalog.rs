//! The synthetic file population.
//!
//! The catalog holds every *legitimate* file that exists in the simulated
//! network: its fileID (an MD4 digest, as required by the anonymiser's
//! uniformity assumption), name, size, kind, and two popularity ranks —
//! one for *providing* (how many clients share it → Fig. 4) and one for
//! *seeking* (how many clients search for it → Fig. 5). The two rankings
//! are correlated but not identical, as with real content (newly released
//! material is searched more than shared).

use crate::filesizes::{FileKind, FileSizeModel};
use crate::zipf::Zipf;
use etw_edonkey::ids::FileId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A word pool for generating file names and the search keywords clients
/// derive from them. Real pools are huge; 512 stems keeps names diverse
/// enough for realistic keyword collision rates at simulation scale.
fn keyword_pool() -> Vec<String> {
    let stems = [
        "live",
        "album",
        "remix",
        "concert",
        "studio",
        "session",
        "acoustic",
        "deluxe",
        "edition",
        "remaster",
        "vol",
        "part",
        "best",
        "hits",
        "collection",
        "anthology",
        "blue",
        "red",
        "black",
        "white",
        "golden",
        "silver",
        "midnight",
        "summer",
        "winter",
        "spring",
        "autumn",
        "night",
        "day",
        "dawn",
        "dusk",
        "storm",
        "river",
        "mountain",
        "ocean",
        "desert",
        "forest",
        "city",
        "street",
        "road",
        "heart",
        "soul",
        "mind",
        "dream",
        "shadow",
        "light",
        "fire",
        "ice",
        "king",
        "queen",
        "prince",
        "knight",
        "dragon",
        "wolf",
        "eagle",
        "lion",
        "star",
        "moon",
        "sun",
        "planet",
        "galaxy",
        "cosmos",
        "nebula",
        "comet",
    ];
    let mut pool = Vec::with_capacity(stems.len() * 8);
    for s in &stems {
        pool.push((*s).to_owned());
        for i in 1..8 {
            pool.push(format!("{s}{i}"));
        }
    }
    pool
}

/// One synthetic file.
#[derive(Clone, Debug)]
pub struct CatalogFile {
    /// MD4-derived fileID.
    pub id: FileId,
    /// File name (keywords + extension).
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Broad content class.
    pub kind: FileKind,
    /// Keywords appearing in the name (lowercase).
    pub keywords: Vec<String>,
}

/// The file population plus its popularity structure.
pub struct Catalog {
    files: Vec<CatalogFile>,
    /// Zipf over *provider* popularity: rank k of this distribution maps
    /// to file index `provide_perm[k]`.
    provide_zipf: Zipf,
    provide_perm: Vec<u32>,
    /// Zipf over *search* popularity with its own permutation.
    seek_zipf: Zipf,
    seek_perm: Vec<u32>,
}

/// Parameters for catalog construction.
#[derive(Clone, Debug)]
pub struct CatalogParams {
    /// Number of legitimate files.
    pub n_files: usize,
    /// Zipf exponent for provider popularity (Fig. 4 slope; ~1 gives the
    /// paper-like decay).
    pub provide_exponent: f64,
    /// Zipf exponent for search popularity (Fig. 5 slope).
    pub seek_exponent: f64,
    /// Correlation knob in `[0,1]`: probability that a file keeps the same
    /// rank in both rankings.
    pub rank_correlation: f64,
}

impl Default for CatalogParams {
    fn default() -> Self {
        CatalogParams {
            n_files: 50_000,
            provide_exponent: 0.95,
            seek_exponent: 1.05,
            rank_correlation: 0.6,
        }
    }
}

impl Catalog {
    /// Builds a deterministic catalog.
    pub fn generate(params: &CatalogParams, seed: u64) -> Self {
        assert!(params.n_files > 0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6361_7461); // "cata"
        let pool = keyword_pool();
        let size_model = FileSizeModel::paper_like();
        let mut files = Vec::with_capacity(params.n_files);
        for i in 0..params.n_files {
            let (size, kind) = size_model.sample(&mut rng);
            let n_kw = rng.gen_range(2..=4);
            let keywords: Vec<String> = (0..n_kw)
                .map(|_| pool[rng.gen_range(0..pool.len())].clone())
                .collect();
            let name = format!("{}.{}", keywords.join(" "), kind.extension());
            files.push(CatalogFile {
                id: FileId::of_identity(i as u64),
                name,
                size,
                kind,
                keywords,
            });
        }
        // Provider ranking: a random permutation of files.
        let mut provide_perm: Vec<u32> = (0..params.n_files as u32).collect();
        shuffle(&mut provide_perm, &mut rng);
        // Seek ranking: correlated with the provider ranking — keep rank
        // with probability `rank_correlation`, else move to a random slot.
        let mut seek_perm = provide_perm.clone();
        for k in 0..seek_perm.len() {
            if !rng.gen_bool(params.rank_correlation) {
                let j = rng.gen_range(0..seek_perm.len());
                seek_perm.swap(k, j);
            }
        }
        Catalog {
            files,
            provide_zipf: Zipf::new(params.n_files, params.provide_exponent),
            provide_perm,
            seek_zipf: Zipf::new(params.n_files, params.seek_exponent),
            seek_perm,
        }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// File by index.
    pub fn file(&self, idx: usize) -> &CatalogFile {
        &self.files[idx]
    }

    /// All files.
    pub fn files(&self) -> &[CatalogFile] {
        &self.files
    }

    /// Draws a file index with provider-popularity weighting (used when a
    /// client picks which files it shares).
    pub fn sample_provided<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.provide_perm[self.provide_zipf.sample(rng)] as usize
    }

    /// Draws a file index with search-popularity weighting (used when a
    /// client picks what to look for).
    pub fn sample_sought<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.seek_perm[self.seek_zipf.sample(rng)] as usize
    }
}

fn shuffle<R: Rng + ?Sized>(v: &mut [u32], rng: &mut R) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small() -> Catalog {
        Catalog::generate(
            &CatalogParams {
                n_files: 2000,
                ..CatalogParams::default()
            },
            7,
        )
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Catalog::generate(&CatalogParams::default(), 3);
        let b = Catalog::generate(&CatalogParams::default(), 3);
        assert_eq!(a.len(), b.len());
        for i in [0usize, 100, 4999] {
            assert_eq!(a.file(i).id, b.file(i).id);
            assert_eq!(a.file(i).name, b.file(i).name);
            assert_eq!(a.file(i).size, b.file(i).size);
        }
    }

    #[test]
    fn file_ids_unique() {
        let c = small();
        let ids: HashSet<_> = c.files().iter().map(|f| f.id).collect();
        assert_eq!(ids.len(), c.len());
    }

    #[test]
    fn names_contain_keywords_and_extension() {
        let c = small();
        for f in c.files().iter().take(200) {
            for kw in &f.keywords {
                assert!(f.name.contains(kw.as_str()), "{} missing {kw}", f.name);
            }
            assert!(f.name.ends_with(f.kind.extension()));
        }
    }

    #[test]
    fn provider_sampling_is_skewed() {
        let c = small();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; c.len()];
        for _ in 0..50_000 {
            counts[c.sample_provided(&mut rng)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        // Heavy head…
        assert!(max > 2000, "max {max}");
        // …and a long populated tail.
        assert!(nonzero > 700, "nonzero {nonzero}");
    }

    #[test]
    fn seek_and_provide_rankings_differ_but_correlate() {
        let c = small();
        let mut rng = StdRng::seed_from_u64(2);
        let top_provided: HashSet<usize> = (0..2000).map(|_| c.sample_provided(&mut rng)).collect();
        let top_sought: HashSet<usize> = (0..2000).map(|_| c.sample_sought(&mut rng)).collect();
        let overlap = top_provided.intersection(&top_sought).count();
        assert!(overlap > 0, "rankings should correlate");
        assert_ne!(top_provided, top_sought, "rankings should differ");
    }

    #[test]
    fn sampling_covers_popular_head_consistently() {
        // The most-provided file must be hit very often.
        let c = small();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(c.sample_provided(&mut rng)).or_insert(0u32) += 1;
        }
        let best = counts.values().max().copied().unwrap();
        assert!(best > 1000, "head not heavy enough: {best}");
    }
}
