//! File-size model (paper §3.3, Fig. 8).
//!
//! The paper's size histogram shows that "even though in principle files
//! exchanged in P2P systems may have any size, their actual sizes are
//! strongly related to the space capacity of classical exchange and
//! storage supports": a large mass of small (music) files, sharp peaks at
//! 700 MB (CD-ROM) and at its fractions (350/233/175 MB) and multiples
//! (1.4 GB), plus a peak at 1 GB (DVD images split into 1 GB pieces).
//!
//! [`FileSizeModel`] is the corresponding mixture distribution. Sizes are
//! `u32` bytes, as in the eDonkey v1 protocol (4 GB file limit).

use crate::zipf::LogNormal;
use rand::Rng;

/// Mega-byte in bytes.
pub const MB: u64 = 1024 * 1024;

/// The media-support peaks of Fig. 8, in bytes.
pub const PEAKS: [u64; 6] = [
    700 * MB,  // CD-ROM
    350 * MB,  // 1/2 CD
    233 * MB,  // 1/3 CD (paper labels 230 MB)
    175 * MB,  // 1/4 CD
    1400 * MB, // 2 × CD
    1024 * MB, // 1 GB split pieces
];

/// Mixture component weights (probabilities; sum to 1).
#[derive(Clone, Copy, Debug)]
pub struct SizeMixture {
    /// Small audio files (log-normal around ~4 MB).
    pub audio: f64,
    /// Other small files (documents, images, software; broad log-normal).
    pub misc_small: f64,
    /// CD-ROM rips at 700 MB.
    pub cd: f64,
    /// Half/third/quarter CD pieces.
    pub cd_fractions: f64,
    /// Double-CD (1.4 GB).
    pub cd_double: f64,
    /// 1 GB split pieces of very large files.
    pub gb_piece: f64,
    /// Fully dispersed sizes (uniform log scale; the "any size" floor).
    pub diffuse: f64,
}

impl SizeMixture {
    /// Weights eyeballed from Fig. 8: the small-file mass dominates file
    /// *counts*, the CD peaks dominate the visible spikes.
    pub fn paper_like() -> Self {
        SizeMixture {
            audio: 0.55,
            misc_small: 0.18,
            cd: 0.09,
            cd_fractions: 0.06,
            cd_double: 0.02,
            gb_piece: 0.04,
            diffuse: 0.06,
        }
    }

    fn total(&self) -> f64 {
        self.audio
            + self.misc_small
            + self.cd
            + self.cd_fractions
            + self.cd_double
            + self.gb_piece
            + self.diffuse
    }
}

/// The Fig. 8 file-size generator.
#[derive(Clone, Debug)]
pub struct FileSizeModel {
    mixture: SizeMixture,
    audio: LogNormal,
    misc: LogNormal,
}

/// Broad class of a generated file (drives the filetype tag and name
/// extension in the catalog).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FileKind {
    /// Music (small file).
    Audio,
    /// Movie / CD or DVD image (large file).
    Video,
    /// Documents, software, images (small to medium).
    Other,
}

impl FileKind {
    /// The eDonkey filetype tag value.
    pub fn tag_value(&self) -> &'static str {
        match self {
            FileKind::Audio => "Audio",
            FileKind::Video => "Video",
            FileKind::Other => "Pro",
        }
    }

    /// A plausible filename extension.
    pub fn extension(&self) -> &'static str {
        match self {
            FileKind::Audio => "mp3",
            FileKind::Video => "avi",
            FileKind::Other => "zip",
        }
    }
}

impl Default for FileSizeModel {
    fn default() -> Self {
        Self::paper_like()
    }
}

impl FileSizeModel {
    /// The Fig. 8 mixture.
    pub fn paper_like() -> Self {
        FileSizeModel {
            mixture: SizeMixture::paper_like(),
            // Audio: median ≈ e^15.2 ≈ 4.0 MB, sd 0.45 → 2–8 MB bulk.
            audio: LogNormal {
                mu: 15.2,
                sigma: 0.45,
            },
            // Misc: median ≈ e^13 ≈ 440 KB, broad.
            misc: LogNormal {
                mu: 13.0,
                sigma: 1.6,
            },
        }
    }

    /// Draws `(size_bytes, kind)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (u32, FileKind) {
        let m = &self.mixture;
        let mut u: f64 = rng.gen_range(0.0..m.total());
        let mut take = |w: f64| {
            if u < w {
                true
            } else {
                u -= w;
                false
            }
        };
        if take(m.audio) {
            let s = self.audio.sample(rng).clamp(100_000.0, 30e6);
            return (s as u32, FileKind::Audio);
        }
        if take(m.misc_small) {
            let s = self.misc.sample(rng).clamp(1_000.0, 100e6);
            return (s as u32, FileKind::Other);
        }
        if take(m.cd) {
            return (Self::peaked(700 * MB, rng), FileKind::Video);
        }
        if take(m.cd_fractions) {
            let base = [350 * MB, 233 * MB, 175 * MB][rng.gen_range(0..3)];
            return (Self::peaked(base, rng), FileKind::Video);
        }
        if take(m.cd_double) {
            return (Self::peaked(1400 * MB, rng), FileKind::Video);
        }
        if take(m.gb_piece) {
            return (Self::peaked(1024 * MB, rng), FileKind::Video);
        }
        // Diffuse: log-uniform between 10 KB and 2 GB.
        let lo = (10_000f64).ln();
        let hi = (2e9f64).ln();
        let s = rng.gen_range(lo..hi).exp();
        let kind = if s > 100e6 {
            FileKind::Video
        } else {
            FileKind::Other
        };
        ((s as u64).min(u32::MAX as u64) as u32, kind)
    }

    /// A sharp peak: the nominal size, occasionally nudged by a few final
    /// bytes (real rips differ slightly; the histogram bins of Fig. 8
    /// still show them as spikes because sizes are plotted in KB).
    fn peaked<R: Rng + ?Sized>(nominal: u64, rng: &mut R) -> u32 {
        let jitter: i64 = if rng.gen_bool(0.7) {
            0
        } else {
            rng.gen_range(-512..=512) * 1024
        };
        ((nominal as i64 + jitter).max(1) as u64).min(u32::MAX as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn draw_many(n: usize) -> Vec<(u32, FileKind)> {
        let m = FileSizeModel::paper_like();
        let mut rng = StdRng::seed_from_u64(42);
        (0..n).map(|_| m.sample(&mut rng)).collect()
    }

    #[test]
    fn small_files_dominate_counts() {
        let draws = draw_many(20_000);
        let small = draws.iter().filter(|(s, _)| *s < 50_000_000).count();
        assert!(
            small as f64 > 0.6 * draws.len() as f64,
            "small fraction {}",
            small as f64 / draws.len() as f64
        );
    }

    #[test]
    fn peaks_present_in_kb_histogram() {
        let draws = draw_many(50_000);
        let mut kb_hist: HashMap<u64, u64> = HashMap::new();
        for (s, _) in &draws {
            *kb_hist.entry(*s as u64 / 1024).or_default() += 1;
        }
        // The exact 700 MB KB bin must be a big spike.
        let cd_bin = kb_hist.get(&(700 * 1024)).copied().unwrap_or(0);
        assert!(cd_bin > 1000, "700MB bin count {cd_bin}");
        let gb_bin = kb_hist.get(&(1024 * 1024)).copied().unwrap_or(0);
        assert!(gb_bin > 400, "1GB bin count {gb_bin}");
        // Peaks dwarf their immediate (non-jitter) neighbourhood.
        let neighbour = kb_hist.get(&(700 * 1024 + 5_000)).copied().unwrap_or(0);
        assert!(cd_bin > neighbour * 10);
    }

    #[test]
    fn audio_files_are_audio_sized() {
        let draws = draw_many(20_000);
        for (s, kind) in draws {
            if kind == FileKind::Audio {
                assert!((100_000..=30_000_000).contains(&s), "audio size {s}");
            }
        }
    }

    #[test]
    fn kinds_all_represented() {
        let draws = draw_many(5_000);
        let mut seen = HashMap::new();
        for (_, k) in draws {
            *seen.entry(k).or_insert(0u32) += 1;
        }
        assert!(seen.len() == 3, "{seen:?}");
        assert!(seen[&FileKind::Audio] > seen[&FileKind::Video]);
    }

    #[test]
    fn sizes_fit_u32_protocol_limit() {
        // By construction sizes are u32; the largest peak (1.4 GB) fits.
        assert!(1400 * MB < u32::MAX as u64);
        let draws = draw_many(10_000);
        assert!(draws.iter().all(|(s, _)| *s > 0));
    }

    #[test]
    fn kind_metadata_helpers() {
        assert_eq!(FileKind::Audio.tag_value(), "Audio");
        assert_eq!(FileKind::Audio.extension(), "mp3");
        assert_eq!(FileKind::Video.extension(), "avi");
    }
}
