//! # etw-workload — the synthetic eDonkey population
//!
//! The paper measured a live population of ~90 M clients; that network no
//! longer exists, so this crate generates a population whose *behavioural
//! structure* matches what the paper reports (DESIGN.md §5 documents the
//! substitution):
//!
//! * [`zipf`] — heavy-tailed samplers (Zipf, bounded Pareto, log-normal);
//! * [`filesizes`] — the Fig. 8 file-size mixture (audio mass, 700 MB CD
//!   peak and its fractions/multiples, 1 GB split pieces);
//! * [`catalog`] — the file population with distinct provider- and
//!   search-popularity rankings (Figs. 4–5);
//! * [`clients`] — behaviour classes incl. the exact-52-queries client
//!   cap (Fig. 7) and share-directory limits (Fig. 6), plus polluters
//!   (Fig. 3);
//! * [`generator`] — the time-ordered query stream fed to the server and
//!   capture pipeline.
//!
//! ## Example
//!
//! ```
//! use etw_workload::catalog::{Catalog, CatalogParams};
//! use etw_workload::clients::{Population, PopulationParams};
//! use etw_workload::generator::{GeneratorParams, TrafficGenerator};
//!
//! let catalog = Catalog::generate(&CatalogParams { n_files: 500, ..Default::default() }, 1);
//! let population = Population::generate(
//!     &PopulationParams { n_clients: 50, id_space_bits: 16, ..Default::default() }, 2);
//! let params = GeneratorParams { duration_secs: 600, ..Default::default() };
//! let queries: Vec<_> = TrafficGenerator::new(&catalog, &population, params, 3).collect();
//! assert!(!queries.is_empty());
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod clients;
pub mod filesizes;
pub mod generator;
pub mod session;
pub mod zipf;

pub use catalog::{Catalog, CatalogFile, CatalogParams};
pub use clients::{ClassMix, ClientClass, ClientProfile, Population, PopulationParams};
pub use filesizes::{FileKind, FileSizeModel};
pub use generator::{GeneratorParams, QueryEvent, TrafficGenerator};
pub use session::{
    MergedSessions, MgmtOp, NoiseDraws, PubEntry, SessionShard, SourceBlobs, SrcEvent, SrcOp,
    WireParams,
};
pub use zipf::{BoundedPareto, LogNormal, Zipf};
