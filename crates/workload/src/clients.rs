//! Client behaviour classes (paper §3.2).
//!
//! The paper's per-client distributions are emphatically *not* simple
//! power laws: Fig. 6 shows "an unexpected large number of clients
//! providing a few thousands of files" (client-software limits on shared
//! directories), and Fig. 7 shows "a clear peak for the number of peers
//! asking for 52 files" (a query cap in a widely used client) on top of a
//! multi-regime decay that suggests "some clients scanning the network".
//! The class mix below generates exactly those artefacts:
//!
//! | class | models | figure artefact |
//! |---|---|---|
//! | `Casual` | ordinary users | the bulk at small x (Figs. 6–7) |
//! | `Heavy` | power users | the heavy tails |
//! | `Scanner` | crawlers/monitors | Fig. 7's wide high-x regime |
//! | `CappedSearcher` | the 52-query client software | Fig. 7's spike at 52 |
//! | `BulkSharer` | share-directory-limited clients | Fig. 6's bump at a few thousand |
//! | `Polluter` | pollution injectors | Fig. 3's buckets 0/256 |

use crate::zipf::BoundedPareto;
use etw_edonkey::ids::ClientId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The famous query cap observed in the paper (Fig. 7): a peak of clients
/// asking for exactly 52 files.
pub const CAPPED_SEARCH_COUNT: u32 = 52;

/// Share-directory limits producing Fig. 6's "few thousands" bump.
pub const SHARE_LIMITS: [u32; 2] = [1_000, 2_000];

/// Behaviour class of a synthetic client.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ClientClass {
    /// Ordinary user: a handful of shares and searches.
    Casual,
    /// Power user: hundreds-to-thousands of shares and searches.
    Heavy,
    /// Network scanner: asks about very many files, shares almost none.
    Scanner,
    /// Client software capped at exactly 52 distinct file queries.
    CappedSearcher,
    /// Client whose shared-directory size hits a software limit.
    BulkSharer,
    /// Pollution injector announcing forged fileIDs.
    Polluter,
}

impl ClientClass {
    /// All classes.
    pub const ALL: [ClientClass; 6] = [
        ClientClass::Casual,
        ClientClass::Heavy,
        ClientClass::Scanner,
        ClientClass::CappedSearcher,
        ClientClass::BulkSharer,
        ClientClass::Polluter,
    ];
}

/// Class mixture (probabilities; normalised at sampling time).
#[derive(Clone, Copy, Debug)]
pub struct ClassMix {
    /// Weight of [`ClientClass::Casual`].
    pub casual: f64,
    /// Weight of [`ClientClass::Heavy`].
    pub heavy: f64,
    /// Weight of [`ClientClass::Scanner`].
    pub scanner: f64,
    /// Weight of [`ClientClass::CappedSearcher`].
    pub capped: f64,
    /// Weight of [`ClientClass::BulkSharer`].
    pub bulk: f64,
    /// Weight of [`ClientClass::Polluter`].
    pub polluter: f64,
}

impl ClassMix {
    /// Mixture tuned to reproduce the paper's figure shapes.
    pub fn paper_like() -> Self {
        ClassMix {
            casual: 0.62,
            heavy: 0.17,
            scanner: 0.015,
            capped: 0.12,
            bulk: 0.055,
            polluter: 0.02,
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ClientClass {
        let total =
            self.casual + self.heavy + self.scanner + self.capped + self.bulk + self.polluter;
        let mut u = rng.gen_range(0.0..total);
        for (w, c) in [
            (self.casual, ClientClass::Casual),
            (self.heavy, ClientClass::Heavy),
            (self.scanner, ClientClass::Scanner),
            (self.capped, ClientClass::CappedSearcher),
            (self.bulk, ClientClass::BulkSharer),
            (self.polluter, ClientClass::Polluter),
        ] {
            if u < w {
                return c;
            }
            u -= w;
        }
        ClientClass::Casual
    }
}

/// Static profile of one synthetic client.
#[derive(Clone, Debug)]
pub struct ClientProfile {
    /// Wire clientID (drawn inside the configured ID space).
    pub id: ClientId,
    /// Behaviour class.
    pub class: ClientClass,
    /// TCP port announced to the server.
    pub port: u16,
    /// Legitimate files this client will announce.
    pub n_shared: u32,
    /// Forged fileIDs this client will announce (polluters only).
    pub n_forged: u32,
    /// Distinct files this client will ask about.
    pub n_asks: u32,
}

/// Population generation parameters.
#[derive(Clone, Debug)]
pub struct PopulationParams {
    /// Number of clients.
    pub n_clients: usize,
    /// clientIDs are drawn uniformly from `[0, 2^id_space_bits)`. Must
    /// match the anonymiser's direct-array width.
    pub id_space_bits: u32,
    /// Class mixture.
    pub mix: ClassMix,
    /// Upper bound on a scanner's ask count (scaled to population size;
    /// the paper's scanners reach ~1e5 asks at 90 M-client scale).
    pub scanner_max_asks: u32,
    /// Upper bound on a heavy client's share count.
    pub heavy_max_shared: u32,
}

impl Default for PopulationParams {
    fn default() -> Self {
        PopulationParams {
            n_clients: 10_000,
            id_space_bits: 24,
            mix: ClassMix::paper_like(),
            scanner_max_asks: 20_000,
            heavy_max_shared: 4_000,
        }
    }
}

/// The full synthetic client population.
pub struct Population {
    clients: Vec<ClientProfile>,
}

impl Population {
    /// Generates a deterministic population.
    pub fn generate(params: &PopulationParams, seed: u64) -> Self {
        assert!(params.n_clients > 0);
        assert!((1..=32).contains(&params.id_space_bits));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x706f_7075); // "popu"
        let space = 1u64 << params.id_space_bits;
        let mut used = std::collections::HashSet::with_capacity(params.n_clients);
        let clients = (0..params.n_clients)
            .map(|_| {
                // Distinct wire IDs: real clients at one server have
                // distinct clientIDs at any given time.
                let id = loop {
                    let candidate = rng.gen_range(0..space) as u32;
                    if used.insert(candidate) {
                        break ClientId(candidate);
                    }
                };
                let class = params.mix.sample(&mut rng);
                Self::profile(id, class, params, &mut rng)
            })
            .collect();
        Population { clients }
    }

    fn profile(
        id: ClientId,
        class: ClientClass,
        params: &PopulationParams,
        rng: &mut StdRng,
    ) -> ClientProfile {
        let port = 4660 + rng.gen_range(0..16) as u16;
        let (n_shared, n_forged, n_asks) = match class {
            ClientClass::Casual => {
                let shared = if rng.gen_bool(0.35) {
                    0 // pure leechers
                } else {
                    BoundedPareto::new(1, 60, 1.4).sample(rng) as u32
                };
                let asks = BoundedPareto::new(1, 120, 1.25).sample(rng) as u32;
                (shared, 0, asks)
            }
            ClientClass::Heavy => {
                let shared =
                    BoundedPareto::new(20, params.heavy_max_shared as u64, 1.05).sample(rng) as u32;
                let asks = BoundedPareto::new(10, 3_000, 1.05).sample(rng) as u32;
                (shared, 0, asks)
            }
            ClientClass::Scanner => {
                // Scanners ask about orders of magnitude more files than
                // anyone else; scale the floor with the configured cap so
                // small test configurations stay valid.
                let hi = params.scanner_max_asks.max(100) as u64;
                let lo = (hi / 10).clamp(50, hi);
                let asks = BoundedPareto::new(lo, hi, 0.9).sample(rng) as u32;
                (rng.gen_range(0..5), 0, asks)
            }
            ClientClass::CappedSearcher => {
                let shared = if rng.gen_bool(0.5) {
                    0
                } else {
                    BoundedPareto::new(1, 40, 1.4).sample(rng) as u32
                };
                (shared, 0, CAPPED_SEARCH_COUNT)
            }
            ClientClass::BulkSharer => {
                let limit = SHARE_LIMITS[rng.gen_range(0..SHARE_LIMITS.len())];
                // Most limited clients sit exactly at the cap; some just
                // below (directories slightly under the limit).
                let shared = if rng.gen_bool(0.7) {
                    limit
                } else {
                    limit - rng.gen_range(1..50)
                };
                let asks = BoundedPareto::new(1, 200, 1.2).sample(rng) as u32;
                (shared, 0, asks)
            }
            ClientClass::Polluter => {
                let forged = BoundedPareto::new(200, 5_000, 0.8).sample(rng) as u32;
                (0, forged, rng.gen_range(0..10))
            }
        };
        ClientProfile {
            id,
            class,
            port,
            n_shared,
            n_forged,
            n_asks,
        }
    }

    /// All client profiles.
    pub fn clients(&self) -> &[ClientProfile] {
        &self.clients
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// True when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Clients of a given class (test/report helper).
    pub fn of_class(&self, class: ClientClass) -> impl Iterator<Item = &ClientProfile> {
        self.clients.iter().filter(move |c| c.class == class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(n: usize) -> Population {
        Population::generate(
            &PopulationParams {
                n_clients: n,
                id_space_bits: 20,
                ..PopulationParams::default()
            },
            11,
        )
    }

    #[test]
    fn deterministic() {
        let a = pop(2000);
        let b = pop(2000);
        for (x, y) in a.clients().iter().zip(b.clients()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.class, y.class);
            assert_eq!(x.n_shared, y.n_shared);
        }
    }

    #[test]
    fn ids_distinct() {
        let p = pop(5000);
        let ids: std::collections::HashSet<_> = p.clients().iter().map(|c| c.id).collect();
        assert_eq!(ids.len(), p.len());
    }

    #[test]
    fn all_classes_present_at_scale() {
        let p = pop(5000);
        for class in ClientClass::ALL {
            assert!(
                p.of_class(class).next().is_some(),
                "class {class:?} missing"
            );
        }
    }

    #[test]
    fn capped_searchers_ask_exactly_52() {
        let p = pop(5000);
        for c in p.of_class(ClientClass::CappedSearcher) {
            assert_eq!(c.n_asks, CAPPED_SEARCH_COUNT);
        }
        // And they are numerous enough to make a visible spike.
        let n = p.of_class(ClientClass::CappedSearcher).count();
        assert!(n > 300, "only {n} capped searchers");
    }

    #[test]
    fn bulk_sharers_cluster_at_limits() {
        let p = pop(8000);
        let at_limit = p
            .of_class(ClientClass::BulkSharer)
            .filter(|c| SHARE_LIMITS.contains(&c.n_shared))
            .count();
        let total = p.of_class(ClientClass::BulkSharer).count();
        assert!(total > 100);
        assert!(
            at_limit as f64 > 0.5 * total as f64,
            "{at_limit}/{total} at limit"
        );
    }

    #[test]
    fn polluters_forge_and_share_nothing() {
        let p = pop(8000);
        for c in p.of_class(ClientClass::Polluter) {
            assert_eq!(c.n_shared, 0);
            assert!(c.n_forged >= 200);
        }
    }

    #[test]
    fn scanners_ask_orders_of_magnitude_more() {
        let p = pop(8000);
        let max_casual = p
            .of_class(ClientClass::Casual)
            .map(|c| c.n_asks)
            .max()
            .unwrap();
        let min_scanner = p
            .of_class(ClientClass::Scanner)
            .map(|c| c.n_asks)
            .min()
            .unwrap();
        assert!(min_scanner > max_casual);
    }

    #[test]
    fn share_counts_span_orders_of_magnitude() {
        let p = pop(8000);
        let max = p.clients().iter().map(|c| c.n_shared).max().unwrap();
        let ones = p.clients().iter().filter(|c| c.n_shared == 1).count();
        assert!(max >= 1000, "max {max}");
        assert!(ones > 100, "ones {ones}");
    }

    #[test]
    fn ids_within_configured_space() {
        let p = Population::generate(
            &PopulationParams {
                n_clients: 1000,
                id_space_bits: 12,
                ..PopulationParams::default()
            },
            1,
        );
        assert!(p.clients().iter().all(|c| c.id.raw() < (1 << 12)));
    }
}
