//! Heavy-tailed samplers for the synthetic population.
//!
//! The paper's basic analyses (§3) show that file popularity — both the
//! number of providers and the number of seekers per file — decays
//! "reasonably well fitted by a power-law", and that client behaviour
//! spans several orders of magnitude. The generators here produce those
//! regimes: a Zipf ranking over files and bounded Pareto draws for
//! per-client activity volumes.

use rand::Rng;

/// Zipf sampler over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k+1)^s`.
///
/// Sampling is by Walker's alias method — O(1) per draw, exact, and
/// deterministic given the RNG. The cumulative table is kept for
/// [`pmf`](Zipf::pmf) queries.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
    /// Alias acceptance thresholds: draw column `i`, accept `i` with
    /// probability `prob[i]`, otherwise take `alias[i]`.
    prob: Vec<f64>,
    alias: Vec<u32>,
    s: f64,
}

impl Zipf {
    /// Builds the table for `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "empty Zipf support");
        assert!(s > 0.0, "exponent must be positive");
        assert!(n <= u32::MAX as usize, "Zipf support too large");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }

        // Vose's stable construction: split columns into under- and
        // over-full by scaled weight, pair them off so every column is
        // exactly full.
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut scaled: Vec<f64> = (0..n)
            .map(|k| {
                let prev = if k == 0 { 0.0 } else { cumulative[k - 1] };
                (cumulative[k] - prev) * n as f64
            })
            .collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (k, &w) in scaled.iter().enumerate() {
            if w < 1.0 {
                small.push(k as u32);
            } else {
                large.push(k as u32);
            }
        }
        while let (Some(&s_), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s_ as usize] = scaled[s_ as usize];
            alias[s_ as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s_ as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are exactly full modulo rounding.
        for &k in small.iter().chain(large.iter()) {
            prob[k as usize] = 1.0;
        }

        Zipf {
            cumulative,
            prob,
            alias,
            s,
        }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        let u: f64 = rng.gen();
        if u < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Probability of a given rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        let prev = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        self.cumulative[rank] - prev
    }
}

/// Bounded Pareto (discrete): draws integers in `[min, max]` with tail
/// exponent `alpha`; used for per-client volumes (files shared, searches
/// issued), which the paper shows spanning several orders of magnitude.
#[derive(Clone, Copy, Debug)]
pub struct BoundedPareto {
    /// Inclusive lower bound.
    pub min: u64,
    /// Inclusive upper bound.
    pub max: u64,
    /// Tail exponent (larger = lighter tail).
    pub alpha: f64,
}

impl BoundedPareto {
    /// Builds a sampler; panics on an empty range or non-positive alpha.
    pub fn new(min: u64, max: u64, alpha: f64) -> Self {
        assert!(min >= 1 && max >= min, "invalid Pareto range");
        assert!(alpha > 0.0);
        BoundedPareto { min, max, alpha }
    }

    /// Draws one value by inverse transform of the truncated CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let (l, h, a) = (self.min as f64, self.max as f64 + 1.0, self.alpha);
        let u: f64 = rng.gen_range(0.0..1.0);
        let la = l.powf(-a);
        let ha = h.powf(-a);
        let x = (la - u * (la - ha)).powf(-1.0 / a);
        (x.floor() as u64).clamp(self.min, self.max)
    }
}

/// Log-normal sampler (for file-size mixture components).
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Std-dev of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
        // Rank 0 frequency ≈ pmf(0) = 1/H_1000 ≈ 0.1336.
        let f0 = counts[0] as f64 / 50_000.0;
        assert!((f0 - z.pmf(0)).abs() < 0.01, "f0 {f0} vs pmf {}", z.pmf(0));
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(500, 1.4);
        let total: f64 = (0..500).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.len(), 500);
        assert!((z.exponent() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn zipf_higher_exponent_more_skew() {
        let mut rng = StdRng::seed_from_u64(2);
        let gentle = Zipf::new(1000, 0.8);
        let steep = Zipf::new(1000, 2.0);
        let hit0 = |z: &Zipf, rng: &mut StdRng| {
            (0..20_000).filter(|_| z.sample(rng) == 0).count() as f64 / 20_000.0
        };
        assert!(hit0(&steep, &mut rng) > hit0(&gentle, &mut rng) * 2.0);
    }

    #[test]
    fn zipf_covers_support() {
        let z = Zipf::new(5, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..5000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pareto_respects_bounds() {
        let p = BoundedPareto::new(1, 5000, 1.2);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20_000 {
            let v = p.sample(&mut rng);
            assert!((1..=5000).contains(&v));
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let p = BoundedPareto::new(1, 100_000, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let draws: Vec<u64> = (0..50_000).map(|_| p.sample(&mut rng)).collect();
        let ones = draws.iter().filter(|&&v| v == 1).count();
        // P(X > 1000) ≈ 1e-3 at alpha=1 over this range → ≈50 of 50 000.
        let big = draws.iter().filter(|&&v| v > 1_000).count();
        // Mass concentrates at the bottom, but the tail is populated —
        // "several orders of magnitude" as in the paper's Figs. 6–7.
        assert!(ones > draws.len() / 4, "ones {ones}");
        assert!(big > 15, "big {big}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let ln = LogNormal {
            mu: 15.0,
            sigma: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let mut draws: Vec<f64> = (0..9001).map(|_| ln.sample(&mut rng)).collect();
        draws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = draws[4500];
        let expect = 15.0f64.exp();
        assert!(
            (median / expect - 1.0).abs() < 0.1,
            "median {median} vs {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "empty Zipf support")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}
