//! Sharded per-client session generator — the parallel traffic source.
//!
//! [`TrafficGenerator`](crate::generator::TrafficGenerator) drives every
//! client from one shared RNG, so its draw sequence depends on the global
//! interleaving of client events and cannot be partitioned. This module
//! re-derives the same behavioural model (same phase machine, same
//! distributions, same forged-ID scheme) from a **per-client** RNG seeded
//! by `(campaign seed, global client index)`. Every draw a client ever
//! makes — session behaviour *and* the wire-level randomness the capture
//! path needs (corruption, TCP/UDP noise) — comes from its own stream,
//! which makes the emitted event sequence invariant under any partition
//! of the population: shard workers own disjoint client subsets and a
//! k-way merge on `(t_us, gidx)` reproduces the exact single-shard order
//! (each client has at most one pending event, and `gidx` breaks ties the
//! same way the serial heap does).
//!
//! Events carry the query already encoded to wire bytes (built from
//! per-file blobs precomputed once in [`SourceBlobs`]) plus a compact
//! [`SrcOp`] so the downstream per-shard server indexes never re-decode.

use crate::catalog::Catalog;
use crate::clients::Population;
use crate::generator::GeneratorParams;
use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::tags::special;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;

/// eDonkey datagram marker byte.
const MARKER: u8 = 0xE3;

/// Wire-level randomness parameters, pre-drawn per event in the client
/// stream so frame synthesis downstream stays partition-invariant.
#[derive(Clone, Debug)]
pub struct WireParams {
    /// Probability a datagram is corrupted in flight.
    pub p_corrupt: f64,
    /// Probability corruption is structural (truncation) rather than a
    /// well-formed-header/garbage-body replacement.
    pub p_corrupt_structural: f64,
    /// Probability a query event is accompanied by a TCP flight.
    pub p_tcp_noise: f64,
    /// Probability a query event is accompanied by a stray UDP datagram.
    pub p_udp_noise: f64,
}

/// Management queries (answered statically by the directory server).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MgmtOp {
    /// `StatusRequest`: echoed challenge + live user/file counts.
    Status {
        /// Challenge echoed verbatim in the answer.
        challenge: u32,
    },
    /// `GetServerList`.
    ServerList,
    /// `ServerDescRequest`.
    Desc,
}

/// One file entry of an `OfferFiles` announcement, reduced to what the
/// shard index needs: the (possibly forged) ID plus the catalog file that
/// supplies name/size/type metadata (the decoy file for forged entries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PubEntry {
    /// Announced file ID (forged for polluter decoys).
    pub file_id: FileId,
    /// Catalog index backing the entry's metadata tags.
    pub file_idx: u32,
}

/// Compact query operation mirroring the wire message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SrcOp {
    /// Management query.
    Mgmt(MgmtOp),
    /// `OfferFiles` announcement (no answer).
    Offer(Vec<PubEntry>),
    /// Keyword search over the first `n_kws` keywords of catalog file
    /// `file_idx`, optionally size-constrained.
    Search {
        /// Catalog file whose keywords form the query.
        file_idx: u32,
        /// Number of leading keywords ANDed together (≥ 1).
        n_kws: u8,
        /// Optional minimum-size constraint (`FILESIZE >= value`).
        size_min: Option<u32>,
    },
    /// `GetSources` for one file.
    Sources {
        /// Queried file ID.
        file_id: FileId,
    },
}

impl SrcOp {
    /// True when the server answers this query with a datagram.
    pub fn has_answer(&self) -> bool {
        !matches!(self, SrcOp::Offer(_))
    }
}

/// Per-event wire randomness, pre-drawn from the owning client's RNG in a
/// fixed order (query corruption, answer corruption, TCP flight, UDP
/// stray) so the capture path needs no RNG of its own.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NoiseDraws {
    /// Query datagram corrupted in flight.
    pub query_corrupt: bool,
    /// Query corruption is structural (truncation).
    pub query_structural: bool,
    /// Answer datagram corrupted in flight.
    pub answer_corrupt: bool,
    /// Answer corruption is structural.
    pub answer_structural: bool,
    /// TCP noise flight length (0 = no flight, otherwise 1..=4).
    pub tcp_flight: u8,
    /// Per-flight-frame source addresses.
    pub tcp_src: [u32; 4],
    /// Per-flight-frame payload lengths (40..1400).
    pub tcp_len: [u16; 4],
    /// Stray UDP payload length (0 = none, otherwise 4..64).
    pub udp_len: u8,
    /// Stray UDP payload bytes (first byte forced to 0x17, a non-eDonkey
    /// marker).
    pub udp_payload: [u8; 63],
}

/// One generated source event: envelope, encoded query, op, wire draws.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SrcEvent {
    /// Virtual emission time in microseconds.
    pub t_us: u64,
    /// Global client index (merge tie-break; stable across shardings).
    pub gidx: u32,
    /// Sender.
    pub client: ClientId,
    /// Sender UDP port.
    pub port: u16,
    /// Encoded query datagram payload (marker + opcode + body).
    pub query: Vec<u8>,
    /// Compact operation for the shard indexes.
    pub op: SrcOp,
    /// Pre-drawn wire randomness.
    pub wire: NoiseDraws,
}

/// Per-file wire fragments precomputed once per campaign and shared by
/// generator workers (query encoding) and server shards (answer entries).
pub struct SourceBlobs {
    /// Per catalog file: the three metadata tags (FILENAME, FILESIZE,
    /// FILETYPE) encoded back-to-back, *without* the TagList count.
    tags3: Vec<Box<[u8]>>,
    /// Per catalog file: keyword atoms (`0x01 + str16`) encoded
    /// back-to-back, with end offsets per atom.
    kw_atoms: Vec<Box<[u8]>>,
    kw_ends: Vec<[u16; 4]>,
    kw_counts: Vec<u8>,
}

fn put_special_name(out: &mut Vec<u8>, name: u8) {
    out.extend_from_slice(&[0x01, 0x00, name]);
}

fn put_str_tag(out: &mut Vec<u8>, name: u8, value: &str) {
    out.push(0x02);
    put_special_name(out, name);
    out.extend_from_slice(&(value.len() as u16).to_le_bytes());
    out.extend_from_slice(value.as_bytes());
}

fn put_u32_tag(out: &mut Vec<u8>, name: u8, value: u32) {
    out.push(0x03);
    put_special_name(out, name);
    out.extend_from_slice(&value.to_le_bytes());
}

impl SourceBlobs {
    /// Precomputes the per-file fragments for `catalog`.
    pub fn build(catalog: &Catalog) -> Self {
        let n = catalog.len();
        let mut tags3 = Vec::with_capacity(n);
        let mut kw_atoms = Vec::with_capacity(n);
        let mut kw_ends = Vec::with_capacity(n);
        let mut kw_counts = Vec::with_capacity(n);
        for f in catalog.files() {
            let mut t = Vec::with_capacity(24 + f.name.len());
            put_str_tag(&mut t, special::FILENAME, &f.name);
            put_u32_tag(&mut t, special::FILESIZE, f.size);
            put_str_tag(&mut t, special::FILETYPE, f.kind.tag_value());
            tags3.push(t.into_boxed_slice());

            let mut atoms = Vec::with_capacity(8 * f.keywords.len());
            let mut ends = [0u16; 4];
            for (i, kw) in f.keywords.iter().take(4).enumerate() {
                atoms.push(0x01);
                atoms.extend_from_slice(&(kw.len() as u16).to_le_bytes());
                atoms.extend_from_slice(kw.as_bytes());
                ends[i] = atoms.len() as u16;
            }
            kw_counts.push(f.keywords.len().min(4) as u8);
            kw_ends.push(ends);
            kw_atoms.push(atoms.into_boxed_slice());
        }
        SourceBlobs {
            tags3,
            kw_atoms,
            kw_ends,
            kw_counts,
        }
    }

    /// The three metadata tags of file `idx`, encoded without a count.
    pub fn tags3(&self, idx: u32) -> &[u8] {
        &self.tags3[idx as usize]
    }

    /// Appends one encoded `FileEntry` for `idx` (id + provider + the
    /// 3-tag TagList) to `out`.
    pub fn put_entry(
        &self,
        out: &mut Vec<u8>,
        file_id: &FileId,
        client: ClientId,
        port: u16,
        idx: u32,
    ) {
        out.extend_from_slice(file_id.as_bytes());
        out.extend_from_slice(&client.raw().to_le_bytes());
        out.extend_from_slice(&port.to_le_bytes());
        out.extend_from_slice(&3u32.to_le_bytes());
        out.extend_from_slice(self.tags3(idx));
    }

    /// Appends the search expression for the first `n` keywords of file
    /// `idx` (left-deep AND chain, optional min-size constraint).
    pub fn put_search_expr(&self, out: &mut Vec<u8>, idx: u32, n: u8, size_min: Option<u32>) {
        if size_min.is_some() {
            out.extend_from_slice(&[0x00, 0x00]);
        }
        for _ in 1..n {
            out.extend_from_slice(&[0x00, 0x00]);
        }
        let end = self.kw_ends[idx as usize][(n - 1) as usize] as usize;
        out.extend_from_slice(&self.kw_atoms[idx as usize][..end]);
        if let Some(half) = size_min {
            out.push(0x03);
            out.extend_from_slice(&half.to_le_bytes());
            out.push(0x01); // NumCmp::Min
            put_special_name(out, special::FILESIZE);
        }
    }

    /// Keyword count available for file `idx` (1..=4).
    pub fn kw_count(&self, idx: u32) -> u8 {
        self.kw_counts[idx as usize]
    }
}

/// Derives the independent RNG for global client `gidx`.
fn client_rng(seed: u64, gidx: u32) -> StdRng {
    StdRng::seed_from_u64(splitmix64(
        (seed ^ 0x7365_7373_696f_6e73)
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(1 + gidx as u64)),
    ))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Clone, Debug)]
enum Phase {
    Connect,
    Announce { offset: u32 },
    AnnounceForged { offset: u32 },
    Ask { done: u32 },
    GetSourcesFor { file_idx: u32, done: u32 },
    Done,
}

struct ClientState {
    gidx: u32,
    rng: StdRng,
    phase: Phase,
    asked: HashSet<u32>,
    shared: Vec<u32>,
}

/// One generator worker owning the clients with `gidx % n_shards ==
/// shard`; yields that subset's events in `(t_us, gidx)` order.
pub struct SessionShard {
    catalog: Arc<Catalog>,
    population: Arc<Population>,
    blobs: Arc<SourceBlobs>,
    params: GeneratorParams,
    wire: WireParams,
    states: Vec<ClientState>,
    /// Heap of (t_us, local state index) — gidx order coincides with
    /// local index order within a shard, so local ties break like global.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    emitted: u64,
}

impl SessionShard {
    /// Builds the worker for `shard` of `n_shards`; deterministic in
    /// `seed` and independent of `n_shards` at the per-client level.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        catalog: Arc<Catalog>,
        population: Arc<Population>,
        blobs: Arc<SourceBlobs>,
        params: GeneratorParams,
        wire: WireParams,
        seed: u64,
        shard: usize,
        n_shards: usize,
    ) -> Self {
        assert!(n_shards > 0 && shard < n_shards);
        let n_clients = population.clients().len();
        let mut states = Vec::with_capacity(n_clients / n_shards + 1);
        let mut heap = BinaryHeap::with_capacity(n_clients / n_shards + 1);
        let horizon_us = (params.duration_secs * 900_000).max(1);
        // Epoch-marked scratch table for shared-set dedup: one u32 slot
        // per catalog file, a client's draws are "seen" when the slot
        // holds its epoch. Replaces a per-client HashSet — same distinct
        // set for the same draw sequence, no hashing and no per-client
        // allocation.
        let mut mark: Vec<u32> = vec![0; catalog.len()];
        let mut epoch = 0u32;
        for gidx in (shard..n_clients).step_by(n_shards) {
            let p = &population.clients()[gidx];
            let mut rng = client_rng(seed, gidx as u32);
            epoch += 1;
            let mut shared: Vec<u32> = Vec::with_capacity(p.n_shared as usize);
            let mut attempts = 0u32;
            while (shared.len() as u32) < p.n_shared && attempts < p.n_shared * 8 {
                let f = catalog.sample_provided(&mut rng) as u32;
                if mark[f as usize] != epoch {
                    mark[f as usize] = epoch;
                    shared.push(f);
                }
                attempts += 1;
            }
            shared.sort_unstable();
            let start_us = if params.diurnal {
                sample_diurnal_arrival(horizon_us, &mut rng)
            } else {
                rng.gen_range(0..horizon_us)
            };
            heap.push(Reverse((start_us, states.len() as u32)));
            states.push(ClientState {
                gidx: gidx as u32,
                rng,
                phase: Phase::Connect,
                asked: HashSet::new(),
                shared,
            });
        }
        SessionShard {
            catalog,
            population,
            blobs,
            params,
            wire,
            states,
            heap,
            emitted: 0,
        }
    }

    /// Events emitted so far by this shard.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn schedule(&mut self, li: u32, at_us: u64) {
        if at_us < self.params.duration_secs * 1_000_000 {
            self.heap.push(Reverse((at_us, li)));
        } else {
            self.states[li as usize].phase = Phase::Done;
        }
    }

    fn step(&mut self, li: u32, now_us: u64) -> Option<(SrcOp, Vec<u8>)> {
        let gidx = self.states[li as usize].gidx;
        let profile = &self.population.clients()[gidx as usize];
        let (n_forged, n_asks) = (profile.n_forged, profile.n_asks);
        let phase = self.states[li as usize].phase.clone();
        match phase {
            Phase::Connect => {
                self.states[li as usize].phase = if !self.states[li as usize].shared.is_empty() {
                    Phase::Announce { offset: 0 }
                } else if n_forged > 0 {
                    Phase::AnnounceForged { offset: 0 }
                } else {
                    Phase::Ask { done: 0 }
                };
                let gap = exp_gap_us(&mut self.states[li as usize].rng, 2.0);
                self.schedule(li, now_us + gap);
                let rng = &mut self.states[li as usize].rng;
                if rng.gen_bool(self.params.p_management) {
                    let (op, query) = if rng.gen_bool(0.6) {
                        let challenge: u32 = rng.gen();
                        let mut q = Vec::with_capacity(6);
                        q.extend_from_slice(&[MARKER, 0x96]);
                        q.extend_from_slice(&challenge.to_le_bytes());
                        (SrcOp::Mgmt(MgmtOp::Status { challenge }), q)
                    } else if rng.gen_bool(0.5) {
                        (SrcOp::Mgmt(MgmtOp::ServerList), vec![MARKER, 0xA0])
                    } else {
                        (SrcOp::Mgmt(MgmtOp::Desc), vec![MARKER, 0xA2])
                    };
                    Some((op, query))
                } else {
                    None
                }
            }
            Phase::Announce { offset } => {
                let chunk = chunk_size(&mut self.states[li as usize].rng, &self.params);
                let shared_len = self.states[li as usize].shared.len();
                let end = (offset as usize + chunk).min(shared_len);
                let client = profile.id;
                let port = profile.port;
                let mut entries = Vec::with_capacity(end - offset as usize);
                let mut query = Vec::with_capacity(2 + 4 + 80 * (end - offset as usize));
                query.extend_from_slice(&[MARKER, 0x15]);
                query.extend_from_slice(&((end - offset as usize) as u32).to_le_bytes());
                for k in offset as usize..end {
                    let fidx = self.states[li as usize].shared[k];
                    let id = self.catalog.file(fidx as usize).id;
                    self.blobs.put_entry(&mut query, &id, client, port, fidx);
                    entries.push(PubEntry {
                        file_id: id,
                        file_idx: fidx,
                    });
                }
                self.states[li as usize].phase = if end < shared_len {
                    Phase::Announce { offset: end as u32 }
                } else if n_forged > 0 {
                    Phase::AnnounceForged { offset: 0 }
                } else {
                    Phase::Ask { done: 0 }
                };
                let gap = exp_gap_us(&mut self.states[li as usize].rng, 3.0);
                self.schedule(li, now_us + gap);
                Some((SrcOp::Offer(entries), query))
            }
            Phase::AnnounceForged { offset } => {
                let chunk = chunk_size(&mut self.states[li as usize].rng, &self.params) as u32;
                let end = (offset + chunk).min(n_forged);
                let client = profile.id;
                let port = profile.port;
                let prefix = if client.raw().is_multiple_of(2) {
                    [0x00, 0x00]
                } else {
                    [0x00, 0x01]
                };
                let mut entries = Vec::with_capacity((end - offset) as usize);
                let mut query = Vec::with_capacity(2 + 4 + 80 * (end - offset) as usize);
                query.extend_from_slice(&[MARKER, 0x15]);
                query.extend_from_slice(&(end - offset).to_le_bytes());
                for seq in offset..end {
                    let decoy_idx = {
                        let rng = &mut self.states[li as usize].rng;
                        self.catalog.sample_sought(rng) as u32
                    };
                    let counter = ((gidx as u64) << 32) | seq as u64;
                    let id = FileId::forged(counter, prefix);
                    self.blobs
                        .put_entry(&mut query, &id, client, port, decoy_idx);
                    entries.push(PubEntry {
                        file_id: id,
                        file_idx: decoy_idx,
                    });
                }
                self.states[li as usize].phase = if end < n_forged {
                    Phase::AnnounceForged { offset: end }
                } else {
                    Phase::Ask { done: 0 }
                };
                let gap = exp_gap_us(&mut self.states[li as usize].rng, 3.0);
                self.schedule(li, now_us + gap);
                Some((SrcOp::Offer(entries), query))
            }
            Phase::Ask { done } => {
                if done >= n_asks {
                    self.states[li as usize].phase = Phase::Done;
                    return None;
                }
                let file_idx = self.pick_ask(li);
                let p_search_first = self.params.p_search_first;
                if self.states[li as usize].rng.gen_bool(p_search_first) {
                    self.states[li as usize].phase = Phase::GetSourcesFor { file_idx, done };
                    let gap = exp_gap_us(&mut self.states[li as usize].rng, 4.0);
                    self.schedule(li, now_us + gap.max(500_000));
                    let (n_kws, size_min) = {
                        let kw_max = self.blobs.kw_count(file_idx);
                        let rng = &mut self.states[li as usize].rng;
                        let n = kw_max.min(1 + rng.gen_range(0..3) as u8);
                        let size_min = if rng.gen_bool(self.params.p_size_constraint) {
                            Some(self.catalog.file(file_idx as usize).size / 2)
                        } else {
                            None
                        };
                        (n, size_min)
                    };
                    let mut query = Vec::with_capacity(64);
                    query.extend_from_slice(&[MARKER, 0x98]);
                    self.blobs
                        .put_search_expr(&mut query, file_idx, n_kws, size_min);
                    Some((
                        SrcOp::Search {
                            file_idx,
                            n_kws,
                            size_min,
                        },
                        query,
                    ))
                } else {
                    self.states[li as usize].phase = Phase::Ask { done: done + 1 };
                    let gap = self.ask_gap(li, now_us, done + 1);
                    self.schedule(li, now_us + gap);
                    Some(self.sources_query(file_idx))
                }
            }
            Phase::GetSourcesFor { file_idx, done } => {
                self.states[li as usize].phase = Phase::Ask { done: done + 1 };
                let gap = self.ask_gap(li, now_us, done + 1);
                self.schedule(li, now_us + gap);
                Some(self.sources_query(file_idx))
            }
            Phase::Done => None,
        }
    }

    fn sources_query(&self, file_idx: u32) -> (SrcOp, Vec<u8>) {
        let file_id = self.catalog.file(file_idx as usize).id;
        let mut query = Vec::with_capacity(18);
        query.extend_from_slice(&[MARKER, 0x9A]);
        query.extend_from_slice(file_id.as_bytes());
        (SrcOp::Sources { file_id }, query)
    }

    fn pick_ask(&mut self, li: u32) -> u32 {
        for _ in 0..4 {
            let f = {
                let rng = &mut self.states[li as usize].rng;
                self.catalog.sample_sought(rng) as u32
            };
            if !self.states[li as usize].asked.contains(&f) {
                self.states[li as usize].asked.insert(f);
                return f;
            }
        }
        if self.states[li as usize].asked.len() >= self.catalog.len() {
            let rng = &mut self.states[li as usize].rng;
            return self.catalog.sample_sought(rng) as u32;
        }
        loop {
            let f = {
                let rng = &mut self.states[li as usize].rng;
                rng.gen_range(0..self.catalog.len()) as u32
            };
            if self.states[li as usize].asked.insert(f) {
                return f;
            }
        }
    }

    fn ask_gap(&mut self, li: u32, now_us: u64, done: u32) -> u64 {
        let gidx = self.states[li as usize].gidx;
        let n_asks = self.population.clients()[gidx as usize].n_asks;
        let remaining_asks = n_asks.saturating_sub(done) + 1;
        let soft_end = self.params.duration_secs * 1_000_000 / 100 * 97;
        let remaining_secs = soft_end.saturating_sub(now_us) as f64 / 1e6;
        let mean = (remaining_secs / remaining_asks as f64).clamp(1.0, 3_600.0);
        exp_gap_us(&mut self.states[li as usize].rng, mean)
    }

    /// Draws the event's wire randomness; fixed order, one stream.
    fn draw_wire(&mut self, li: u32, has_answer: bool) -> NoiseDraws {
        let w = self.wire.clone();
        let rng = &mut self.states[li as usize].rng;
        let query_corrupt = rng.gen_bool(w.p_corrupt);
        let query_structural = query_corrupt && rng.gen_bool(w.p_corrupt_structural);
        let answered = has_answer && !query_corrupt;
        let answer_corrupt = answered && rng.gen_bool(w.p_corrupt);
        let answer_structural = answer_corrupt && rng.gen_bool(w.p_corrupt_structural);
        let mut tcp_flight = 0u8;
        let mut tcp_src = [0u32; 4];
        let mut tcp_len = [0u16; 4];
        if rng.gen_bool(w.p_tcp_noise) {
            tcp_flight = rng.gen_range(1..=4u32) as u8;
            for i in 0..tcp_flight as usize {
                tcp_src[i] = rng.gen();
                tcp_len[i] = rng.gen_range(40..1400u32) as u16;
            }
        }
        let mut udp_len = 0u8;
        let mut udp_payload = [0u8; 63];
        if rng.gen_bool(w.p_udp_noise) {
            udp_len = rng.gen_range(4..64u32) as u8;
            rng.fill(&mut udp_payload[..udp_len as usize]);
            udp_payload[0] = 0x17;
        }
        NoiseDraws {
            query_corrupt,
            query_structural,
            answer_corrupt,
            answer_structural,
            tcp_flight,
            tcp_src,
            tcp_len,
            udp_len,
            udp_payload,
        }
    }
}

fn exp_gap_us(rng: &mut StdRng, mean_secs: f64) -> u64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    ((-u.ln() * mean_secs).min(86_400.0 * 7.0) * 1e6) as u64
}

fn chunk_size(rng: &mut StdRng, params: &GeneratorParams) -> usize {
    if rng.gen_bool(params.p_large_chunk) {
        params.announce_chunk * 4
    } else {
        params.announce_chunk
    }
}

/// Rejection-samples a diurnal arrival (same shape as the serial
/// generator's profile: evening peak, early-morning trough).
fn sample_diurnal_arrival<R: Rng + ?Sized>(horizon_us: u64, rng: &mut R) -> u64 {
    use std::f64::consts::TAU;
    loop {
        let t = rng.gen_range(0..horizon_us);
        let day_phase = (t as f64 / 1e6) / 86_400.0;
        let density = 1.0 + 0.6 * (TAU * (day_phase - 0.33)).sin();
        if rng.gen_range(0.0..1.6) < density {
            return t;
        }
    }
}

impl Iterator for SessionShard {
    type Item = SrcEvent;

    fn next(&mut self) -> Option<SrcEvent> {
        while let Some(Reverse((now_us, li))) = self.heap.pop() {
            if let Some((op, query)) = self.step(li, now_us) {
                let wire = self.draw_wire(li, op.has_answer());
                let s = &self.states[li as usize];
                let profile = &self.population.clients()[s.gidx as usize];
                self.emitted += 1;
                return Some(SrcEvent {
                    t_us: now_us,
                    gidx: s.gidx,
                    client: profile.id,
                    port: profile.port,
                    query,
                    op,
                    wire,
                });
            }
        }
        None
    }
}

/// Serially k-way-merges `shards` into the global `(t_us, gidx)` order —
/// the reference merge the threaded source must reproduce. Used by tests
/// and by the single-shard fast path.
pub struct MergedSessions {
    shards: Vec<SessionShard>,
    heads: Vec<Option<SrcEvent>>,
}

impl MergedSessions {
    /// Builds all `n_shards` workers and primes the merge.
    pub fn new(
        catalog: Arc<Catalog>,
        population: Arc<Population>,
        blobs: Arc<SourceBlobs>,
        params: GeneratorParams,
        wire: WireParams,
        seed: u64,
        n_shards: usize,
    ) -> Self {
        let mut shards: Vec<SessionShard> = (0..n_shards)
            .map(|s| {
                SessionShard::new(
                    catalog.clone(),
                    population.clone(),
                    blobs.clone(),
                    params.clone(),
                    wire.clone(),
                    seed,
                    s,
                    n_shards,
                )
            })
            .collect();
        let heads = shards.iter_mut().map(|s| s.next()).collect();
        MergedSessions { shards, heads }
    }
}

impl Iterator for MergedSessions {
    type Item = SrcEvent;

    fn next(&mut self) -> Option<SrcEvent> {
        let mut best: Option<usize> = None;
        for (i, h) in self.heads.iter().enumerate() {
            if let Some(ev) = h {
                let better = match best {
                    None => true,
                    Some(b) => {
                        let bh = self.heads[b].as_ref().unwrap();
                        (ev.t_us, ev.gidx) < (bh.t_us, bh.gidx)
                    }
                };
                if better {
                    best = Some(i);
                }
            }
        }
        let i = best?;
        let ev = self.heads[i].take();
        self.heads[i] = self.shards[i].next();
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogParams;
    use crate::clients::{ClientClass, PopulationParams};
    use etw_edonkey::messages::{FileEntry, Message};
    use etw_edonkey::search::{NumCmp, SearchExpr};
    use etw_edonkey::tags::{Tag, TagList, TagName};

    fn setup(
        n_clients: usize,
        n_files: usize,
    ) -> (Arc<Catalog>, Arc<Population>, Arc<SourceBlobs>) {
        let catalog = Catalog::generate(
            &CatalogParams {
                n_files,
                ..CatalogParams::default()
            },
            1,
        );
        let pop = Population::generate(
            &PopulationParams {
                n_clients,
                id_space_bits: 20,
                ..PopulationParams::default()
            },
            2,
        );
        let blobs = SourceBlobs::build(&catalog);
        (Arc::new(catalog), Arc::new(pop), Arc::new(blobs))
    }

    fn wire_params() -> WireParams {
        WireParams {
            p_corrupt: 0.0068,
            p_corrupt_structural: 0.78,
            p_tcp_noise: 0.8,
            p_udp_noise: 0.01,
        }
    }

    fn params(duration_secs: u64) -> GeneratorParams {
        GeneratorParams {
            duration_secs,
            ..GeneratorParams::default()
        }
    }

    fn merged(n_shards: usize, seed: u64, n_clients: usize) -> Vec<SrcEvent> {
        let (catalog, pop, blobs) = setup(n_clients, 2000);
        MergedSessions::new(
            catalog,
            pop,
            blobs,
            params(3_600),
            wire_params(),
            seed,
            n_shards,
        )
        .collect()
    }

    #[test]
    fn sharding_is_partition_invariant() {
        let one = merged(1, 7, 250);
        assert!(one.len() > 500, "only {} events", one.len());
        for s in [2usize, 3, 4, 8] {
            let many = merged(s, 7, 250);
            assert_eq!(one, many, "shard count {s} diverged");
        }
    }

    #[test]
    fn merged_stream_is_time_ordered() {
        let events = merged(4, 9, 200);
        for w in events.windows(2) {
            assert!((w[0].t_us, w[0].gidx) <= (w[1].t_us, w[1].gidx));
        }
        assert!(events.iter().all(|e| e.t_us < 3_600_000_000));
    }

    /// Rebuilds each event's query as a [`Message`] and checks the
    /// hand-encoded bytes match the reference encoder exactly.
    #[test]
    fn query_bytes_match_reference_encoder() {
        let (catalog, pop, blobs) = setup(200, 1500);
        let events: Vec<SrcEvent> = MergedSessions::new(
            catalog.clone(),
            pop,
            blobs,
            params(3_600),
            wire_params(),
            11,
            2,
        )
        .collect();
        let mut offers = 0;
        let mut searches = 0;
        for ev in &events {
            let msg = match &ev.op {
                SrcOp::Mgmt(MgmtOp::Status { challenge }) => Message::StatusRequest {
                    challenge: *challenge,
                },
                SrcOp::Mgmt(MgmtOp::ServerList) => Message::GetServerList,
                SrcOp::Mgmt(MgmtOp::Desc) => Message::ServerDescRequest,
                SrcOp::Offer(entries) => {
                    offers += 1;
                    Message::OfferFiles {
                        files: entries
                            .iter()
                            .map(|e| {
                                let f = catalog.file(e.file_idx as usize);
                                FileEntry {
                                    file_id: e.file_id,
                                    client_id: ev.client,
                                    port: ev.port,
                                    tags: TagList(vec![
                                        Tag::str(special::FILENAME, f.name.clone()),
                                        Tag::u32(special::FILESIZE, f.size),
                                        Tag::str(special::FILETYPE, f.kind.tag_value()),
                                    ]),
                                }
                            })
                            .collect(),
                    }
                }
                SrcOp::Search {
                    file_idx,
                    n_kws,
                    size_min,
                } => {
                    searches += 1;
                    let f = catalog.file(*file_idx as usize);
                    let mut expr = SearchExpr::keyword(f.keywords[0].clone());
                    for kw in f.keywords.iter().take(*n_kws as usize).skip(1) {
                        expr = SearchExpr::and(expr, SearchExpr::keyword(kw.clone()));
                    }
                    if let Some(half) = size_min {
                        expr = SearchExpr::and(
                            expr,
                            SearchExpr::MetaNum {
                                name: TagName::Special(special::FILESIZE),
                                cmp: NumCmp::Min,
                                value: *half,
                            },
                        );
                    }
                    Message::SearchRequest { expr }
                }
                SrcOp::Sources { file_id } => Message::GetSources {
                    file_ids: vec![*file_id],
                },
            };
            assert_eq!(
                ev.query,
                msg.encode(),
                "query bytes diverge for {:?}",
                ev.op
            );
        }
        assert!(
            offers > 50 && searches > 100,
            "{offers} offers, {searches} searches"
        );
    }

    #[test]
    fn capped_clients_ask_exactly_52_distinct_files() {
        let (catalog, pop, blobs) = setup(400, 3000);
        let events: Vec<SrcEvent> = MergedSessions::new(
            catalog,
            pop.clone(),
            blobs,
            params(86_400),
            wire_params(),
            7,
            4,
        )
        .collect();
        use std::collections::HashMap;
        let mut asked: HashMap<u32, HashSet<FileId>> = HashMap::new();
        for e in &events {
            if let SrcOp::Sources { file_id } = &e.op {
                asked.entry(e.client.raw()).or_default().insert(*file_id);
            }
        }
        let mut at_52 = 0;
        let mut total = 0;
        for p in pop.of_class(ClientClass::CappedSearcher) {
            if let Some(set) = asked.get(&p.id.raw()) {
                assert!(set.len() <= 52, "capped client asked {} files", set.len());
                total += 1;
                if set.len() == 52 {
                    at_52 += 1;
                }
            }
        }
        assert!(total > 20, "only {total} capped clients seen");
        assert!(
            at_52 as f64 > 0.8 * total as f64,
            "spike too smeared: {at_52}/{total} at exactly 52"
        );
    }

    #[test]
    fn polluters_announce_forged_prefixes() {
        let events = {
            let (catalog, pop, blobs) = setup(600, 2000);
            let v: Vec<SrcEvent> =
                MergedSessions::new(catalog, pop, blobs, params(86_400), wire_params(), 8, 2)
                    .collect();
            v
        };
        let mut forged = 0u64;
        for e in &events {
            if let SrcOp::Offer(entries) = &e.op {
                for en in entries {
                    let b = en.file_id.as_bytes();
                    if b[0] == 0 && (b[1] == 0 || b[1] == 1) {
                        forged += 1;
                    }
                }
            }
        }
        assert!(forged > 500, "only {forged} forged announcements");
    }

    #[test]
    fn wire_draws_present_at_plausible_rates() {
        let events = merged(2, 13, 300);
        let n = events.len() as f64;
        let tcp = events.iter().filter(|e| e.wire.tcp_flight > 0).count() as f64;
        let corrupt = events.iter().filter(|e| e.wire.query_corrupt).count() as f64;
        assert!(tcp / n > 0.7 && tcp / n < 0.9, "tcp rate {}", tcp / n);
        assert!(corrupt / n < 0.03, "corrupt rate {}", corrupt / n);
        for e in &events {
            if e.wire.udp_len > 0 {
                assert_eq!(e.wire.udp_payload[0], 0x17);
            }
            assert!(!e.wire.answer_corrupt || e.op.has_answer());
            assert!(!(e.wire.answer_corrupt && e.wire.query_corrupt));
        }
    }
}
